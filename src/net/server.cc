#include "net/server.h"

#include <poll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <utility>

#include "common/timer.h"
#include "dynamic/update.h"
#include "obs/trace.h"

namespace fannr::net {

namespace {

/// Effective deadline of one wire job: its own value when positive and
/// finite, else the batch default, else the server default; 0 = none.
double EffectiveDeadlineMs(double job_ms, double batch_ms,
                          double server_default_ms) {
  auto usable = [](double v) { return std::isfinite(v) && v > 0.0; };
  if (usable(job_ms)) return job_ms;
  if (usable(batch_ms)) return batch_ms;
  if (usable(server_default_ms)) return server_default_ms;
  return 0.0;
}

WireResult RejectedWire(std::string error) {
  WireResult r;
  r.status = static_cast<uint8_t>(QueryStatus::kRejected);
  r.error = std::move(error);
  return r;
}

WireResult TimedOutWire(std::string error) {
  WireResult r;
  r.status = static_cast<uint8_t>(QueryStatus::kTimedOut);
  r.error = std::move(error);
  return r;
}

std::string Num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::string HistogramStatsJson(const obs::HistogramSnapshot& h) {
  return "{\"count\": " + std::to_string(h.count) +
         ", \"mean\": " + Num(h.Mean()) + ", \"p50\": " + Num(h.Percentile(50)) +
         ", \"p95\": " + Num(h.Percentile(95)) +
         ", \"p99\": " + Num(h.Percentile(99)) + ", \"max\": " + Num(h.max) +
         "}";
}

}  // namespace

/// One accepted client connection. The reader thread owns the receive
/// side; the executor (and the reader, for inline errors) share the
/// send side through WriteFrame's mutex so frames never interleave.
struct FannServer::Connection {
  Socket sock;
  std::mutex write_mu;
  std::atomic<bool> open{true};

  bool WriteFrame(Opcode opcode, uint64_t request_id,
                  std::span<const uint8_t> payload) {
    const std::vector<uint8_t> frame =
        EncodeFrame(static_cast<uint16_t>(opcode), request_id, payload);
    std::lock_guard<std::mutex> lock(write_mu);
    if (!open.load(std::memory_order_relaxed)) return false;
    if (!sock.WriteFull(frame.data(), frame.size())) {
      open.store(false, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  void WriteError(uint64_t request_id, ErrorCode code, std::string message) {
    ErrorResponse response;
    response.code = code;
    response.message = std::move(message);
    WriteFrame(Opcode::kError, request_id, EncodeErrorResponse(response));
  }
};

/// One admitted unit of work, queued FIFO for the executor.
struct FannServer::WorkItem {
  std::shared_ptr<Connection> conn;
  Opcode opcode = Opcode::kPing;
  uint64_t request_id = 0;
  QueryRequest query;
  BatchRequest batch;
  UpdateWeightsRequest update;
  /// Graph epoch at admission; QUERY/BATCH items are rejected at
  /// execution if the epoch has moved (an update was processed in
  /// between), mirroring the engine's mid-batch contract.
  GraphEpoch admission_epoch = 0;
  Timer e2e_timer;  ///< Started at admission; measures queue wait + solve.
};

FannServer::FannServer(Graph* graph, const GphiResources& resources,
                       ServerConfig config)
    : graph_(graph), resources_(resources), config_(std::move(config)) {
  FANNR_CHECK(graph_ != nullptr && resources_.graph == graph_);
  // STATS, the slow-query log, and drain reporting all read the engine's
  // observation state; the server runs with it on unconditionally.
  config_.engine_options.enable_metrics = true;
  engine_ = std::make_unique<BatchQueryEngine>(resources_,
                                               config_.engine_options);

  m_req_query_ = metrics_.RegisterCounter("server.requests.query");
  m_req_batch_ = metrics_.RegisterCounter("server.requests.batch");
  m_req_update_ = metrics_.RegisterCounter("server.requests.update_weights");
  m_req_stats_ = metrics_.RegisterCounter("server.requests.stats");
  m_req_ping_ = metrics_.RegisterCounter("server.requests.ping");
  m_req_shutdown_ = metrics_.RegisterCounter("server.requests.shutdown");
  m_errors_ = metrics_.RegisterCounter("server.responses.error");
  m_overloaded_ = metrics_.RegisterCounter("server.overloaded");
  m_bad_frames_ = metrics_.RegisterCounter("server.bad_frames");
  m_connections_ = metrics_.RegisterCounter("server.connections");
  m_stale_admission_ =
      metrics_.RegisterCounter("server.rejected_stale_admission");
  m_queue_depth_ = metrics_.RegisterGauge("server.queue_depth");
  m_e2e_query_ms_ = metrics_.RegisterHistogram(
      "server.e2e_ms.query", obs::DefaultLatencyBucketsMs());
  m_e2e_batch_ms_ = metrics_.RegisterHistogram(
      "server.e2e_ms.batch", obs::DefaultLatencyBucketsMs());
  m_e2e_update_ms_ = metrics_.RegisterHistogram(
      "server.e2e_ms.update", obs::DefaultLatencyBucketsMs());
  m_queue_wait_ms_ = metrics_.RegisterHistogram(
      "server.queue_wait_ms", obs::DefaultLatencyBucketsMs());
}

FannServer::~FannServer() {
  if (started_.load(std::memory_order_relaxed)) {
    RequestShutdown();
    if (accept_thread_.joinable()) Wait();
  }
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

bool FannServer::Start(std::string* error) {
  FANNR_CHECK(!started_.load(std::memory_order_relaxed));
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    if (error != nullptr) *error = "eventfd failed";
    return false;
  }
  listener_ = TcpListen(config_.host, config_.port, &port_, error);
  if (!listener_.valid()) return false;
  started_.store(true, std::memory_order_relaxed);
  accept_thread_ = std::thread(&FannServer::AcceptMain, this);
  executor_thread_ = std::thread(&FannServer::ExecutorMain, this);
  return true;
}

void FannServer::RequestShutdown() {
  draining_.store(true, std::memory_order_relaxed);
  // Adding to the eventfd counter wakes the accept loop; write(2) is
  // async-signal-safe, so this whole method may run in a SIGTERM
  // handler. Unlike a pipe — whose 64 KiB buffer fills after enough
  // unconsumed wakes, after which writes are dropped and a wake can be
  // lost — the eventfd counter stays level-triggered readable until
  // read: however many callers race here, POLLIN remains asserted and
  // the loop cannot miss the wake. (EAGAIN is only possible at counter
  // overflow, which still leaves the counter nonzero and readable.)
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void FannServer::ReapFinishedConnections() {
  // Joining under conns_mu_ would hold admissions hostage to a reader's
  // last instructions; move the finished threads out first.
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (uint64_t id : finished_threads_) {
      auto it = connection_threads_.find(id);
      if (it != connection_threads_.end()) {
        to_join.push_back(std::move(it->second));
        connection_threads_.erase(it);
      }
    }
    finished_threads_.clear();
    std::erase_if(connections_, [](const std::shared_ptr<Connection>& c) {
      return !c->open.load(std::memory_order_relaxed);
    });
  }
  for (std::thread& t : to_join) t.join();
}

size_t FannServer::tracked_connection_threads() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return connection_threads_.size();
}

void FannServer::AcceptMain() {
  while (true) {
    pollfd fds[2];
    fds[0] = {listener_.fd(), POLLIN, 0};
    fds[1] = {wake_fd_, POLLIN, 0};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0 || draining()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;

    std::string accept_error;
    Socket sock = TcpAccept(listener_, &accept_error);
    if (!sock.valid()) {
      if (accept_error.empty()) break;  // listener shut down
      continue;
    }
    metrics_.Add(m_connections_, 1);
    // A long-lived server churns through connections; joining finished
    // readers here keeps thread (and Connection) accounting bounded by
    // the live set instead of growing until shutdown.
    ReapFinishedConnections();

    auto conn = std::make_shared<Connection>();
    conn->sock = std::move(sock);
    std::lock_guard<std::mutex> lock(conns_mu_);
    const size_t live = static_cast<size_t>(
        std::count_if(connections_.begin(), connections_.end(),
                      [](const std::shared_ptr<Connection>& c) {
                        return c->open.load(std::memory_order_relaxed);
                      }));
    if (live >= config_.max_connections) {
      metrics_.Add(m_overloaded_, 1);
      conn->WriteError(0, ErrorCode::kOverloaded,
                       "connection limit reached — retry later");
      continue;  // conn (and its socket) dies here
    }
    connections_.push_back(conn);
    const uint64_t thread_id = next_thread_id_++;
    connection_threads_.emplace(
        thread_id,
        std::thread(&FannServer::ConnectionMain, this, conn, thread_id));
  }
}

void FannServer::ConnectionMain(std::shared_ptr<Connection> conn,
                                uint64_t thread_id) {
  std::vector<uint8_t> payload;
  while (conn->open.load(std::memory_order_relaxed)) {
    uint8_t header_bytes[kFrameHeaderBytes];
    if (!conn->sock.ReadFull(header_bytes, sizeof(header_bytes))) break;
    FrameHeader header;
    DecodeFrameHeader(header_bytes, header);

    bool fatal = false;
    const std::string envelope_error = FrameEnvelopeError(header, &fatal);
    if (fatal) {
      // Bad magic / oversized payload / nonzero reserved: the stream has
      // no trustworthy frame boundary left. Close, never crash.
      metrics_.Add(m_bad_frames_, 1);
      break;
    }

    payload.resize(header.payload_length);
    if (header.payload_length > 0 &&
        !conn->sock.ReadFull(payload.data(), payload.size())) {
      break;
    }

    if (header.version != kProtocolVersion) {
      metrics_.Add(m_errors_, 1);
      conn->WriteError(header.request_id, ErrorCode::kUnsupportedVersion,
                       envelope_error);
      continue;
    }
    if (!IsRequestOpcode(header.opcode)) {
      metrics_.Add(m_errors_, 1);
      conn->WriteError(header.request_id, ErrorCode::kUnknownOpcode,
                       "opcode " + std::to_string(header.opcode) +
                           " is not a request opcode");
      continue;
    }

    const Opcode opcode = static_cast<Opcode>(header.opcode);
    if (opcode == Opcode::kPing) {
      metrics_.Add(m_req_ping_, 1);
      conn->WriteFrame(Opcode::kPong, header.request_id, {});
      continue;
    }
    if (opcode == Opcode::kShutdown) {
      metrics_.Add(m_req_shutdown_, 1);
      conn->WriteFrame(Opcode::kShutdownAck, header.request_id, {});
      RequestShutdown();
      continue;
    }

    // Work frame: decode, then admit (or shed).
    WorkItem item;
    item.conn = conn;
    item.opcode = opcode;
    item.request_id = header.request_id;
    bool decoded = false;
    switch (opcode) {
      case Opcode::kQuery:
        metrics_.Add(m_req_query_, 1);
        decoded = DecodeQueryRequest(payload, item.query);
        break;
      case Opcode::kBatch:
        metrics_.Add(m_req_batch_, 1);
        decoded = DecodeBatchRequest(payload, item.batch);
        break;
      case Opcode::kUpdateWeights:
        metrics_.Add(m_req_update_, 1);
        decoded = DecodeUpdateWeightsRequest(payload, item.update);
        break;
      case Opcode::kStats:
        metrics_.Add(m_req_stats_, 1);
        decoded = payload.empty();
        break;
      default:
        break;
    }
    if (!decoded) {
      metrics_.Add(m_errors_, 1);
      conn->WriteError(header.request_id, ErrorCode::kMalformedPayload,
                       std::string(OpcodeName(header.opcode)) +
                           " payload failed to decode");
      continue;
    }
    if (draining()) {
      metrics_.Add(m_errors_, 1);
      conn->WriteError(header.request_id, ErrorCode::kShuttingDown,
                       "server is draining — no new work accepted");
      continue;
    }

    item.admission_epoch = graph_->epoch();
    item.e2e_timer.Reset();
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (queue_.size() < config_.max_queue_depth) {
        queue_.push_back(std::move(item));
        metrics_.Set(m_queue_depth_, static_cast<double>(queue_.size()));
        admitted = true;
      }
    }
    if (admitted) {
      queue_cv_.notify_one();
    } else {
      // Bounded admission: shed the request explicitly instead of
      // buffering without limit. The client retries with backoff.
      metrics_.Add(m_overloaded_, 1);
      conn->WriteError(header.request_id, ErrorCode::kOverloaded,
                       "admission queue full (" +
                           std::to_string(config_.max_queue_depth) +
                           " pending) — retry later");
    }
  }
  conn->open.store(false, std::memory_order_relaxed);
  // A peer may be parked in read(2) waiting for a reply that will never
  // come (e.g. its frame was fatally malformed). shutdown(2) hands it a
  // clean EOF; idempotent with the drain path in Wait().
  conn->sock.ShutdownBoth();
  // Mark this thread joinable-without-blocking; the accept loop (or
  // Wait) reaps it. Nothing below this line touches `this`.
  std::lock_guard<std::mutex> lock(conns_mu_);
  finished_threads_.push_back(thread_id);
}

void FannServer::ExecutorMain() {
  while (true) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [&] { return !queue_.empty() || executor_stop_; });
      if (queue_.empty()) break;  // executor_stop_ with a drained queue
      item = std::move(queue_.front());
      queue_.pop_front();
      metrics_.Set(m_queue_depth_, static_cast<double>(queue_.size()));
    }
    if (config_.test_execution_gate) config_.test_execution_gate();
    // Read the stop flag after the gate, not at dequeue: Wait() arms the
    // drain timer before setting it, so when `stopping` is observed the
    // deadline check below is measuring the actual drain — including for
    // an item that was dequeued before the drain began.
    bool stopping = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      stopping = executor_stop_;
    }
    if (stopping && drain_timer_.Millis() > config_.drain_deadline_ms) {
      // Past the drain budget: answer, don't compute.
      aborted_items_.fetch_add(1, std::memory_order_relaxed);
      metrics_.Add(m_errors_, 1);
      item.conn->WriteError(item.request_id, ErrorCode::kShuttingDown,
                            "drain deadline exceeded — request aborted");
      continue;
    }
    Execute(item);
    if (stopping) drained_items_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FannServer::Execute(WorkItem& item) {
  metrics_.Record(m_queue_wait_ms_, item.e2e_timer.Millis());
  switch (item.opcode) {
    case Opcode::kQuery:
      ExecuteQuery(item);
      metrics_.Record(m_e2e_query_ms_, item.e2e_timer.Millis());
      break;
    case Opcode::kBatch:
      ExecuteBatch(item);
      metrics_.Record(m_e2e_batch_ms_, item.e2e_timer.Millis());
      break;
    case Opcode::kUpdateWeights:
      ExecuteUpdate(item);
      metrics_.Record(m_e2e_update_ms_, item.e2e_timer.Millis());
      break;
    case Opcode::kStats:
      ExecuteStats(item);
      break;
    default:
      break;
  }
}

std::string FannServer::MaterializeSets(
    const WireQuery& wire, std::unique_ptr<IndexedVertexSet>& p,
    std::unique_ptr<IndexedVertexSet>& q) const {
  const size_t num_vertices = graph_->NumVertices();
  auto screen = [&](const std::vector<uint32_t>& ids, const char* which)
      -> std::string {
    for (uint32_t id : ids) {
      if (id >= num_vertices) {
        return std::string(which) + " vertex id " + std::to_string(id) +
               " out of range (graph has " + std::to_string(num_vertices) +
               " vertices)";
      }
    }
    std::vector<uint32_t> sorted(ids);
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      return std::string(which) + " contains a duplicate vertex id";
    }
    return std::string();
  };
  std::string error = screen(wire.p, "data point set P");
  if (error.empty()) error = screen(wire.q, "query point set Q");
  if (!error.empty()) return error;
  p = std::make_unique<IndexedVertexSet>(
      num_vertices, std::vector<VertexId>(wire.p.begin(), wire.p.end()));
  q = std::make_unique<IndexedVertexSet>(
      num_vertices, std::vector<VertexId>(wire.q.begin(), wire.q.end()));
  return std::string();
}

void FannServer::ExecuteQuery(WorkItem& item) {
  BatchRequest batch;
  batch.deadline_ms = 0.0;
  batch.jobs.push_back(std::move(item.query.query));
  WorkItem wrapped = std::move(item);
  wrapped.batch = std::move(batch);

  // A QUERY is a one-job BATCH with a QUERY_RESULT envelope.
  const GraphEpoch now = graph_->epoch();
  if (now != wrapped.admission_epoch) {
    metrics_.Add(m_stale_admission_, 1);
    QueryResponse response;
    response.graph_epoch = now;
    response.result =
        RejectedWire(MidBatchEpochError(wrapped.admission_epoch, now));
    wrapped.conn->WriteFrame(Opcode::kQueryResult, wrapped.request_id,
                             EncodeQueryResponse(response));
    return;
  }
  BatchResponse executed = RunJobs(wrapped);
  QueryResponse response;
  response.graph_epoch = executed.graph_epoch;
  response.result = std::move(executed.results[0]);
  wrapped.conn->WriteFrame(Opcode::kQueryResult, wrapped.request_id,
                           EncodeQueryResponse(response));
}

void FannServer::ExecuteBatch(WorkItem& item) {
  const GraphEpoch now = graph_->epoch();
  if (now != item.admission_epoch) {
    metrics_.Add(m_stale_admission_, 1);
    BatchResponse response;
    response.graph_epoch = now;
    response.results.assign(
        item.batch.jobs.size(),
        RejectedWire(MidBatchEpochError(item.admission_epoch, now)));
    item.conn->WriteFrame(Opcode::kBatchResult, item.request_id,
                          EncodeBatchResponse(response));
    return;
  }
  BatchResponse response = RunJobs(item);
  item.conn->WriteFrame(Opcode::kBatchResult, item.request_id,
                        EncodeBatchResponse(response));
}

BatchResponse FannServer::RunJobs(WorkItem& item) {
  const std::vector<WireQuery>& jobs = item.batch.jobs;
  BatchResponse response;
  response.graph_epoch = graph_->epoch();
  response.results.resize(jobs.size());

  // Net-level screening (id validity, enum ranges, expired deadlines)
  // fills result slots directly; everything else goes to the engine in
  // one Run so in-process semantics — validation reasons, epoch checks,
  // fallbacks, tracing — apply verbatim.
  std::vector<std::unique_ptr<IndexedVertexSet>> sets;
  std::vector<FannrQuery> runnable;
  std::vector<size_t> runnable_slot;
  for (size_t i = 0; i < jobs.size(); ++i) {
    const WireQuery& wire = jobs[i];
    if (wire.algorithm > static_cast<uint8_t>(FannAlgorithm::kApxSum)) {
      response.results[i] = RejectedWire(
          "unknown algorithm enumerator " + std::to_string(wire.algorithm));
      continue;
    }
    if (wire.aggregate > static_cast<uint8_t>(Aggregate::kSum)) {
      response.results[i] = RejectedWire(
          "unknown aggregate enumerator " + std::to_string(wire.aggregate));
      continue;
    }
    std::unique_ptr<IndexedVertexSet> p;
    std::unique_ptr<IndexedVertexSet> q;
    std::string error = MaterializeSets(wire, p, q);
    if (!error.empty()) {
      response.results[i] = RejectedWire(std::move(error));
      continue;
    }
    const double deadline_ms =
        EffectiveDeadlineMs(wire.deadline_ms, item.batch.deadline_ms,
                            config_.default_deadline_ms);
    std::optional<double> engine_deadline;
    if (deadline_ms > 0.0) {
      // End-to-end: the time already spent queued counts against the
      // deadline; the engine measures the rest from Run() entry.
      const double remaining = deadline_ms - item.e2e_timer.Millis();
      if (remaining <= 0.0) {
        response.results[i] = TimedOutWire(
            "deadline of " + std::to_string(deadline_ms) +
            " ms exceeded in the admission queue");
        continue;
      }
      engine_deadline = remaining;
    }

    FannrQuery job;
    job.query.graph = graph_;
    job.query.data_points = p.get();
    job.query.query_points = q.get();
    job.query.phi = wire.phi;
    job.query.aggregate = static_cast<Aggregate>(wire.aggregate);
    job.algorithm = static_cast<FannAlgorithm>(wire.algorithm);
    job.deadline_ms = engine_deadline;
    sets.push_back(std::move(p));
    sets.push_back(std::move(q));
    runnable.push_back(job);
    runnable_slot.push_back(i);
  }

  if (!runnable.empty()) {
    const std::vector<FannResult> results = engine_->Run(runnable);
    for (size_t j = 0; j < results.size(); ++j) {
      response.results[runnable_slot[j]] = ToWire(results[j]);
    }
  }
  return response;
}

void FannServer::ExecuteUpdate(WorkItem& item) {
  UpdateWeightsResponse response;
  dynamic::UpdateBatch batch;
  for (const UpdateWeightsRequest::Entry& e : item.update.entries) {
    batch.SetWeight(e.u, e.v, e.weight);
  }
  // Screen before Apply — Apply aborts on invalid entries by contract,
  // and frames are untrusted input.
  const std::string error = batch.ValidationError(*graph_);
  if (!error.empty()) {
    response.status = 1;
    response.error = error;
  } else {
    // Safe to mutate: the executor is the only thread running queries,
    // so no reader can race this apply (Graph's contract).
    const dynamic::ApplyResult applied = batch.Apply(*graph_);
    response.status = 0;
    response.applied = applied.applied;
    response.missing = applied.missing;
    response.old_epoch = applied.old_epoch;
    response.new_epoch = applied.new_epoch;
  }
  item.conn->WriteFrame(Opcode::kUpdateResult, item.request_id,
                        EncodeUpdateWeightsResponse(response));
}

void FannServer::ExecuteStats(WorkItem& item) {
  StatsResponse response;
  response.json = StatsJson();
  item.conn->WriteFrame(Opcode::kStatsResult, item.request_id,
                        EncodeStatsResponse(response));
}

std::string FannServer::StatsJson() const {
  const obs::MetricsSnapshot snapshot = metrics_.Snapshot();
  const SourceDistanceCache::Stats cache = engine_->cache_stats();
  std::string out = "{\n  \"server\": {\n    \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    out += std::string(i ? ", " : "") + "\"" +
           obs::internal_obs::JsonEscape(snapshot.counters[i].first) +
           "\": " + std::to_string(snapshot.counters[i].second);
  }
  out += "},\n    \"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out += std::string(i ? ", " : "") + "\"" +
           obs::internal_obs::JsonEscape(snapshot.gauges[i].first) +
           "\": " + Num(snapshot.gauges[i].second);
  }
  out += "},\n    \"histograms\": {";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    out += std::string(i ? ", " : "") + "\"" +
           obs::internal_obs::JsonEscape(snapshot.histograms[i].first) +
           "\": " + HistogramStatsJson(snapshot.histograms[i].second);
  }
  out += "}\n  },\n";
  out += "  \"graph_epoch\": " + std::to_string(graph_->epoch()) + ",\n";
  out += "  \"draining\": " + std::string(draining() ? "true" : "false") +
         ",\n";
  out += "  \"cache\": {\"hits\": " + std::to_string(cache.hits) +
         ", \"misses\": " + std::to_string(cache.misses) +
         ", \"evictions\": " + std::to_string(cache.evictions) +
         ", \"epoch_evictions\": " + std::to_string(cache.epoch_evictions) +
         "}\n}";
  return out;
}

DrainStats FannServer::Wait() {
  FANNR_CHECK(started_.load(std::memory_order_relaxed));
  // The accept thread exits when RequestShutdown pokes the wakeup pipe
  // (or the listener dies); joining it marks the start of the drain.
  accept_thread_.join();
  drain_timer_.Reset();
  listener_.Close();

  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    executor_stop_ = true;
  }
  queue_cv_.notify_all();
  executor_thread_.join();
  const double drain_ms = drain_timer_.Millis();

  // Responses for all drained work are flushed; now unblock and join
  // every reader (including ones that already finished and are merely
  // unreaped).
  std::unordered_map<uint64_t, std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const std::shared_ptr<Connection>& conn : connections_) {
      conn->open.store(false, std::memory_order_relaxed);
      conn->sock.ShutdownBoth();
    }
    readers = std::move(connection_threads_);
    connection_threads_.clear();
    connections_.clear();
    finished_threads_.clear();
  }
  for (auto& [id, t] : readers) t.join();
  started_.store(false, std::memory_order_relaxed);

  DrainStats stats;
  stats.drain_ms = drain_ms;
  stats.drained_items = drained_items_.load(std::memory_order_relaxed);
  stats.aborted_items = aborted_items_.load(std::memory_order_relaxed);
  stats.within_deadline = drain_ms <= config_.drain_deadline_ms;
  stats.final_stats_json = StatsJson();
  return stats;
}

}  // namespace fannr::net
