#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace fannr::net {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

bool Socket::ReadFull(void* data, size_t size, bool* eof) const {
  if (eof != nullptr) *eof = false;
  char* p = static_cast<char*>(data);
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::recv(fd_, p + done, size - done, 0);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      if (eof != nullptr) *eof = done == 0;
      return false;
    }
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

bool Socket::WriteFull(const void* data, size_t size) const {
  const char* p = static_cast<const char*>(data);
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::send(fd_, p + done, size - done, MSG_NOSIGNAL);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

Socket TcpListen(const std::string& host, uint16_t port,
                 uint16_t* bound_port, std::string* error) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    if (error != nullptr) *error = Errno("socket");
    return Socket();
  }
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "invalid IPv4 address: " + host;
    return Socket();
  }
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) *error = Errno("bind");
    return Socket();
  }
  if (::listen(sock.fd(), SOMAXCONN) != 0) {
    if (error != nullptr) *error = Errno("listen");
    return Socket();
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      if (error != nullptr) *error = Errno("getsockname");
      return Socket();
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return sock;
}

Socket TcpAccept(const Socket& listener, std::string* error) {
  while (true) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    if (error != nullptr) {
      // A closed/shutdown listener surfaces as EBADF/EINVAL — the normal
      // drain path, reported as an empty error.
      *error = (errno == EBADF || errno == EINVAL) ? "" : Errno("accept");
    }
    return Socket();
  }
}

Socket TcpConnect(const std::string& host, uint16_t port,
                  std::string* error) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    if (error != nullptr) *error = Errno("socket");
    return Socket();
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "invalid IPv4 address: " + host;
    return Socket();
  }
  while (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
    if (errno == EINTR) continue;
    if (error != nullptr) *error = Errno("connect");
    return Socket();
  }
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

}  // namespace fannr::net
