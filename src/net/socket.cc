#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>

namespace fannr::net {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

// Test-only transmit faults (see ScopedWriteFaultInjection). Relaxed
// atomics: tests install them before traffic and remove them after.
std::atomic<size_t> g_fault_max_chunk{0};
std::atomic<size_t> g_fault_eintr_period{0};
std::atomic<size_t> g_fault_transmit_count{0};

/// Caps `want` per the installed fault and reports whether this
/// transmit attempt should instead fail with a synthetic EINTR.
bool FaultyTransmit(size_t& want) {
  const size_t cap = g_fault_max_chunk.load(std::memory_order_relaxed);
  if (cap > 0 && want > cap) want = cap;
  const size_t period = g_fault_eintr_period.load(std::memory_order_relaxed);
  if (period > 0 &&
      g_fault_transmit_count.fetch_add(1, std::memory_order_relaxed) %
              period ==
          period - 1) {
    errno = EINTR;
    return true;
  }
  return false;
}

}  // namespace

ScopedWriteFaultInjection::ScopedWriteFaultInjection(
    const WriteFaultInjection& faults) {
  g_fault_transmit_count.store(0, std::memory_order_relaxed);
  g_fault_max_chunk.store(faults.max_chunk_bytes, std::memory_order_relaxed);
  g_fault_eintr_period.store(faults.eintr_period, std::memory_order_relaxed);
}

ScopedWriteFaultInjection::~ScopedWriteFaultInjection() {
  g_fault_max_chunk.store(0, std::memory_order_relaxed);
  g_fault_eintr_period.store(0, std::memory_order_relaxed);
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

bool Socket::ReadFull(void* data, size_t size, bool* eof) const {
  if (eof != nullptr) *eof = false;
  char* p = static_cast<char*>(data);
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::recv(fd_, p + done, size - done, 0);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      if (eof != nullptr) *eof = done == 0;
      return false;
    }
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

bool Socket::WriteFull(const void* data, size_t size) const {
  const char* p = static_cast<const char*>(data);
  size_t done = 0;
  while (done < size) {
    // A blocking send(2) may still transmit fewer bytes than asked (a
    // signal after a partial transfer, a small SO_SNDBUF) — the loop
    // continues from wherever the kernel stopped, so a frame can never
    // interleave with a concurrent writer's bytes mid-way. MSG_NOSIGNAL
    // turns a dead peer into EPIPE instead of a process-killing SIGPIPE.
    size_t want = size - done;
    const ssize_t n = FaultyTransmit(want)
                          ? -1
                          : ::send(fd_, p + done, want, MSG_NOSIGNAL);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool Socket::SetNonBlocking() const {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) == 0;
}

ssize_t Socket::SendSome(const void* data, size_t size) const {
  while (true) {
    // The same fault hooks as WriteFull: a capped chunk exercises the
    // partial-flush/EPOLLOUT continuation in the event loop, and a
    // synthetic EINTR must be retried here, not surfaced as an error.
    size_t want = size;
    const ssize_t n = FaultyTransmit(want)
                          ? -1
                          : ::send(fd_, data, want, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

ssize_t Socket::RecvSome(void* data, size_t size) const {
  while (true) {
    const ssize_t n = ::recv(fd_, data, size, 0);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

Socket TcpListen(const std::string& host, uint16_t port,
                 uint16_t* bound_port, std::string* error) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    if (error != nullptr) *error = Errno("socket");
    return Socket();
  }
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "invalid IPv4 address: " + host;
    return Socket();
  }
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) *error = Errno("bind");
    return Socket();
  }
  if (::listen(sock.fd(), SOMAXCONN) != 0) {
    if (error != nullptr) *error = Errno("listen");
    return Socket();
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      if (error != nullptr) *error = Errno("getsockname");
      return Socket();
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return sock;
}

Socket TcpAccept(const Socket& listener, std::string* error) {
  while (true) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    if (error != nullptr) {
      // A closed/shutdown listener surfaces as EBADF/EINVAL — the normal
      // drain path, reported as an empty error.
      *error = (errno == EBADF || errno == EINVAL) ? "" : Errno("accept");
    }
    return Socket();
  }
}

Socket TcpConnect(const std::string& host, uint16_t port,
                  std::string* error) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    if (error != nullptr) *error = Errno("socket");
    return Socket();
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "invalid IPv4 address: " + host;
    return Socket();
  }
  while (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
    if (errno == EINTR) continue;
    if (error != nullptr) *error = Errno("connect");
    return Socket();
  }
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

}  // namespace fannr::net
