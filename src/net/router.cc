#include "net/router.h"

#include <poll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "engine/batch_engine.h"
#include "fann/query.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fannr::net {

namespace {

WireResult RejectedWire(std::string error) {
  WireResult r;
  r.status = static_cast<uint8_t>(QueryStatus::kRejected);
  r.error = std::move(error);
  return r;
}

/// Canonical total order over feasible answers: the exact solvers all
/// return the (distance, vertex id)-minimal answer within their P, so
/// the same comparison over the shard winners reproduces the
/// single-node answer bitwise. An infeasible answer (best ==
/// kInvalidVertex) loses to any feasible one.
bool AnswerBeats(const WireResult& a, const WireResult& b) {
  const bool a_feasible = a.best != 0xFFFFFFFFu;
  const bool b_feasible = b.best != 0xFFFFFFFFu;
  if (a_feasible != b_feasible) return a_feasible;
  if (!a_feasible) return false;  // both infeasible: equivalent
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.best < b.best;
}

}  // namespace

MergedAnswer MergeShardAnswers(const std::vector<ShardAnswer>& answers) {
  FANNR_CHECK(!answers.empty());
  MergedAnswer merged;

  // Severity scan, all selections by lowest shard id so that the merge
  // is a pure function of the answer *set*.
  const ShardAnswer* transport_failed = nullptr;
  const ShardAnswer* overloaded = nullptr;
  const ShardAnswer* other_error = nullptr;
  for (const ShardAnswer& a : answers) {
    if (!a.transport_ok) {
      if (transport_failed == nullptr || a.shard < transport_failed->shard) {
        transport_failed = &a;
      }
    } else if (a.is_error) {
      if (a.error_code == ErrorCode::kOverloaded) {
        if (overloaded == nullptr || a.shard < overloaded->shard) {
          overloaded = &a;
        }
      } else if (other_error == nullptr || a.shard < other_error->shard) {
        other_error = &a;
      }
    }
  }
  if (transport_failed != nullptr) {
    merged.is_error = true;
    merged.error_code = ErrorCode::kInternal;
    merged.error_message =
        "shard " + std::to_string(transport_failed->shard) +
        " unreachable: " + transport_failed->error_message;
    return merged;
  }
  if (overloaded != nullptr) {
    merged.is_error = true;
    merged.error_code = ErrorCode::kOverloaded;
    merged.error_message = overloaded->error_message;
    return merged;
  }
  if (other_error != nullptr) {
    merged.is_error = true;
    merged.error_code = other_error->error_code;
    merged.error_message = "shard " + std::to_string(other_error->shard) +
                           ": " + other_error->error_message;
    return merged;
  }

  uint64_t min_epoch = answers.front().graph_epoch;
  uint64_t max_epoch = answers.front().graph_epoch;
  for (const ShardAnswer& a : answers) {
    min_epoch = std::min(min_epoch, a.graph_epoch);
    max_epoch = std::max(max_epoch, a.graph_epoch);
  }
  merged.graph_epoch = max_epoch;
  merged.epochs_disagree = min_epoch != max_epoch;

  // Per-job status: a rejection or timeout anywhere poisons the job
  // (the winner could be hiding in the failed shard's P-subset).
  const ShardAnswer* rejected = nullptr;
  const ShardAnswer* timed_out = nullptr;
  for (const ShardAnswer& a : answers) {
    const auto status = static_cast<QueryStatus>(a.result.status);
    if (status == QueryStatus::kRejected) {
      if (rejected == nullptr || a.shard < rejected->shard) rejected = &a;
    } else if (status == QueryStatus::kTimedOut) {
      if (timed_out == nullptr || a.shard < timed_out->shard) timed_out = &a;
    }
  }
  if (rejected != nullptr) {
    merged.result = rejected->result;
    return merged;
  }
  if (timed_out != nullptr) {
    merged.result = timed_out->result;
    return merged;
  }

  // All ok: canonical minimum across the shard winners, work summed.
  const ShardAnswer* best = &answers.front();
  uint64_t gphi = 0;
  for (const ShardAnswer& a : answers) {
    gphi += a.result.gphi_evaluations;
    if (AnswerBeats(a.result, best->result)) best = &a;
  }
  merged.result = best->result;
  merged.result.gphi_evaluations = gphi;
  return merged;
}

/// Per-connection state: the accepted socket, its service thread, and
/// this connection's private query clients (one per shard, connected
/// lazily; FannClient is not thread-safe, so they are never shared).
struct FannRouter::ConnEntry {
  Socket sock;
  std::thread thread;
  std::atomic<bool> done{false};
  std::vector<FannClient> shard_clients;
};

FannRouter::FannRouter(const ShardPlan& plan, RouterConfig config)
    : plan_(plan), config_(std::move(config)) {
  m_queries_ = metrics_.RegisterCounter("router.requests.query");
  m_batches_ = metrics_.RegisterCounter("router.requests.batch");
  m_updates_ = metrics_.RegisterCounter("router.requests.update");
  m_fanouts_ = metrics_.RegisterCounter("router.fanout.sub_batches");
  m_retries_ = metrics_.RegisterCounter("router.fanout.epoch_retries");
  m_stale_rejections_ = metrics_.RegisterCounter("router.stale_rejections");
  m_catch_up_records_ = metrics_.RegisterCounter("router.catch_up.records");
  m_shard_errors_ = metrics_.RegisterCounter("router.shard_errors");
}

FannRouter::~FannRouter() {
  RequestShutdown();
  Wait();
  if (stop_event_ >= 0) ::close(stop_event_);
}

bool FannRouter::Start(std::string* error) {
  auto fail = [&](const std::string& reason) {
    if (error != nullptr) *error = reason;
    return false;
  };
  if (config_.shards.size() != plan_.num_shards()) {
    return fail("router config lists " + std::to_string(config_.shards.size()) +
                " shards but the plan has " +
                std::to_string(plan_.num_shards()));
  }

  // Adopt the durable history: the fleet position is wherever the last
  // acknowledged update left it.
  if (config_.wal != nullptr) {
    history_ = config_.wal->records();
    repl_epoch_.store(config_.wal->end_epoch());
  }

  // Every shard must be reachable at start, and none may be ahead of
  // the history (an ahead shard means this router's history is stale —
  // serving through it would silently fork the epoch sequence).
  {
    std::lock_guard<std::mutex> lock(repl_mu_);
    repl_clients_.resize(config_.shards.size());
    for (size_t s = 0; s < config_.shards.size(); ++s) {
      std::string catch_up_error;
      if (!EnsureReplClientLocked(s)) {
        return fail("shard " + std::to_string(s) + " at " +
                    config_.shards[s].host + ":" +
                    std::to_string(config_.shards[s].port) + " is unreachable");
      }
      if (!CatchUpShardLocked(s, &catch_up_error)) {
        return fail("shard " + std::to_string(s) +
                    " could not be brought to epoch " +
                    std::to_string(repl_epoch_.load()) + ": " +
                    catch_up_error);
      }
    }
  }

  stop_event_ = ::eventfd(0, EFD_CLOEXEC);
  if (stop_event_ < 0) return fail("eventfd failed");
  std::string listen_error;
  listener_ = TcpListen(config_.host, config_.port, &port_, &listen_error);
  if (!listener_.valid()) return fail("listen failed: " + listen_error);
  accept_thread_ = std::thread(&FannRouter::AcceptLoop, this);
  return true;
}

void FannRouter::RequestShutdown() {
  if (stop_.exchange(true)) return;
  if (stop_event_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(stop_event_, &one, sizeof(one));
  }
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (const std::unique_ptr<ConnEntry>& conn : conns_) {
    conn->sock.ShutdownBoth();
  }
}

void FannRouter::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // Joining while holding conn_mu_ would deadlock against the very
  // connection thread that delivered the SHUTDOWN frame: it still needs
  // conn_mu_ (inside RequestShutdown) before it can exit. Detach the
  // entries under the lock, join outside it.
  std::vector<std::unique_ptr<ConnEntry>> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(conns_);
  }
  for (const std::unique_ptr<ConnEntry>& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void FannRouter::ReapFinishedLocked() {
  auto it = conns_.begin();
  while (it != conns_.end()) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void FannRouter::AcceptLoop() {
  while (!stop_.load()) {
    struct pollfd fds[2];
    fds[0] = {listener_.fd(), POLLIN, 0};
    fds[1] = {stop_event_, POLLIN, 0};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0 || stop_.load()) break;
    if (fds[0].revents == 0) continue;
    std::string accept_error;
    Socket sock = TcpAccept(listener_, &accept_error);
    if (!sock.valid()) continue;
    std::lock_guard<std::mutex> lock(conn_mu_);
    ReapFinishedLocked();
    conns_.push_back(std::make_unique<ConnEntry>());
    ConnEntry* entry = conns_.back().get();
    entry->sock = std::move(sock);
    entry->shard_clients.resize(config_.shards.size());
    entry->thread = std::thread(&FannRouter::ServeConnection, this, entry);
  }
  listener_.Close();
}

FannRouter::JobSplit FannRouter::SplitJob(const WireQuery& job) const {
  JobSplit split;
  // Jobs the plan cannot place — empty P or ids outside the graph —
  // pass through to shard 0 whole, so the client sees the identical
  // screening rejection a single server would produce.
  bool splittable = !job.p.empty();
  for (uint32_t v : job.p) {
    if (v >= plan_.num_vertices()) splittable = false;
  }
  if (!splittable) {
    split.targets.push_back(0);
    split.sub_p.push_back(job.p);
    return split;
  }
  std::vector<std::vector<uint32_t>> parts = plan_.SplitByShard(job.p);
  for (uint32_t s = 0; s < parts.size(); ++s) {
    if (parts[s].empty()) continue;
    split.targets.push_back(s);
    split.sub_p.push_back(std::move(parts[s]));
  }
  return split;
}

FannRouter::FanOutOutcome FannRouter::FanOutOnce(
    ConnEntry& conn, const std::vector<WireQuery>& jobs,
    double batch_deadline_ms) {
  FanOutOutcome outcome;
  const size_t num_shards = config_.shards.size();

  // Build one sub-batch per shard: job j contributes its shard-owned
  // P-slice to every shard that owns part of its P.
  std::vector<BatchRequest> sub_batches(num_shards);
  std::vector<std::vector<size_t>> sub_jobs(num_shards);  // -> job index
  std::vector<size_t> fan_degree(jobs.size(), 0);
  for (size_t j = 0; j < jobs.size(); ++j) {
    const JobSplit split = SplitJob(jobs[j]);
    for (size_t i = 0; i < split.targets.size(); ++i) {
      const uint32_t s = split.targets[i];
      WireQuery sub = jobs[j];
      sub.p = split.sub_p[i];
      sub_batches[s].jobs.push_back(std::move(sub));
      sub_jobs[s].push_back(j);
      ++fan_degree[j];
    }
  }

  // Write every sub-batch before reading any response: the shards
  // solve concurrently while the router waits.
  struct ShardWave {
    uint32_t shard = 0;
    uint64_t request_id = 0;
    bool sent = false;
    ShardAnswer batch_level;  // transport / error-frame outcome
    BatchResponse response;
  };
  std::vector<ShardWave> wave;
  for (uint32_t s = 0; s < num_shards; ++s) {
    if (sub_batches[s].jobs.empty()) continue;
    sub_batches[s].deadline_ms = batch_deadline_ms;
    ShardWave w;
    w.shard = s;
    w.batch_level.shard = s;
    FannClient& client = conn.shard_clients[s];
    if (!client.connected() &&
        !client.Connect(config_.shards[s].host, config_.shards[s].port)) {
      w.batch_level.transport_ok = false;
      w.batch_level.error_message = client.last_error();
      wave.push_back(std::move(w));
      continue;
    }
    if (!client.SendBatch(sub_batches[s], &w.request_id)) {
      w.batch_level.transport_ok = false;
      w.batch_level.error_message = client.last_error();
      client.Close();
      wave.push_back(std::move(w));
      continue;
    }
    w.sent = true;
    metrics_.Add(m_fanouts_, 1);
    wave.push_back(std::move(w));
  }

  for (ShardWave& w : wave) {
    if (!w.sent) continue;
    FannClient& client = conn.shard_clients[w.shard];
    FrameHeader header;
    std::vector<uint8_t> payload;
    bool got = false;
    while (client.ReadAny(header, payload)) {
      if (header.request_id != w.request_id) continue;  // stray frame
      got = true;
      break;
    }
    if (!got) {
      w.batch_level.transport_ok = false;
      w.batch_level.error_message = client.last_error();
      client.Close();
      continue;
    }
    w.batch_level.transport_ok = true;
    if (static_cast<Opcode>(header.opcode) == Opcode::kError) {
      ErrorResponse err;
      if (DecodeErrorResponse(payload, err)) {
        w.batch_level.is_error = true;
        w.batch_level.error_code = err.code;
        w.batch_level.error_message = std::move(err.message);
      } else {
        w.batch_level.transport_ok = false;
        w.batch_level.error_message = "undecodable error frame";
        client.Close();
      }
      continue;
    }
    if (!DecodeBatchResponse(payload, w.response) ||
        w.response.results.size() != sub_batches[w.shard].jobs.size()) {
      w.batch_level.transport_ok = false;
      w.batch_level.error_message = "undecodable BATCH_RESULT payload";
      client.Close();
      continue;
    }
    w.batch_level.graph_epoch = w.response.graph_epoch;
  }

  // Batch-level severity first: a transport failure or an error frame
  // (overload, drain) anywhere fails the whole request, exactly as a
  // single server fails the whole batch with one kError frame.
  {
    std::vector<ShardAnswer> batch_level;
    batch_level.reserve(wave.size());
    for (const ShardWave& w : wave) batch_level.push_back(w.batch_level);
    if (!batch_level.empty()) {
      const MergedAnswer verdict = MergeShardAnswers(batch_level);
      if (verdict.is_error) {
        metrics_.Add(m_shard_errors_, 1);
        outcome.is_error = true;
        outcome.error_code = verdict.error_code;
        outcome.error_message = verdict.error_message;
        return outcome;
      }
      outcome.graph_epoch = verdict.graph_epoch;
      outcome.epochs_disagree = verdict.epochs_disagree;
    }
  }

  // Per-job canonical merge.
  outcome.results.resize(jobs.size());
  std::vector<std::vector<ShardAnswer>> per_job(jobs.size());
  for (size_t j = 0; j < jobs.size(); ++j) per_job[j].reserve(fan_degree[j]);
  for (const ShardWave& w : wave) {
    for (size_t i = 0; i < sub_jobs[w.shard].size(); ++i) {
      ShardAnswer a;
      a.shard = w.shard;
      a.transport_ok = true;
      a.graph_epoch = w.response.graph_epoch;
      a.result = w.response.results[i];
      per_job[sub_jobs[w.shard][i]].push_back(std::move(a));
    }
  }
  for (size_t j = 0; j < jobs.size(); ++j) {
    FANNR_CHECK(!per_job[j].empty());
    outcome.results[j] = MergeShardAnswers(per_job[j]).result;
  }
  return outcome;
}

FannRouter::FanOutOutcome FannRouter::FanOut(ConnEntry& conn,
                                             const std::vector<WireQuery>& jobs,
                                             double batch_deadline_ms) {
  const uint64_t admitted = repl_epoch_.load();
  FanOutOutcome outcome = FanOutOnce(conn, jobs, batch_deadline_ms);
  if (outcome.is_error || !outcome.epochs_disagree) return outcome;

  // Shards answered under different epochs: a straggler replica (or an
  // update racing the fan-out). Bring the fleet back in step and retry
  // once; if the disagreement persists, reject rather than return a
  // result mixing weights from different epochs.
  metrics_.Add(m_retries_, 1);
  SyncShards();
  outcome = FanOutOnce(conn, jobs, batch_deadline_ms);
  if (outcome.is_error || !outcome.epochs_disagree) return outcome;

  metrics_.Add(m_stale_rejections_, 1);
  const std::string reason = MidBatchEpochError(admitted, outcome.graph_epoch);
  for (WireResult& result : outcome.results) result = RejectedWire(reason);
  outcome.epochs_disagree = false;
  return outcome;
}

bool FannRouter::EnsureReplClientLocked(size_t shard) {
  FannClient& client = repl_clients_[shard];
  if (client.connected()) return true;
  return client.Connect(config_.shards[shard].host,
                        config_.shards[shard].port);
}

bool FannRouter::CatchUpShardLocked(size_t shard, std::string* error) {
  auto fail = [&](const std::string& reason) {
    if (error != nullptr) *error = reason;
    metrics_.Add(m_shard_errors_, 1);
    return false;
  };
  if (!EnsureReplClientLocked(shard)) {
    return fail("unreachable");
  }
  FannClient& client = repl_clients_[shard];

  // An empty REPL_APPLY is a pure position probe: status 0 means the
  // shard is exactly at the fleet epoch, status 2 reports where it
  // actually is.
  ReplApplyRequest probe;
  probe.position = repl_epoch_.load();
  UpdateWeightsResponse response;
  if (!client.ReplApply(probe, response)) {
    client.Close();
    return fail("position probe failed: " + client.last_error());
  }
  if (response.status == 0) return true;
  if (response.status != 2) {
    return fail("position probe rejected: " + response.error);
  }
  const uint64_t shard_epoch = response.new_epoch;
  if (shard_epoch > repl_epoch_.load()) {
    return fail("replica is at epoch " + std::to_string(shard_epoch) +
                ", ahead of the router history (epoch " +
                std::to_string(repl_epoch_.load()) +
                ") — this router's WAL is stale");
  }

  // Replay the history tail from the replica's epoch forward. Records
  // below its epoch are already part of its past; everything at or
  // above replays in order and walks it to the fleet epoch.
  size_t replayed = 0;
  for (const dynamic::WalRecord& record : history_) {
    if (record.position < shard_epoch) continue;
    ReplApplyRequest apply;
    apply.position = record.position;
    apply.entries.reserve(record.entries.size());
    for (const dynamic::WalRecord::Entry& e : record.entries) {
      apply.entries.push_back({e.u, e.v, e.weight});
    }
    UpdateWeightsResponse applied;
    if (!client.ReplApply(apply, applied)) {
      client.Close();
      return fail("catch-up replay failed: " + client.last_error());
    }
    if (applied.status != 0) {
      return fail("catch-up replay of position " +
                  std::to_string(record.position) +
                  " rejected: " + applied.error);
    }
    ++replayed;
  }
  metrics_.Add(m_catch_up_records_, replayed);

  // The tail must have landed the replica on the fleet epoch.
  if (!client.ReplApply(probe, response)) {
    client.Close();
    return fail("post-replay probe failed: " + client.last_error());
  }
  if (response.status != 0) {
    return fail("replica still at epoch " + std::to_string(response.new_epoch) +
                " after replaying " + std::to_string(replayed) + " records");
  }
  return true;
}

void FannRouter::SyncShards() {
  std::lock_guard<std::mutex> lock(repl_mu_);
  for (size_t s = 0; s < config_.shards.size(); ++s) {
    std::string sync_error;
    (void)CatchUpShardLocked(s, &sync_error);  // unreachable shards wait
  }
}

void FannRouter::HandleUpdate(const UpdateWeightsRequest& request,
                              UpdateWeightsResponse& response,
                              ErrorCode* error_code,
                              std::string* error_message) {
  std::lock_guard<std::mutex> lock(repl_mu_);
  ReplApplyRequest repl;
  repl.position = repl_epoch_.load();
  repl.entries = request.entries;

  bool have_outcome = false;
  for (size_t s = 0; s < config_.shards.size(); ++s) {
    if (!EnsureReplClientLocked(s)) {
      metrics_.Add(m_shard_errors_, 1);
      continue;  // down replica: the history will catch it up later
    }
    FannClient& client = repl_clients_[s];
    UpdateWeightsResponse shard_response;
    if (!client.ReplApply(repl, shard_response)) {
      client.Close();
      metrics_.Add(m_shard_errors_, 1);
      continue;
    }
    if (shard_response.status == 2) {
      // Behind (it restarted): walk it to the fleet epoch, then retry.
      std::string catch_up_error;
      if (!CatchUpShardLocked(s, &catch_up_error) ||
          !client.ReplApply(repl, shard_response) ||
          shard_response.status == 2) {
        metrics_.Add(m_shard_errors_, 1);
        continue;
      }
    }
    if (shard_response.status == 1) {
      // Validation rejection is deterministic — every replica would
      // answer identically and nothing was applied anywhere.
      response = shard_response;
      return;
    }
    if (!have_outcome) {
      // Replicas apply the identical batch to the identical graph, so
      // the first applied response is authoritative for all.
      response = shard_response;
      have_outcome = true;
    }
  }

  if (!have_outcome) {
    *error_code = ErrorCode::kInternal;
    *error_message = "update reached no shard: all replicas unreachable";
    return;
  }

  dynamic::WalRecord record;
  record.position = repl.position;
  record.new_epoch = response.new_epoch;
  record.entries.reserve(request.entries.size());
  for (const UpdateWeightsRequest::Entry& e : request.entries) {
    record.entries.push_back({e.u, e.v, e.weight});
  }
  if (config_.wal != nullptr) (void)config_.wal->Append(record);
  history_.push_back(std::move(record));
  repl_epoch_.store(response.new_epoch);
}

void FannRouter::ServeConnection(ConnEntry* entry) {
  Socket& sock = entry->sock;
  auto write_frame = [&](Opcode opcode, uint64_t request_id,
                         std::span<const uint8_t> payload) {
    const std::vector<uint8_t> frame =
        EncodeFrame(static_cast<uint16_t>(opcode), request_id, payload);
    return sock.WriteFull(frame.data(), frame.size());
  };
  auto write_error = [&](uint64_t request_id, ErrorCode code,
                         std::string message) {
    ErrorResponse err;
    err.code = code;
    err.message = std::move(message);
    return write_frame(Opcode::kError, request_id, EncodeErrorResponse(err));
  };

  while (!stop_.load()) {
    uint8_t header_bytes[kFrameHeaderBytes];
    if (!sock.ReadFull(header_bytes, sizeof(header_bytes))) break;
    FrameHeader header;
    if (!DecodeFrameHeader(header_bytes, header)) break;
    bool fatal = false;
    const std::string envelope_error = FrameEnvelopeError(header, &fatal);
    if (fatal) break;
    std::vector<uint8_t> payload(header.payload_length);
    if (header.payload_length > 0 &&
        !sock.ReadFull(payload.data(), payload.size())) {
      break;
    }
    if (!envelope_error.empty()) {
      if (!write_error(header.request_id,
                       header.version != kProtocolVersion
                           ? ErrorCode::kUnsupportedVersion
                           : ErrorCode::kUnknownOpcode,
                       envelope_error)) {
        break;
      }
      continue;
    }

    bool ok = true;
    switch (static_cast<Opcode>(header.opcode)) {
      case Opcode::kPing:
        ok = write_frame(Opcode::kPong, header.request_id, {});
        break;
      case Opcode::kStats: {
        StatsResponse stats;
        stats.json = StatsJson();
        ok = write_frame(Opcode::kStatsResult, header.request_id,
                         EncodeStatsResponse(stats));
        break;
      }
      case Opcode::kShutdown:
        ok = write_frame(Opcode::kShutdownAck, header.request_id, {});
        RequestShutdown();
        break;
      case Opcode::kQuery: {
        metrics_.Add(m_queries_, 1);
        QueryRequest request;
        if (!DecodeQueryRequest(payload, request)) {
          ok = write_error(header.request_id, ErrorCode::kMalformedPayload,
                           "undecodable QUERY payload");
          break;
        }
        const FanOutOutcome outcome =
            FanOut(*entry, {request.query}, request.query.deadline_ms);
        if (outcome.is_error) {
          ok = write_error(header.request_id, outcome.error_code,
                           outcome.error_message);
          break;
        }
        QueryResponse response;
        response.graph_epoch = outcome.graph_epoch;
        response.result = outcome.results.front();
        ok = write_frame(Opcode::kQueryResult, header.request_id,
                         EncodeQueryResponse(response));
        break;
      }
      case Opcode::kBatch: {
        metrics_.Add(m_batches_, 1);
        BatchRequest request;
        if (!DecodeBatchRequest(payload, request)) {
          ok = write_error(header.request_id, ErrorCode::kMalformedPayload,
                           "undecodable BATCH payload");
          break;
        }
        if (request.jobs.empty()) {
          BatchResponse response;
          response.graph_epoch = repl_epoch_.load();
          ok = write_frame(Opcode::kBatchResult, header.request_id,
                           EncodeBatchResponse(response));
          break;
        }
        const FanOutOutcome outcome =
            FanOut(*entry, request.jobs, request.deadline_ms);
        if (outcome.is_error) {
          ok = write_error(header.request_id, outcome.error_code,
                           outcome.error_message);
          break;
        }
        BatchResponse response;
        response.graph_epoch = outcome.graph_epoch;
        response.results = outcome.results;
        ok = write_frame(Opcode::kBatchResult, header.request_id,
                         EncodeBatchResponse(response));
        break;
      }
      case Opcode::kUpdateWeights: {
        metrics_.Add(m_updates_, 1);
        UpdateWeightsRequest request;
        if (!DecodeUpdateWeightsRequest(payload, request)) {
          ok = write_error(header.request_id, ErrorCode::kMalformedPayload,
                           "undecodable UPDATE_WEIGHTS payload");
          break;
        }
        UpdateWeightsResponse response;
        ErrorCode code = ErrorCode::kNone;
        std::string message;
        HandleUpdate(request, response, &code, &message);
        ok = code != ErrorCode::kNone
                 ? write_error(header.request_id, code, std::move(message))
                 : write_frame(Opcode::kUpdateResult, header.request_id,
                               EncodeUpdateWeightsResponse(response));
        break;
      }
      case Opcode::kReplApply:
        // Replication is router -> shard; a client replicating through
        // the router would fork the epoch sequence.
        ok = write_error(header.request_id, ErrorCode::kUnknownOpcode,
                         "REPL_APPLY is not served by the router");
        break;
      default:
        ok = write_error(header.request_id, ErrorCode::kUnknownOpcode,
                         "opcode " + std::to_string(header.opcode) +
                             " is not a request opcode");
        break;
    }
    if (!ok) break;
  }
  entry->done.store(true);
}

std::string FannRouter::StatsJson() const {
  const obs::MetricsSnapshot snapshot = metrics_.Snapshot();
  std::string out = "{\n  \"router\": {\n    \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    out += std::string(i ? ", " : "") + "\"" +
           obs::internal_obs::JsonEscape(snapshot.counters[i].first) +
           "\": " + std::to_string(snapshot.counters[i].second);
  }
  out += "}\n  },\n";
  out += "  \"num_shards\": " + std::to_string(config_.shards.size()) + ",\n";
  out += "  \"repl_epoch\": " + std::to_string(repl_epoch_.load()) + ",\n";
  out += "  \"draining\": " + std::string(stop_.load() ? "true" : "false") +
         "\n}";
  return out;
}

}  // namespace fannr::net
