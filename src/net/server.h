// FannServer: the FANN_R query engine behind a TCP socket.
//
// A production deployment answers streams of queries arriving over time
// from many clients, interleaved with live weight updates — the setting
// the epoch machinery of src/dynamic/ exists for. The server speaks the
// length-prefixed binary protocol of net/protocol.h and is structured as
// two thread roles:
//
//   * a small fixed pool of epoll event-loop threads (num_io_threads,
//     default 1) owning every socket in nonblocking mode. Each
//     connection accumulates bytes in a receive queue and has frames
//     cut off it incrementally (net/iobuf.h), so a client may
//     **pipeline**: many request frames in flight on one connection,
//     responses tagged by request_id and allowed to complete out of
//     order (a PING answered inline can overtake a queued QUERY's
//     response; work responses themselves stay FIFO per connection
//     because one executor drains the queue in order). Responses are
//     appended to a per-connection transmit queue and flushed as the
//     kernel accepts them (EPOLLOUT only while bytes remain). A
//     connection whose transmit backlog exceeds max_outbound_bytes
//     stops being read — write-side backpressure — until the backlog
//     drains below half the bound, so a client that never reads
//     responses cannot buffer the server to death. Loop 0 also owns
//     the listener and sheds connections over max_connections with
//     OVERLOADED;
//   * one executor thread, which drains the admission queue FIFO and
//     is the only thread that touches the BatchQueryEngine or applies
//     weight updates. This serialization is load-bearing: the Graph
//     contract forbids ApplyWeightUpdates racing readers, and Run()
//     must not be called concurrently. Queries never see torn weights
//     by construction, and every response reports the epoch it was
//     computed under. Runs of consecutive QUERY items admitted under
//     the same epoch (up to merge_budget, across connections) are
//     executed through ONE engine Run so pipelined small queries
//     amortize dispatch — per-job results are bitwise-independent of
//     batch composition (the engine's determinism contract), so
//     merging never changes an answer.
//
// Admission into the bounded queue happens on the event-loop thread as
// frames decode; a full queue is answered with OVERLOADED (the server
// sheds load explicitly instead of buffering without limit).
//
// Admission epochs: a QUERY/BATCH item records the graph epoch at
// enqueue. If an UPDATE_WEIGHTS lands in between (FIFO order), the item
// is rejected with the engine's canonical mid-batch reason instead of
// being silently answered under weights the client never observed at
// admission — the same re-submit contract in-process callers get.
//
// Deadlines are end-to-end: a request's deadline_ms counts from
// admission, queue wait is subtracted before the engine runs, and
// expiry anywhere along the path yields QueryStatus::kTimedOut.
//
// Graceful drain (SIGTERM via RequestShutdown, or a SHUTDOWN frame):
// stop accepting connections, refuse new work frames (SHUTTING_DOWN),
// finish queued work until the drain deadline (aborting the remainder),
// flush responses, close connections, and expose the final
// observability snapshot in the DrainStats.

#ifndef FANNR_NET_SERVER_H_
#define FANNR_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "engine/batch_engine.h"
#include "net/iobuf.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace fannr::cont {
class SubscriptionTable;
}  // namespace fannr::cont

namespace fannr::dynamic {
class UpdateWal;
struct ApplyResult;
}  // namespace fannr::dynamic

namespace fannr::net {

struct ServerConfig {
  std::string host = "127.0.0.1";
  /// 0 = kernel assigns an ephemeral port (read it back via port()).
  uint16_t port = 0;

  /// Event-loop threads. One loop comfortably serves hundreds of
  /// connections (the engine, not I/O, is the bottleneck); raise only
  /// when profiles show the loop saturated.
  size_t num_io_threads = 1;

  /// Connections beyond this are answered with OVERLOADED and closed.
  size_t max_connections = 64;

  /// Bounded admission queue: work frames arriving while `queue_depth`
  /// items are pending are answered with OVERLOADED instead of buffered.
  size_t max_queue_depth = 128;

  /// Write-side backpressure: a connection whose un-flushed transmit
  /// backlog exceeds this stops being read until it drains below half.
  size_t max_outbound_bytes = 4u << 20;

  /// Max consecutive same-epoch QUERY items merged into one engine Run
  /// (pipelining dispatch amortization). 1 disables merging.
  size_t merge_budget = 64;

  /// Standing-subscription bounds (see src/cont/subscription.h): a
  /// SUBSCRIBE past either limit is answered OVERLOADED instead of
  /// registered, so subscribers cannot grow executor-side state without
  /// limit. 0 = that limit disabled.
  size_t max_subscriptions_per_connection = 8;
  size_t max_subscriptions_total = 1024;

  /// Default end-to-end deadline for work items without their own
  /// (<= 0 = none). Counted from admission into the queue.
  double default_deadline_ms = 0.0;

  /// Wall-clock budget for finishing queued work during drain; items
  /// still queued past it are answered with SHUTTING_DOWN.
  double drain_deadline_ms = 10'000.0;

  /// Engine configuration (worker threads, g_phi oracle, cache sizing,
  /// metrics). The server forces enable_metrics on so STATS and the
  /// slow-query log always work.
  BatchOptions engine_options;

  /// Optional durability: when set, every applied update batch
  /// (UPDATE_WEIGHTS and REPL_APPLY alike) is appended — with its epoch
  /// position — before the response is sent, so a restarted server
  /// replays its way back to the epoch it crashed at. Not owned; must
  /// outlive the server. Only the executor thread touches it.
  dynamic::UpdateWal* wal = nullptr;

  /// Test-only: invoked by the executor thread before processing each
  /// dequeued item (including each item merged into a query burst).
  /// Lets tests hold the executor to fill the admission queue
  /// deterministically. Leave empty in production.
  std::function<void()> test_execution_gate;
};

/// Final accounting of a graceful drain, returned by Wait().
struct DrainStats {
  double drain_ms = 0.0;      ///< RequestShutdown to fully drained.
  size_t drained_items = 0;   ///< Queued items executed during drain.
  size_t aborted_items = 0;   ///< Queued items past the drain deadline.
  bool within_deadline = false;
  std::string final_stats_json;  ///< Last observability snapshot.
};

/// The server. Construct, Start(), then Wait() (blocks until a shutdown
/// is requested and the drain completes). `graph` is mutated by
/// UPDATE_WEIGHTS frames and must outlive the server, as must every
/// index inside `resources` (resources.graph must equal `graph`).
class FannServer {
 public:
  FannServer(Graph* graph, const GphiResources& resources,
             ServerConfig config);
  ~FannServer();

  FannServer(const FannServer&) = delete;
  FannServer& operator=(const FannServer&) = delete;

  /// Binds, listens, and spawns the event-loop + executor threads.
  /// False (with a reason) on socket errors; the server is then inert.
  bool Start(std::string* error);

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }

  /// Initiates graceful drain. Async-signal-safe (eventfd writes plus a
  /// relaxed atomic store) — call it straight from a SIGTERM handler.
  /// Idempotent.
  void RequestShutdown();

  /// Blocks until a shutdown is requested and the drain completes,
  /// joins every thread, and returns the drain accounting. Call at most
  /// once, after Start().
  DrainStats Wait();

  /// True once a shutdown has been requested.
  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  /// Current observability snapshot (server registry + engine) as JSON.
  /// Safe to call from any thread; counters may be mid-update while
  /// traffic flows (exact once quiesced).
  std::string StatsJson() const;

  /// Threads serving connections — the fixed event-loop pool, sized at
  /// Start() and independent of connection count or churn
  /// (tests/net_server_test.cc asserts the bound under churn).
  size_t tracked_connection_threads() const;

  /// The underlying engine (test/bench access; do not call Run on it
  /// while the server is serving).
  BatchQueryEngine& engine() { return *engine_; }

  /// Server-side registry: per-opcode request counters, queue depth
  /// gauge, end-to-end latency histograms.
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  struct Connection;
  struct IoLoop;
  struct WorkItem;

  // --- Event-loop side (each method runs on the loop's own thread
  // unless noted) ---
  void IoLoopMain(size_t index);
  void AcceptReady(IoLoop& loop);
  void RegisterConnection(IoLoop& loop,
                          const std::shared_ptr<Connection>& conn);
  void ReadConnection(IoLoop& loop, const std::shared_ptr<Connection>& conn);
  /// Cuts and dispatches every complete frame buffered on `conn`.
  /// Returns false when reading must stop (connection closed or
  /// backpressure paused it).
  bool ParseAndDispatch(IoLoop& loop, const std::shared_ptr<Connection>& conn);
  void DispatchFrame(const std::shared_ptr<Connection>& conn, FrameCut& cut);
  /// Appends an encoded frame to the connection's transmit queue and
  /// notifies its loop. Callable from any thread (the executor responds
  /// through this).
  void EnqueueFrame(const std::shared_ptr<Connection>& conn, Opcode opcode,
                    uint64_t request_id, std::span<const uint8_t> payload);
  void EnqueueError(const std::shared_ptr<Connection>& conn,
                    uint64_t request_id, ErrorCode code, std::string message);
  void FlushConnection(IoLoop& loop, const std::shared_ptr<Connection>& conn);
  void UpdateInterest(IoLoop& loop, Connection& conn);
  void CloseConnection(IoLoop& loop, Connection& conn);
  /// Adopts mailed-in connections and flushes ones marked dirty by
  /// writers on other threads.
  void ProcessMail(IoLoop& loop);
  /// End of a loop's life: flush remaining transmit queues (bounded),
  /// then close every connection.
  void DrainLoopAndClose(IoLoop& loop);
  static void WakeLoop(IoLoop& loop);

  // --- Executor side ---
  void ExecutorMain();
  void Execute(WorkItem& item);
  /// Executes a run of same-epoch QUERY items through one engine Run
  /// and scatters per-item QUERY_RESULT responses.
  void ExecuteQueryBurst(const std::vector<WorkItem*>& items);
  void ExecuteBatch(WorkItem& item);
  /// Screens and executes the wire jobs of `item.batch` through one
  /// engine Run; slots screened out at the net layer (bad ids, unknown
  /// enumerators, expired deadlines) carry their rejection in place.
  BatchResponse RunJobs(WorkItem& item);
  /// Screens one wire job; true = appended to `runnable` (with its
  /// vertex sets kept alive in `sets`), false = `*rejected` filled.
  bool ScreenJob(const WireQuery& wire, double batch_deadline_ms,
                 const Timer& e2e_timer,
                 std::vector<std::unique_ptr<IndexedVertexSet>>& sets,
                 std::vector<FannrQuery>& runnable, WireResult* rejected);
  void ExecuteUpdate(WorkItem& item);
  /// Appends an applied batch to the configured WAL (no-op without
  /// one). Executor thread only.
  void LogToWal(const std::vector<UpdateWeightsRequest::Entry>& entries,
                const dynamic::ApplyResult& applied);
  /// Applies a positioned replication batch: entries apply only when
  /// the graph is exactly at the requested epoch (status 2 otherwise),
  /// which keeps every replica walking the same epoch sequence.
  void ExecuteReplApply(WorkItem& item);
  void ExecuteStats(WorkItem& item);
  /// Registers a standing query (opcode kSubscribe): screens it, solves
  /// the initial answer, and registers iff that answer is kOk. The
  /// SUBSCRIBE frame's request_id becomes the subscription id.
  void ExecuteSubscribe(WorkItem& item);
  void ExecuteUnsubscribe(WorkItem& item);
  /// Re-solves every live subscription against the current (just
  /// bumped) graph epoch through one tagged engine Run, then pushes the
  /// answers that visibly changed (or all of them, for force_push
  /// subscriptions). Called by the executor right after an applied
  /// weight update, so pushes are solved at exactly the epoch they are
  /// stamped with.
  void ReevaluateSubscriptions();
  /// Pushes one re-evaluated answer unless the connection's transmit
  /// backlog exceeds max_outbound_bytes — then the push is dropped
  /// (conflated: delivery state does not advance, so the next
  /// re-evaluation retries). Returns whether the frame was enqueued.
  bool TryEnqueuePush(const std::shared_ptr<Connection>& conn,
                      uint64_t subscription_id,
                      std::span<const uint8_t> payload);
  /// Validates a WireQuery's ids against the graph and materializes the
  /// vertex sets; empty return = ok. Mirrors in-process screening: any
  /// violation becomes a kRejected result, never UB.
  std::string MaterializeSets(const WireQuery& wire,
                              std::unique_ptr<IndexedVertexSet>& p,
                              std::unique_ptr<IndexedVertexSet>& q) const;

  Graph* graph_;
  GphiResources resources_;
  ServerConfig config_;
  std::unique_ptr<BatchQueryEngine> engine_;
  /// Live standing queries. Executor-thread-only, like the engine.
  std::unique_ptr<cont::SubscriptionTable> subs_;

  Socket listener_;
  uint16_t port_ = 0;
  /// Blocking eventfd RequestShutdown writes and Wait() reads: a wake
  /// can never be silently dropped the way a full pipe drops writes
  /// (the counter stays readable until consumed), and writing it stays
  /// async-signal-safe.
  int drain_wake_fd_ = -1;
  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};
  /// Tells the event loops to flush and exit (set by Wait after the
  /// executor has drained, so every response is already enqueued).
  std::atomic<bool> io_stop_{false};

  /// Fixed at Start(); the vector itself is immutable afterwards, which
  /// is what lets RequestShutdown walk it from a signal handler.
  std::vector<std::unique_ptr<IoLoop>> io_loops_;
  std::atomic<size_t> live_connections_{0};
  std::atomic<size_t> next_loop_{0};  ///< Round-robin placement.

  std::thread executor_thread_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<WorkItem> queue_;
  bool executor_stop_ = false;  // set once drain wants the executor out

  // Drain accounting (written by Wait/executor, read by Wait).
  Timer drain_timer_;
  std::atomic<size_t> drained_items_{0};
  std::atomic<size_t> aborted_items_{0};

  // Server registry (single shard: event-loop threads contend only on
  // relaxed atomics, never a lock).
  obs::MetricsRegistry metrics_{1};
  obs::CounterId m_req_query_, m_req_batch_, m_req_update_, m_req_stats_,
      m_req_ping_, m_req_shutdown_, m_req_repl_, m_errors_, m_overloaded_,
      m_bad_frames_, m_connections_, m_stale_admission_, m_accept_errors_,
      m_req_subscribe_, m_req_unsubscribe_, m_pushes_sent_,
      m_pushes_suppressed_, m_pushes_dropped_;
  obs::GaugeId m_queue_depth_, m_subs_active_;
  obs::HistogramId m_e2e_query_ms_, m_e2e_batch_ms_, m_e2e_update_ms_,
      m_queue_wait_ms_, m_push_latency_ms_;
};

}  // namespace fannr::net

#endif  // FANNR_NET_SERVER_H_
