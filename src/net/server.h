// FannServer: the FANN_R query engine behind a TCP socket.
//
// A production deployment answers streams of queries arriving over time
// from many clients, interleaved with live weight updates — the setting
// the epoch machinery of src/dynamic/ exists for. The server speaks the
// length-prefixed binary protocol of net/protocol.h and is structured as
// three thread roles:
//
//   * one accept thread, parked in poll() on the listener and a wakeup
//     pipe (so shutdown never races a blocking accept);
//   * one reader thread per connection, which validates frame envelopes,
//     decodes payloads, answers PING inline, and admits work into the
//     queue — or answers OVERLOADED when the queue is at capacity
//     (bounded admission: the server sheds load explicitly instead of
//     buffering without limit);
//   * one executor thread, which drains the queue FIFO and is the only
//     thread that touches the BatchQueryEngine or applies weight
//     updates. This serialization is load-bearing: the Graph contract
//     forbids ApplyWeightUpdates racing readers, and Run() must not be
//     called concurrently. Queries never see torn weights by
//     construction, and every response reports the epoch it was
//     computed under.
//
// Admission epochs: a QUERY/BATCH item records the graph epoch at
// enqueue. If an UPDATE_WEIGHTS lands in between (FIFO order), the item
// is rejected with the engine's canonical mid-batch reason instead of
// being silently answered under weights the client never observed at
// admission — the same re-submit contract in-process callers get.
//
// Deadlines are end-to-end: a request's deadline_ms counts from
// admission, queue wait is subtracted before the engine runs, and
// expiry anywhere along the path yields QueryStatus::kTimedOut.
//
// Graceful drain (SIGTERM via RequestShutdown, or a SHUTDOWN frame):
// stop accepting connections, refuse new work frames (SHUTTING_DOWN),
// finish queued work until the drain deadline (aborting the remainder),
// flush responses, close connections, and expose the final
// observability snapshot in the DrainStats.

#ifndef FANNR_NET_SERVER_H_
#define FANNR_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/timer.h"
#include "engine/batch_engine.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace fannr::net {

struct ServerConfig {
  std::string host = "127.0.0.1";
  /// 0 = kernel assigns an ephemeral port (read it back via port()).
  uint16_t port = 0;

  /// Connections beyond this are answered with OVERLOADED and closed.
  size_t max_connections = 64;

  /// Bounded admission queue: work frames arriving while `queue_depth`
  /// items are pending are answered with OVERLOADED instead of buffered.
  size_t max_queue_depth = 128;

  /// Default end-to-end deadline for work items without their own
  /// (<= 0 = none). Counted from admission into the queue.
  double default_deadline_ms = 0.0;

  /// Wall-clock budget for finishing queued work during drain; items
  /// still queued past it are answered with SHUTTING_DOWN.
  double drain_deadline_ms = 10'000.0;

  /// Engine configuration (worker threads, g_phi oracle, cache sizing,
  /// metrics). The server forces enable_metrics on so STATS and the
  /// slow-query log always work.
  BatchOptions engine_options;

  /// Test-only: invoked by the executor thread before processing each
  /// dequeued item. Lets tests hold the executor to fill the admission
  /// queue deterministically. Leave empty in production.
  std::function<void()> test_execution_gate;
};

/// Final accounting of a graceful drain, returned by Wait().
struct DrainStats {
  double drain_ms = 0.0;      ///< RequestShutdown to fully drained.
  size_t drained_items = 0;   ///< Queued items executed during drain.
  size_t aborted_items = 0;   ///< Queued items past the drain deadline.
  bool within_deadline = false;
  std::string final_stats_json;  ///< Last observability snapshot.
};

/// The server. Construct, Start(), then Wait() (blocks until a shutdown
/// is requested and the drain completes). `graph` is mutated by
/// UPDATE_WEIGHTS frames and must outlive the server, as must every
/// index inside `resources` (resources.graph must equal `graph`).
class FannServer {
 public:
  FannServer(Graph* graph, const GphiResources& resources,
             ServerConfig config);
  ~FannServer();

  FannServer(const FannServer&) = delete;
  FannServer& operator=(const FannServer&) = delete;

  /// Binds, listens, and spawns the accept + executor threads. False
  /// (with a reason) on socket errors; the server is then inert.
  bool Start(std::string* error);

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }

  /// Initiates graceful drain. Async-signal-safe (one write(2) to the
  /// wakeup pipe plus a relaxed atomic store) — call it straight from a
  /// SIGTERM handler. Idempotent.
  void RequestShutdown();

  /// Blocks until the drain completes, joins every thread, and returns
  /// the drain accounting. Call at most once, after Start().
  DrainStats Wait();

  /// True once a shutdown has been requested.
  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  /// Current observability snapshot (server registry + engine) as JSON.
  /// Safe to call from any thread; counters may be mid-update while
  /// traffic flows (exact once quiesced).
  std::string StatsJson() const;

  /// Connection-serving threads currently tracked (live plus finished-
  /// but-unreaped). Bounded over any churn of connect/disconnect cycles:
  /// finished reader threads are joined opportunistically as new
  /// connections arrive instead of accumulating until shutdown
  /// (tests/net_server_test.cc asserts the bound under churn).
  size_t tracked_connection_threads() const;

  /// The underlying engine (test/bench access; do not call Run on it
  /// while the server is serving).
  BatchQueryEngine& engine() { return *engine_; }

  /// Server-side registry: per-opcode request counters, queue depth
  /// gauge, end-to-end latency histograms.
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  struct Connection;
  struct WorkItem;

  void AcceptMain();
  void ConnectionMain(std::shared_ptr<Connection> conn, uint64_t thread_id);
  /// Joins reader threads whose ConnectionMain has finished and drops
  /// their closed Connection records. Called from the accept loop (so a
  /// long-lived server reaps as it churns) and from Wait().
  void ReapFinishedConnections();
  void ExecutorMain();
  void Execute(WorkItem& item);
  void ExecuteQuery(WorkItem& item);
  void ExecuteBatch(WorkItem& item);
  /// Screens and executes the wire jobs of `item.batch` through one
  /// engine Run; slots screened out at the net layer (bad ids, unknown
  /// enumerators, expired deadlines) carry their rejection in place.
  BatchResponse RunJobs(WorkItem& item);
  void ExecuteUpdate(WorkItem& item);
  void ExecuteStats(WorkItem& item);
  /// Validates a WireQuery's ids against the graph and materializes the
  /// vertex sets; empty return = ok. Mirrors in-process screening: any
  /// violation becomes a kRejected result, never UB.
  std::string MaterializeSets(const WireQuery& wire,
                              std::unique_ptr<IndexedVertexSet>& p,
                              std::unique_ptr<IndexedVertexSet>& q) const;

  Graph* graph_;
  GphiResources resources_;
  ServerConfig config_;
  std::unique_ptr<BatchQueryEngine> engine_;

  Socket listener_;
  uint16_t port_ = 0;
  /// Self-wake eventfd: RequestShutdown adds to its counter, which is
  /// level-triggered readable until drained — a wake can never be
  /// silently dropped the way a full pipe drops writes, and writing it
  /// stays async-signal-safe.
  int wake_fd_ = -1;
  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};

  std::thread accept_thread_;
  std::thread executor_thread_;
  mutable std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::unordered_map<uint64_t, std::thread> connection_threads_;
  std::vector<uint64_t> finished_threads_;  ///< Ready to join + erase.
  uint64_t next_thread_id_ = 0;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<WorkItem> queue_;
  bool executor_stop_ = false;  // set once drain wants the executor out

  // Drain accounting (written by Wait/executor, read by Wait).
  Timer drain_timer_;
  std::atomic<size_t> drained_items_{0};
  std::atomic<size_t> aborted_items_{0};

  // Server registry (single shard: reader threads contend only on
  // relaxed atomics, never a lock).
  obs::MetricsRegistry metrics_{1};
  obs::CounterId m_req_query_, m_req_batch_, m_req_update_, m_req_stats_,
      m_req_ping_, m_req_shutdown_, m_errors_, m_overloaded_, m_bad_frames_,
      m_connections_, m_stale_admission_;
  obs::GaugeId m_queue_depth_;
  obs::HistogramId m_e2e_query_ms_, m_e2e_batch_ms_, m_e2e_update_ms_,
      m_queue_wait_ms_;
};

}  // namespace fannr::net

#endif  // FANNR_NET_SERVER_H_
