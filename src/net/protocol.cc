#include "net/protocol.h"

#include <cmath>

namespace fannr::net {

namespace {

// Shared by the single-query, batch, and subscribe encodings.
void EncodeWireQuery(const WireQuery& query, WireWriter& w) {
  w.U8(query.algorithm);
  w.U8(query.aggregate);
  w.F64(query.phi);
  w.F64(query.deadline_ms);
  w.VecU32(query.p);
  w.VecU32(query.q);
  w.VecF64(query.weights);
}

bool DecodeWireQuery(WireReader& r, WireQuery& query) {
  if (!(r.U8(query.algorithm) && r.U8(query.aggregate) && r.F64(query.phi) &&
        r.F64(query.deadline_ms) && r.VecU32(query.p) && r.VecU32(query.q) &&
        r.VecF64(query.weights))) {
    return false;
  }
  // Weights are either absent or exactly one per query point; any other
  // count is a malformed frame, not a job to screen later.
  return query.weights.empty() || query.weights.size() == query.q.size();
}

void EncodeWireResult(const WireResult& result, WireWriter& w) {
  w.U8(result.status);
  if (result.status == static_cast<uint8_t>(QueryStatus::kOk)) {
    w.U32(result.best);
    w.F64(result.distance);
    w.U64(result.gphi_evaluations);
    w.VecU32(result.subset);
  } else {
    w.String(result.error);
  }
}

bool DecodeWireResult(WireReader& r, WireResult& result) {
  if (!r.U8(result.status)) return false;
  // Only the three QueryStatus enumerators are valid on the wire; any
  // other value is corruption, not a status to cast blindly.
  if (result.status > static_cast<uint8_t>(QueryStatus::kTimedOut)) {
    return false;
  }
  if (result.status == static_cast<uint8_t>(QueryStatus::kOk)) {
    return r.U32(result.best) && r.F64(result.distance) &&
           r.U64(result.gphi_evaluations) && r.VecU32(result.subset);
  }
  return r.String(result.error);
}

}  // namespace

bool IsRequestOpcode(uint16_t opcode) {
  switch (static_cast<Opcode>(opcode)) {
    case Opcode::kQuery:
    case Opcode::kBatch:
    case Opcode::kUpdateWeights:
    case Opcode::kStats:
    case Opcode::kPing:
    case Opcode::kShutdown:
    case Opcode::kReplApply:
    case Opcode::kSubscribe:
    case Opcode::kUnsubscribe:
      return true;
    default:
      return false;
  }
}

std::string_view OpcodeName(uint16_t opcode) {
  switch (static_cast<Opcode>(opcode)) {
    case Opcode::kQuery:
      return "QUERY";
    case Opcode::kBatch:
      return "BATCH";
    case Opcode::kUpdateWeights:
      return "UPDATE_WEIGHTS";
    case Opcode::kStats:
      return "STATS";
    case Opcode::kPing:
      return "PING";
    case Opcode::kShutdown:
      return "SHUTDOWN";
    case Opcode::kReplApply:
      return "REPL_APPLY";
    case Opcode::kSubscribe:
      return "SUBSCRIBE";
    case Opcode::kUnsubscribe:
      return "UNSUBSCRIBE";
    case Opcode::kQueryResult:
      return "QUERY_RESULT";
    case Opcode::kBatchResult:
      return "BATCH_RESULT";
    case Opcode::kUpdateResult:
      return "UPDATE_RESULT";
    case Opcode::kStatsResult:
      return "STATS_RESULT";
    case Opcode::kPong:
      return "PONG";
    case Opcode::kShutdownAck:
      return "SHUTDOWN_ACK";
    case Opcode::kReplApplyResult:
      return "REPL_APPLY_RESULT";
    case Opcode::kSubscribeResult:
      return "SUBSCRIBE_RESULT";
    case Opcode::kUnsubscribeResult:
      return "UNSUBSCRIBE_RESULT";
    case Opcode::kPushAnswer:
      return "PUSH_ANSWER";
    case Opcode::kError:
      return "ERROR";
  }
  return "?";
}

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone:
      return "NONE";
    case ErrorCode::kMalformedPayload:
      return "MALFORMED_PAYLOAD";
    case ErrorCode::kUnsupportedVersion:
      return "UNSUPPORTED_VERSION";
    case ErrorCode::kUnknownOpcode:
      return "UNKNOWN_OPCODE";
    case ErrorCode::kOverloaded:
      return "OVERLOADED";
    case ErrorCode::kShuttingDown:
      return "SHUTTING_DOWN";
    case ErrorCode::kInternal:
      return "INTERNAL";
  }
  return "?";
}

void EncodeFrameHeader(const FrameHeader& header, WireWriter& out) {
  out.U32(header.magic);
  out.U16(header.version);
  out.U16(header.opcode);
  out.U64(header.request_id);
  out.U32(header.payload_length);
  out.U32(header.reserved);
}

bool DecodeFrameHeader(std::span<const uint8_t> bytes, FrameHeader& header) {
  WireReader r(bytes);
  return r.U32(header.magic) && r.U16(header.version) &&
         r.U16(header.opcode) && r.U64(header.request_id) &&
         r.U32(header.payload_length) && r.U32(header.reserved);
}

std::string FrameEnvelopeError(const FrameHeader& header, bool* fatal) {
  if (fatal != nullptr) *fatal = false;
  if (header.magic != kMagic) {
    // The stream is not speaking this protocol (or lost sync): there is
    // no trustworthy frame boundary to resume from.
    if (fatal != nullptr) *fatal = true;
    return "bad magic";
  }
  if (header.payload_length > kMaxPayloadBytes) {
    if (fatal != nullptr) *fatal = true;
    return "declared payload length " + std::to_string(header.payload_length) +
           " exceeds the " + std::to_string(kMaxPayloadBytes) + "-byte limit";
  }
  if (header.reserved != 0) {
    if (fatal != nullptr) *fatal = true;
    return "reserved header field is nonzero";
  }
  if (header.version != kProtocolVersion) {
    return "unsupported protocol version " + std::to_string(header.version) +
           " (this server speaks " + std::to_string(kProtocolVersion) + ")";
  }
  if (!IsRequestOpcode(header.opcode) &&
      static_cast<Opcode>(header.opcode) != Opcode::kError &&
      OpcodeName(header.opcode) == "?") {
    return "unknown opcode " + std::to_string(header.opcode);
  }
  return std::string();
}

std::vector<uint8_t> EncodeFrame(uint16_t opcode, uint64_t request_id,
                                 std::span<const uint8_t> payload) {
  FrameHeader header;
  header.opcode = opcode;
  header.request_id = request_id;
  header.payload_length = static_cast<uint32_t>(payload.size());
  WireWriter w;
  EncodeFrameHeader(header, w);
  std::vector<uint8_t> out = w.Take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<uint8_t> EncodeQueryRequest(const QueryRequest& request) {
  WireWriter w;
  EncodeWireQuery(request.query, w);
  return w.Take();
}

std::vector<uint8_t> EncodeBatchRequest(const BatchRequest& request) {
  WireWriter w;
  w.F64(request.deadline_ms);
  w.U32(static_cast<uint32_t>(request.jobs.size()));
  for (const WireQuery& job : request.jobs) EncodeWireQuery(job, w);
  return w.Take();
}

std::vector<uint8_t> EncodeUpdateWeightsRequest(
    const UpdateWeightsRequest& request) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(request.entries.size()));
  for (const UpdateWeightsRequest::Entry& e : request.entries) {
    w.U32(e.u);
    w.U32(e.v);
    w.F64(e.weight);
  }
  return w.Take();
}

std::vector<uint8_t> EncodeReplApplyRequest(const ReplApplyRequest& request) {
  WireWriter w;
  w.U64(request.position);
  w.U32(static_cast<uint32_t>(request.entries.size()));
  for (const UpdateWeightsRequest::Entry& e : request.entries) {
    w.U32(e.u);
    w.U32(e.v);
    w.F64(e.weight);
  }
  return w.Take();
}

std::vector<uint8_t> EncodeSubscribeRequest(const SubscribeRequest& request) {
  WireWriter w;
  EncodeWireQuery(request.query, w);
  w.U8(request.force_push);
  return w.Take();
}

std::vector<uint8_t> EncodeUnsubscribeRequest(
    const UnsubscribeRequest& request) {
  WireWriter w;
  w.U64(request.subscription_id);
  return w.Take();
}

std::vector<uint8_t> EncodeSubscribeResponse(
    const SubscribeResponse& response) {
  WireWriter w;
  w.U64(response.graph_epoch);
  EncodeWireResult(response.result, w);
  return w.Take();
}

std::vector<uint8_t> EncodeUnsubscribeResponse(
    const UnsubscribeResponse& response) {
  WireWriter w;
  w.U8(response.status);
  w.U64(response.pushes_sent);
  return w.Take();
}

std::vector<uint8_t> EncodePushAnswer(const PushAnswer& push) {
  WireWriter w;
  w.U64(push.graph_epoch);
  EncodeWireResult(push.result, w);
  return w.Take();
}

std::vector<uint8_t> EncodeQueryResponse(const QueryResponse& response) {
  WireWriter w;
  w.U64(response.graph_epoch);
  EncodeWireResult(response.result, w);
  return w.Take();
}

std::vector<uint8_t> EncodeBatchResponse(const BatchResponse& response) {
  WireWriter w;
  w.U64(response.graph_epoch);
  w.U32(static_cast<uint32_t>(response.results.size()));
  for (const WireResult& r : response.results) EncodeWireResult(r, w);
  return w.Take();
}

std::vector<uint8_t> EncodeUpdateWeightsResponse(
    const UpdateWeightsResponse& response) {
  WireWriter w;
  w.U8(response.status);
  if (response.status == 0) {
    w.U64(response.applied);
    w.U64(response.missing);
    w.U64(response.old_epoch);
    w.U64(response.new_epoch);
  } else if (response.status == 2) {
    // Replication position mismatch: the replica's current epoch rides
    // along so the sender can decide how far behind/ahead it is.
    w.U64(response.new_epoch);
    w.String(response.error);
  } else {
    w.String(response.error);
  }
  return w.Take();
}

std::vector<uint8_t> EncodeStatsResponse(const StatsResponse& response) {
  WireWriter w;
  w.String(response.json);
  return w.Take();
}

std::vector<uint8_t> EncodeErrorResponse(const ErrorResponse& response) {
  WireWriter w;
  w.U16(static_cast<uint16_t>(response.code));
  w.String(response.message);
  return w.Take();
}

bool DecodeQueryRequest(std::span<const uint8_t> payload,
                        QueryRequest& request) {
  WireReader r(payload);
  return DecodeWireQuery(r, request.query) && r.AtEnd();
}

bool DecodeBatchRequest(std::span<const uint8_t> payload,
                        BatchRequest& request) {
  WireReader r(payload);
  uint32_t count = 0;
  if (!r.F64(request.deadline_ms) || !r.U32(count)) return false;
  // A WireQuery takes at least 30 bytes (2 + 8 + 8 + three u32 counts);
  // bound the reserve by what the payload could actually hold.
  if (static_cast<uint64_t>(count) * 30 > payload.size()) return false;
  request.jobs.resize(count);
  for (WireQuery& job : request.jobs) {
    if (!DecodeWireQuery(r, job)) return false;
  }
  return r.AtEnd();
}

bool DecodeUpdateWeightsRequest(std::span<const uint8_t> payload,
                                UpdateWeightsRequest& request) {
  WireReader r(payload);
  uint32_t count = 0;
  if (!r.U32(count)) return false;
  if (static_cast<uint64_t>(count) * 16 > r.Remaining()) return false;
  request.entries.resize(count);
  for (UpdateWeightsRequest::Entry& e : request.entries) {
    if (!r.U32(e.u) || !r.U32(e.v) || !r.F64(e.weight)) return false;
  }
  return r.AtEnd();
}

bool DecodeReplApplyRequest(std::span<const uint8_t> payload,
                            ReplApplyRequest& request) {
  WireReader r(payload);
  uint32_t count = 0;
  if (!r.U64(request.position) || !r.U32(count)) return false;
  if (static_cast<uint64_t>(count) * 16 > r.Remaining()) return false;
  request.entries.resize(count);
  for (UpdateWeightsRequest::Entry& e : request.entries) {
    if (!r.U32(e.u) || !r.U32(e.v) || !r.F64(e.weight)) return false;
  }
  return r.AtEnd();
}

bool DecodeSubscribeRequest(std::span<const uint8_t> payload,
                            SubscribeRequest& request) {
  WireReader r(payload);
  if (!DecodeWireQuery(r, request.query) || !r.U8(request.force_push) ||
      !r.AtEnd()) {
    return false;
  }
  // force_push is a boolean on the wire; any other value is corruption.
  return request.force_push <= 1;
}

bool DecodeUnsubscribeRequest(std::span<const uint8_t> payload,
                              UnsubscribeRequest& request) {
  WireReader r(payload);
  return r.U64(request.subscription_id) && r.AtEnd();
}

bool DecodeSubscribeResponse(std::span<const uint8_t> payload,
                             SubscribeResponse& response) {
  WireReader r(payload);
  return r.U64(response.graph_epoch) && DecodeWireResult(r, response.result) &&
         r.AtEnd();
}

bool DecodeUnsubscribeResponse(std::span<const uint8_t> payload,
                               UnsubscribeResponse& response) {
  WireReader r(payload);
  if (!r.U8(response.status) || !r.U64(response.pushes_sent) || !r.AtEnd()) {
    return false;
  }
  return response.status <= 1;
}

bool DecodePushAnswer(std::span<const uint8_t> payload, PushAnswer& push) {
  WireReader r(payload);
  return r.U64(push.graph_epoch) && DecodeWireResult(r, push.result) &&
         r.AtEnd();
}

bool DecodeQueryResponse(std::span<const uint8_t> payload,
                         QueryResponse& response) {
  WireReader r(payload);
  return r.U64(response.graph_epoch) && DecodeWireResult(r, response.result) &&
         r.AtEnd();
}

bool DecodeBatchResponse(std::span<const uint8_t> payload,
                         BatchResponse& response) {
  WireReader r(payload);
  uint32_t count = 0;
  if (!r.U64(response.graph_epoch) || !r.U32(count)) return false;
  if (static_cast<uint64_t>(count) > payload.size()) return false;
  response.results.resize(count);
  for (WireResult& result : response.results) {
    if (!DecodeWireResult(r, result)) return false;
  }
  return r.AtEnd();
}

bool DecodeUpdateWeightsResponse(std::span<const uint8_t> payload,
                                 UpdateWeightsResponse& response) {
  WireReader r(payload);
  if (!r.U8(response.status)) return false;
  if (response.status == 0) {
    if (!r.U64(response.applied) || !r.U64(response.missing) ||
        !r.U64(response.old_epoch) || !r.U64(response.new_epoch)) {
      return false;
    }
  } else if (response.status == 2) {
    if (!r.U64(response.new_epoch) || !r.String(response.error)) return false;
  } else if (!r.String(response.error)) {
    return false;
  }
  return r.AtEnd();
}

bool DecodeStatsResponse(std::span<const uint8_t> payload,
                         StatsResponse& response) {
  WireReader r(payload);
  return r.String(response.json) && r.AtEnd();
}

bool DecodeErrorResponse(std::span<const uint8_t> payload,
                         ErrorResponse& response) {
  WireReader r(payload);
  uint16_t code = 0;
  if (!r.U16(code) || !r.String(response.message) || !r.AtEnd()) return false;
  response.code = static_cast<ErrorCode>(code);
  return true;
}

WireResult ToWire(const FannResult& result) {
  WireResult wire;
  wire.status = static_cast<uint8_t>(result.status);
  if (result.status == QueryStatus::kOk) {
    wire.best = result.best;
    wire.distance = result.distance;
    wire.gphi_evaluations = result.gphi_evaluations;
    wire.subset.assign(result.subset.begin(), result.subset.end());
  } else {
    wire.error = result.error;
  }
  return wire;
}

bool SameVisibleAnswer(const WireResult& a, const WireResult& b) {
  if (a.status != b.status) return false;
  if (a.status == static_cast<uint8_t>(QueryStatus::kOk)) {
    // Distance compared through its bit pattern: the differential tests
    // demand bitwise answers, so suppression must too (and NaN-free
    // doubles make memcmp-of-bits equivalent to == except for ±0, which
    // no distance computation distinguishes).
    return a.best == b.best && a.distance == b.distance &&
           a.subset == b.subset;
  }
  return a.error == b.error;
}

FannResult FromWire(const WireResult& wire) {
  FannResult result;
  result.status = static_cast<QueryStatus>(wire.status);
  if (result.status == QueryStatus::kOk) {
    result.best = wire.best;
    result.distance = wire.distance;
    result.gphi_evaluations = wire.gphi_evaluations;
    result.subset.assign(wire.subset.begin(), wire.subset.end());
  } else {
    result.error = wire.error;
  }
  return result;
}

}  // namespace fannr::net
