// Byte-level primitives for the FANN_R wire protocol.
//
// Everything on the wire is explicitly little-endian (the spec in
// DESIGN.md §2.9 is byte-for-byte), independent of host byte order:
// integers are assembled/disassembled a byte at a time, and doubles
// travel as the little-endian bytes of their IEEE-754 binary64 bit
// pattern. WireWriter appends to a growable byte buffer; WireReader
// walks a fixed span and fails closed — every accessor returns false
// once the declared bytes run out, and vector/string lengths are
// bounded by the bytes actually remaining (the in-memory analogue of
// BinaryReader::Vec's corrupt-header defense), so a frame claiming a
// terabyte payload fails fast instead of near-OOM allocating.

#ifndef FANNR_NET_WIRE_H_
#define FANNR_NET_WIRE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace fannr::net {

/// Appends little-endian primitives to a byte buffer.
class WireWriter {
 public:
  void U8(uint8_t value) { buf_.push_back(value); }

  void U16(uint16_t value) { AppendLe(value, 2); }
  void U32(uint32_t value) { AppendLe(value, 4); }
  void U64(uint64_t value) { AppendLe(value, 8); }

  void F64(double value) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    U64(bits);
  }

  /// u32 byte length + raw bytes.
  void String(std::string_view value) {
    U32(static_cast<uint32_t>(value.size()));
    buf_.insert(buf_.end(), value.begin(), value.end());
  }

  /// u32 element count + elements.
  void VecU32(std::span<const uint32_t> values) {
    U32(static_cast<uint32_t>(values.size()));
    for (uint32_t v : values) U32(v);
  }

  /// u32 element count + binary64 elements.
  void VecF64(std::span<const double> values) {
    U32(static_cast<uint32_t>(values.size()));
    for (double v : values) F64(v);
  }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  void AppendLe(uint64_t value, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      buf_.push_back(static_cast<uint8_t>(value >> (8 * i)));
    }
  }

  std::vector<uint8_t> buf_;
};

/// Reads what WireWriter wrote from a fixed byte span. All methods
/// return false (leaving the output untouched or partially filled) on
/// exhausted input or a length header exceeding the remaining bytes;
/// once any read fails the reader stays failed.
class WireReader {
 public:
  explicit WireReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  bool U8(uint8_t& value) {
    if (!Ensure(1)) return false;
    value = bytes_[pos_++];
    return true;
  }

  bool U16(uint16_t& value) { return ReadLe(value, 2); }
  bool U32(uint32_t& value) { return ReadLe(value, 4); }
  bool U64(uint64_t& value) { return ReadLe(value, 8); }

  bool F64(double& value) {
    uint64_t bits = 0;
    if (!U64(bits)) return false;
    std::memcpy(&value, &bits, sizeof(value));
    return true;
  }

  bool String(std::string& value) {
    uint32_t size = 0;
    if (!U32(size) || !Ensure(size)) return false;
    value.assign(reinterpret_cast<const char*>(bytes_.data() + pos_), size);
    pos_ += size;
    return true;
  }

  bool VecU32(std::vector<uint32_t>& values) {
    uint32_t size = 0;
    if (!U32(size)) return false;
    // Each element takes 4 bytes; a count beyond the remaining payload
    // is corrupt — reject before allocating.
    if (static_cast<uint64_t>(size) * 4 > Remaining()) return Fail();
    values.resize(size);
    for (uint32_t& v : values) {
      if (!U32(v)) return false;
    }
    return true;
  }

  bool VecF64(std::vector<double>& values) {
    uint32_t size = 0;
    if (!U32(size)) return false;
    if (static_cast<uint64_t>(size) * 8 > Remaining()) return Fail();
    values.resize(size);
    for (double& v : values) {
      if (!F64(v)) return false;
    }
    return true;
  }

  size_t Remaining() const { return bytes_.size() - pos_; }
  bool ok() const { return ok_; }

  /// True iff every declared byte was consumed — decoders call this last
  /// so a payload with trailing junk is rejected, not silently accepted.
  bool AtEnd() const { return ok_ && pos_ == bytes_.size(); }

 private:
  bool Ensure(size_t n) {
    if (!ok_ || Remaining() < n) return Fail();
    return true;
  }

  bool Fail() {
    ok_ = false;
    return false;
  }

  template <typename T>
  bool ReadLe(T& value, int bytes) {
    if (!Ensure(static_cast<size_t>(bytes))) return false;
    uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) {
      v |= static_cast<uint64_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += static_cast<size_t>(bytes);
    value = static_cast<T>(v);
    return true;
  }

  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace fannr::net

#endif  // FANNR_NET_WIRE_H_
