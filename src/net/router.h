// FannRouter: the multi-node front door for sharded FANN_R serving.
//
// A deployment splits the object set P across N shard servers by the
// G-tree partitioner (net/shard_plan.h); every shard loads the full
// graph and answers FANN queries over its P-subset only. The router
// speaks the same FNRP wire protocol on both sides: clients connect to
// it exactly as they would to a single FannServer, and it fans each
// query out to the shards that own the query's P-candidates, merges the
// per-shard answers with the canonical (distance, vertex id) total
// order, and relays one response. Because every exact solver returns
// the canonical minimum within its P-subset, the min-merge over shards
// reproduces the single-node answer bitwise — the property the 2-shard
// differential test enforces.
//
// Weight updates are replicated, not broadcast: the router forwards
// each batch as REPL_APPLY positioned at the fleet's graph epoch, so
// every replica walks the identical epoch sequence. A replica that
// restarted (epoch behind) answers with a position mismatch instead of
// applying out of order; the router then replays its update history —
// durable in an UpdateWal — from the replica's epoch forward until the
// replica rejoins the fleet epoch. Queries detect stragglers the same
// way: shard answers carrying disagreeing epochs trigger one
// sync-and-retry, and a persistent disagreement is surfaced to the
// client as the engine's mid-batch epoch rejection rather than an
// answer silently mixing weights from different epochs.
//
// Threading: one blocking accept loop plus one thread per client
// connection, each owning its own per-shard query connections (the
// pipelined client API overlaps the shards' work). Replication and
// catch-up serialize on one mutex — updates are rare and total-ordered
// by design.

#ifndef FANNR_NET_ROUTER_H_
#define FANNR_NET_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dynamic/wal.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/shard_plan.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace fannr::net {

/// Where one shard server listens. Index i in RouterConfig::shards is
/// shard id i of the plan.
struct ShardAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct RouterConfig {
  std::string host = "127.0.0.1";
  /// Port to listen on; 0 lets the kernel pick (read back via port()).
  uint16_t port = 0;
  std::vector<ShardAddress> shards;
  /// Durable history of replicated update batches. Optional (nullptr =
  /// in-memory history only), but without it a router restart forgets
  /// the updates it replicated and cannot catch restarted replicas up.
  /// Non-owning; must outlive the router.
  dynamic::UpdateWal* wal = nullptr;
};

/// One shard's contribution to a fanned-out query, as the merge sees
/// it. `shard` is the plan's shard id, never an array position — the
/// merge is a function of the set, not the arrival order.
struct ShardAnswer {
  uint32_t shard = 0;
  bool transport_ok = false;  ///< Frame round-tripped and decoded.
  bool is_error = false;      ///< Shard answered with a kError frame.
  ErrorCode error_code = ErrorCode::kNone;
  std::string error_message;
  uint64_t graph_epoch = 0;  ///< Epoch the shard computed under.
  WireResult result;         ///< Valid when transport_ok && !is_error.
};

/// The routers's one merged reply for a fanned-out query.
struct MergedAnswer {
  /// True = answer with a kError frame (code + message below), the
  /// same surface a single FannServer uses for overload and faults.
  bool is_error = false;
  ErrorCode error_code = ErrorCode::kNone;
  std::string error_message;
  /// True when the per-shard answers were computed under different
  /// graph epochs — the result would mix weights, so the caller must
  /// sync + retry (and reject if the disagreement persists).
  bool epochs_disagree = false;
  uint64_t graph_epoch = 0;  ///< Max epoch seen across answers.
  WireResult result;
};

/// Merges per-shard answers of one FANN query whose P was partitioned
/// across the answering shards. Deterministic and order-independent:
/// permuting `answers` never changes the outcome (every selection is by
/// canonical (distance, vertex id) order or lowest shard id).
///
/// Priority, most severe first: any transport failure -> kInternal
/// error; any shard OVERLOADED -> kOverloaded (retryable, so it beats
/// other shard errors); any other shard error -> relayed from the
/// lowest shard id; otherwise epoch disagreement is flagged; then a
/// rejected / timed-out per-job status is relayed (lowest shard id);
/// all-ok merges by canonical order with gphi_evaluations summed.
MergedAnswer MergeShardAnswers(const std::vector<ShardAnswer>& answers);

class FannRouter {
 public:
  /// `plan.num_shards()` must equal `config.shards.size()`.
  FannRouter(const ShardPlan& plan, RouterConfig config);
  ~FannRouter();

  FannRouter(const FannRouter&) = delete;
  FannRouter& operator=(const FannRouter&) = delete;

  /// Connects to every shard, catches stragglers up to the history's
  /// end epoch (replaying the WAL tail when a replica restarted), and
  /// starts accepting clients. False + reason on any failure — all
  /// shards must be reachable at start.
  bool Start(std::string* error);

  /// Begins shutdown: stops accepting, wakes every connection thread.
  /// Shards are NOT shut down — they belong to the operator.
  void RequestShutdown();

  /// Joins the accept loop and every connection thread.
  void Wait();

  uint16_t port() const { return port_; }

  /// The fleet's replication position: the epoch every in-sync replica
  /// is at.
  uint64_t repl_epoch() const { return repl_epoch_.load(); }

  /// Router observability snapshot (counters + replication position).
  std::string StatsJson() const;

 private:
  struct ConnEntry;

  /// One job's fan-out assignment: which shards receive which P-subset.
  struct JobSplit {
    /// Parallel vectors: sub_p[i] goes to shard target[i].
    std::vector<uint32_t> targets;
    std::vector<std::vector<uint32_t>> sub_p;
  };

  /// Outcome of fanning a set of jobs out and merging every answer.
  struct FanOutOutcome {
    bool is_error = false;  // batch-level error -> one kError frame
    ErrorCode error_code = ErrorCode::kNone;
    std::string error_message;
    bool epochs_disagree = false;
    uint64_t graph_epoch = 0;
    std::vector<WireResult> results;  // per job, when !is_error
  };

  void AcceptLoop();
  void ServeConnection(ConnEntry* entry);
  void ReapFinishedLocked();

  JobSplit SplitJob(const WireQuery& job) const;
  FanOutOutcome FanOutOnce(ConnEntry& conn,
                           const std::vector<WireQuery>& jobs,
                           double batch_deadline_ms);
  /// FanOutOnce plus the stale-replica protocol: on epoch disagreement,
  /// sync every shard and retry once; a persistent disagreement rejects
  /// every job with the engine's mid-batch epoch error.
  FanOutOutcome FanOut(ConnEntry& conn, const std::vector<WireQuery>& jobs,
                       double batch_deadline_ms);

  /// Replicates one update batch to every shard (REPL_APPLY at the
  /// current fleet epoch), appends it to the durable history, and
  /// advances the fleet epoch. Unreachable shards are skipped — they
  /// catch up from the history when they return.
  void HandleUpdate(const UpdateWeightsRequest& request,
                    UpdateWeightsResponse& response, ErrorCode* error_code,
                    std::string* error_message);

  /// Brings every reachable shard to repl_epoch_. Used by the query
  /// path when shard answers disagree.
  void SyncShards();

  // All Locked methods require repl_mu_.
  bool EnsureReplClientLocked(size_t shard);
  bool CatchUpShardLocked(size_t shard, std::string* error);

  const ShardPlan& plan_;
  RouterConfig config_;
  uint16_t port_ = 0;

  Socket listener_;
  int stop_event_ = -1;  ///< eventfd; written once to wake the acceptor.
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::vector<std::unique_ptr<ConnEntry>> conns_;

  /// Replication state: one shared client per shard plus the ordered
  /// history of every replicated batch, all under repl_mu_.
  std::mutex repl_mu_;
  std::vector<FannClient> repl_clients_;
  std::vector<dynamic::WalRecord> history_;
  std::atomic<uint64_t> repl_epoch_{0};

  mutable obs::MetricsRegistry metrics_{1};
  obs::CounterId m_queries_;
  obs::CounterId m_batches_;
  obs::CounterId m_updates_;
  obs::CounterId m_fanouts_;
  obs::CounterId m_retries_;
  obs::CounterId m_stale_rejections_;
  obs::CounterId m_catch_up_records_;
  obs::CounterId m_shard_errors_;
};

}  // namespace fannr::net

#endif  // FANNR_NET_ROUTER_H_
