// Thin POSIX TCP wrappers for the FANN_R server and client.
//
// Deliberately minimal: RAII ownership of a file descriptor, loopback/
// INADDR listen with ephemeral-port support (tests and CI bind port 0
// and read the kernel-assigned port back), and full-buffer read/write
// that handles partial transfers and EINTR. Everything returns errors
// by value — no exceptions, no global state.

#ifndef FANNR_NET_SOCKET_H_
#define FANNR_NET_SOCKET_H_

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <string>

namespace fannr::net {

/// Owns one file descriptor; closes it on destruction. Movable.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Closes the descriptor (idempotent).
  void Close();

  /// shutdown(2) both directions: unblocks a peer thread parked in
  /// ReadFull on this socket without racing the close. Safe to call from
  /// a different thread than the reader.
  void ShutdownBoth();

  /// Reads exactly `size` bytes. Returns false on EOF or error (with
  /// `eof` distinguishing a clean close before the first byte).
  bool ReadFull(void* data, size_t size, bool* eof = nullptr) const;

  /// Writes exactly `size` bytes. Returns false on error (e.g. the peer
  /// closed); SIGPIPE is suppressed via MSG_NOSIGNAL.
  bool WriteFull(const void* data, size_t size) const;

  /// Puts the descriptor in O_NONBLOCK mode (event-loop sockets).
  bool SetNonBlocking() const;

  /// One best-effort send for nonblocking sockets: transmits whatever
  /// the kernel accepts right now. Returns bytes sent (> 0), or -1 with
  /// errno set (EAGAIN/EWOULDBLOCK = kernel buffer full, try after
  /// EPOLLOUT). EINTR — real or fault-injected — is retried internally;
  /// SIGPIPE is suppressed via MSG_NOSIGNAL.
  ssize_t SendSome(const void* data, size_t size) const;

  /// One best-effort recv for nonblocking sockets. Returns bytes read
  /// (> 0), 0 on peer EOF, or -1 with errno set (EAGAIN = drained).
  /// EINTR is retried internally.
  ssize_t RecvSome(void* data, size_t size) const;

 private:
  int fd_ = -1;
};

/// Binds and listens on `host:port` (IPv4 dotted quad; port 0 = kernel
/// picks). On success returns a valid socket and stores the actual port
/// in `bound_port`; on failure returns an invalid socket with a reason
/// in `error`.
Socket TcpListen(const std::string& host, uint16_t port,
                 uint16_t* bound_port, std::string* error);

/// Accepts one connection. Returns an invalid socket on error (check
/// errno semantics in `error`; an invalid socket with empty error means
/// the listener was shut down).
Socket TcpAccept(const Socket& listener, std::string* error);

/// Connects to `host:port`. Invalid socket + `error` on failure.
Socket TcpConnect(const std::string& host, uint16_t port, std::string* error);

/// Test-only fault injection for the transmit path. While installed,
/// every send(2) issued by WriteFull/SendSome is capped to
/// `max_chunk_bytes` (forcing the short-write continuation paths to
/// run) and a synthetic EINTR is reported before every
/// `eintr_period`-th transmit attempt (0 disables either fault).
/// Process-global; tests install it through the RAII guard below so it
/// never leaks across tests.
struct WriteFaultInjection {
  size_t max_chunk_bytes = 0;
  size_t eintr_period = 0;
};

/// Installs `faults` for the lifetime of the guard, restoring clean
/// transmission on destruction.
class ScopedWriteFaultInjection {
 public:
  explicit ScopedWriteFaultInjection(const WriteFaultInjection& faults);
  ~ScopedWriteFaultInjection();
  ScopedWriteFaultInjection(const ScopedWriteFaultInjection&) = delete;
  ScopedWriteFaultInjection& operator=(const ScopedWriteFaultInjection&) =
      delete;
};

}  // namespace fannr::net

#endif  // FANNR_NET_SOCKET_H_
