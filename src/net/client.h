// FannClient: a synchronous client for the FANN_R wire protocol.
//
// One connection, one outstanding request at a time: each call encodes
// a frame, writes it, and blocks for the matching response (request ids
// are checked, so a desynchronized stream surfaces as an error instead
// of a misattributed answer). Error frames (net/protocol.h ErrorCode)
// make the call return false with the code and message retained — the
// bench counts OVERLOADED shed through exactly this surface.
//
// Thread-compatibility: a FannClient is not thread-safe; open one per
// thread (the throughput bench does).

#ifndef FANNR_NET_CLIENT_H_
#define FANNR_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "net/socket.h"

namespace fannr::net {

class FannClient {
 public:
  FannClient() = default;

  /// Connects to a running FannServer. False (reason in last_error())
  /// on failure; the client may retry Connect.
  bool Connect(const std::string& host, uint16_t port);

  bool connected() const { return sock_.valid(); }
  void Close() { sock_.Close(); }

  /// Round-trips a PING.
  bool Ping();

  /// Runs one query; on true, `response` holds the result and the graph
  /// epoch it was computed under.
  bool Query(const WireQuery& query, QueryResponse& response);

  /// Runs a batch of queries in one frame (one engine Run server-side).
  bool Batch(const BatchRequest& request, BatchResponse& response);

  /// Applies edge-weight updates. True when the frame round-tripped and
  /// the server answered (response.status says whether it applied).
  bool UpdateWeights(const UpdateWeightsRequest& request,
                     UpdateWeightsResponse& response);

  /// Replicates an update batch at an exact graph epoch (router →
  /// shard). True when the frame round-tripped; response.status is 0
  /// (applied / position probe ok), 1 (rejected), or 2 (position
  /// mismatch, response.new_epoch = the replica's current epoch).
  bool ReplApply(const ReplApplyRequest& request,
                 UpdateWeightsResponse& response);

  /// Fetches the server's observability snapshot as JSON.
  bool Stats(std::string& json);

  /// Requests a graceful server drain; true once the ack arrives.
  bool Shutdown();

  // --- Pipelined mode ---
  //
  // Send* writes a request frame WITHOUT waiting for its response, so
  // many requests can be in flight on the one connection; ReadAny then
  // collects responses in whatever order the server completes them.
  // The caller correlates by request_id — the server may answer out of
  // order (a PING overtakes queued work; work responses themselves
  // arrive FIFO per connection). Do not interleave pipelined calls with
  // the synchronous API above while responses are outstanding.

  /// Writes one QUERY frame; on true, `*request_id` identifies the
  /// eventual QUERY_RESULT (or error) frame.
  bool SendQuery(const WireQuery& query, uint64_t* request_id);

  /// Writes one BATCH frame (the router's per-shard fan-out overlaps
  /// the shards' work by sending every sub-batch before reading any).
  bool SendBatch(const BatchRequest& request, uint64_t* request_id);

  /// Writes one PING frame (answered inline by the server's event loop,
  /// ahead of queued work — a pipelined liveness probe).
  bool SendPing(uint64_t* request_id);

  /// Writes one SHUTDOWN frame.
  bool SendShutdown(uint64_t* request_id);

  /// Blocks for the next response frame of any request. Validates the
  /// envelope; a fatal envelope or EOF closes the socket and returns
  /// false. Error frames are returned (opcode kError in `header`), not
  /// converted to false — pipelined callers decode per id.
  bool ReadAny(FrameHeader& header, std::vector<uint8_t>& payload);

  /// After a false return: the error code of the server's error frame
  /// (kNone for transport/decode failures) and a human-readable reason.
  ErrorCode last_error_code() const { return last_error_code_; }
  const std::string& last_error() const { return last_error_; }

 private:
  /// Writes one request frame and reads frames until the response with
  /// the matching id arrives. On success fills `payload` and returns
  /// true iff the response opcode equals `expect` (an error frame sets
  /// last_error_* and returns false).
  bool RoundTrip(Opcode request, std::span<const uint8_t> request_payload,
                 Opcode expect, std::vector<uint8_t>& payload);

  /// Writes one request frame without reading anything back; assigns
  /// and reports the request id.
  bool SendFrame(Opcode request, std::span<const uint8_t> request_payload,
                 uint64_t* request_id);

  bool Fail(std::string message);

  Socket sock_;
  uint64_t next_request_id_ = 1;
  ErrorCode last_error_code_ = ErrorCode::kNone;
  std::string last_error_;
};

}  // namespace fannr::net

#endif  // FANNR_NET_CLIENT_H_
