// FannClient: a synchronous client for the FANN_R wire protocol.
//
// One connection, one outstanding request at a time: each call encodes
// a frame, writes it, and blocks for the matching response (request ids
// are checked, so a desynchronized stream surfaces as an error instead
// of a misattributed answer). Error frames (net/protocol.h ErrorCode)
// make the call return false with the code and message retained — the
// bench counts OVERLOADED shed through exactly this surface.
//
// Unsolicited frames: a connection with live subscriptions receives
// PUSH_ANSWER frames at the server's pace, interleaved arbitrarily with
// response frames. EVERY read path routes them — a push arriving while
// a synchronous call awaits its response is decoded and buffered (or
// handed to the push handler), never dropped — and TakePush/WaitPush
// drain the buffer. The buffer is bounded (kMaxBufferedPushes, oldest
// dropped first, pushes_dropped() counts); the server's own delta
// semantics make a dropped push recoverable at the next change.
//
// Thread-compatibility: a FannClient is not thread-safe; open one per
// thread (the throughput bench does).

#ifndef FANNR_NET_CLIENT_H_
#define FANNR_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "net/socket.h"

namespace fannr::net {

/// One buffered PUSH_ANSWER: which subscription it answers plus the
/// epoch-stamped result.
struct ReceivedPush {
  uint64_t subscription_id = 0;
  PushAnswer answer;
};

class FannClient {
 public:
  /// Buffered-push bound; beyond it the oldest buffered push is dropped
  /// (counted). Suppression keeps real push rates far below this.
  static constexpr size_t kMaxBufferedPushes = 4096;

  FannClient() = default;

  /// Connects to a running FannServer. False (reason in last_error())
  /// on failure; the client may retry Connect.
  bool Connect(const std::string& host, uint16_t port);

  bool connected() const { return sock_.valid(); }
  void Close() { sock_.Close(); }

  /// Round-trips a PING.
  bool Ping();

  /// Runs one query; on true, `response` holds the result and the graph
  /// epoch it was computed under.
  bool Query(const WireQuery& query, QueryResponse& response);

  /// Runs a batch of queries in one frame (one engine Run server-side).
  bool Batch(const BatchRequest& request, BatchResponse& response);

  /// Applies edge-weight updates. True when the frame round-tripped and
  /// the server answered (response.status says whether it applied).
  bool UpdateWeights(const UpdateWeightsRequest& request,
                     UpdateWeightsResponse& response);

  /// Replicates an update batch at an exact graph epoch (router →
  /// shard). True when the frame round-tripped; response.status is 0
  /// (applied / position probe ok), 1 (rejected), or 2 (position
  /// mismatch, response.new_epoch = the replica's current epoch).
  bool ReplApply(const ReplApplyRequest& request,
                 UpdateWeightsResponse& response);

  /// Fetches the server's observability snapshot as JSON.
  bool Stats(std::string& json);

  /// Requests a graceful server drain; true once the ack arrives.
  bool Shutdown();

  // --- Subscriptions (continuous queries; see src/cont/) ---

  /// Registers a standing query. On true, `response` carries the
  /// initial answer and the epoch it was solved at, and
  /// `*subscription_id` the id future pushes (and Unsubscribe) use.
  /// Registration succeeded iff response.result.status == kOk.
  /// force_push disables server-side suppression of unchanged answers.
  bool Subscribe(const WireQuery& query, bool force_push,
                 uint64_t* subscription_id, SubscribeResponse& response);

  /// Cancels a subscription. On true, response.status is 0 (removed,
  /// response.pushes_sent = its lifetime push count) or 1 (unknown id).
  bool Unsubscribe(uint64_t subscription_id, UnsubscribeResponse& response);

  /// Pops the oldest buffered push; false when none is buffered. Never
  /// reads the socket.
  bool TakePush(ReceivedPush& push);

  /// Pops the oldest buffered push, blocking on the socket until one
  /// arrives. Only call while no request is outstanding: a response
  /// frame read while waiting has no requester and is skipped.
  bool WaitPush(ReceivedPush& push);

  /// When set, pushes are delivered to `handler` at the moment their
  /// frame is read (from inside whichever call read it) instead of
  /// being buffered; TakePush/WaitPush then never see them. Pass
  /// nullptr to return to buffering.
  void SetPushHandler(std::function<void(const ReceivedPush&)> handler) {
    push_handler_ = std::move(handler);
  }

  size_t buffered_pushes() const { return pushes_.size(); }
  /// Pushes discarded because the buffer was full (never resets).
  uint64_t pushes_dropped() const { return pushes_dropped_; }

  // --- Pipelined mode ---
  //
  // Send* writes a request frame WITHOUT waiting for its response, so
  // many requests can be in flight on the one connection; ReadAny then
  // collects responses in whatever order the server completes them.
  // The caller correlates by request_id — the server may answer out of
  // order (a PING overtakes queued work; work responses themselves
  // arrive FIFO per connection). Do not interleave pipelined calls with
  // the synchronous API above while responses are outstanding.

  /// Writes one QUERY frame; on true, `*request_id` identifies the
  /// eventual QUERY_RESULT (or error) frame.
  bool SendQuery(const WireQuery& query, uint64_t* request_id);

  /// Writes one BATCH frame (the router's per-shard fan-out overlaps
  /// the shards' work by sending every sub-batch before reading any).
  bool SendBatch(const BatchRequest& request, uint64_t* request_id);

  /// Writes one PING frame (answered inline by the server's event loop,
  /// ahead of queued work — a pipelined liveness probe).
  bool SendPing(uint64_t* request_id);

  /// Writes one SHUTDOWN frame.
  bool SendShutdown(uint64_t* request_id);

  /// Blocks for the next response frame of any request. Validates the
  /// envelope; a fatal envelope or EOF closes the socket and returns
  /// false. Error frames are returned (opcode kError in `header`), not
  /// converted to false — pipelined callers decode per id. PUSH_ANSWER
  /// frames are routed to the push buffer/handler, never returned.
  bool ReadAny(FrameHeader& header, std::vector<uint8_t>& payload);

  /// After a false return: the error code of the server's error frame
  /// (kNone for transport/decode failures) and a human-readable reason.
  ErrorCode last_error_code() const { return last_error_code_; }
  const std::string& last_error() const { return last_error_; }

 private:
  /// Writes one request frame and reads frames until the response with
  /// the matching id arrives. On success fills `payload` and returns
  /// true iff the response opcode equals `expect` (an error frame sets
  /// last_error_* and returns false). `request_id_out` (optional)
  /// reports the id the frame was sent under.
  bool RoundTrip(Opcode request, std::span<const uint8_t> request_payload,
                 Opcode expect, std::vector<uint8_t>& payload,
                 uint64_t* request_id_out = nullptr);

  /// Writes one request frame without reading anything back; assigns
  /// and reports the request id.
  bool SendFrame(Opcode request, std::span<const uint8_t> request_payload,
                 uint64_t* request_id);

  /// Reads exactly one validated frame (any opcode, pushes included).
  /// Shared by every read path; false closes the socket.
  bool ReadFrame(FrameHeader& header, std::vector<uint8_t>& payload);

  /// Routes one PUSH_ANSWER frame into the buffer or handler. False
  /// (socket closed) when the payload does not decode — a frame claiming
  /// the push opcode with a garbled body means the stream is untrustworthy.
  bool RoutePush(const FrameHeader& header,
                 const std::vector<uint8_t>& payload);

  bool Fail(std::string message);

  Socket sock_;
  uint64_t next_request_id_ = 1;
  ErrorCode last_error_code_ = ErrorCode::kNone;
  std::string last_error_;
  std::deque<ReceivedPush> pushes_;
  uint64_t pushes_dropped_ = 0;
  std::function<void(const ReceivedPush&)> push_handler_;
};

}  // namespace fannr::net

#endif  // FANNR_NET_CLIENT_H_
