// Byte queues and incremental frame cutting for the event-loop server.
//
// A nonblocking socket delivers bytes in arbitrary cuts: a read may end
// mid-header, mid-payload, or carry a dozen pipelined frames at once.
// ByteQueue accumulates those cuts in one contiguous, amortized-O(1)
// buffer (the same structure backs the transmit side, where a frame is
// appended whole and drained by however many short writes the kernel
// takes). CutFrame lifts the two-tier envelope validation of
// net/protocol.h onto that stream: it yields complete frames one at a
// time, reports "need more bytes" without consuming anything, and
// flags poisoned streams (bad magic, oversized payload) whose framing
// can no longer be trusted.

#ifndef FANNR_NET_IOBUF_H_
#define FANNR_NET_IOBUF_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "net/protocol.h"

namespace fannr::net {

/// A FIFO byte buffer with contiguous storage: appends go to the tail,
/// consumes advance a head offset, and the dead prefix is compacted
/// once it dominates the buffer — so steady-state streaming neither
/// reallocates nor memmoves per frame.
class ByteQueue {
 public:
  size_t size() const { return buf_.size() - head_; }
  bool empty() const { return head_ == buf_.size(); }

  /// Heap bytes currently held by the queue (tests and capacity
  /// accounting; see MaybeShrink for the retention policy).
  size_t capacity() const { return buf_.capacity(); }

  /// The queued bytes, contiguous, starting at the oldest unconsumed.
  const uint8_t* data() const { return buf_.data() + head_; }

  void Append(const void* bytes, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(bytes);
    buf_.insert(buf_.end(), p, p + n);
  }

  /// Drops the oldest `n` bytes (n <= size()).
  void Consume(size_t n) {
    head_ += n;
    if (head_ == buf_.size()) {
      buf_.clear();
      head_ = 0;
      MaybeShrink();
    } else if (head_ >= kCompactAt && head_ >= buf_.size() - head_) {
      // The consumed prefix outweighs the live bytes: slide them down
      // so the buffer cannot grow without bound on a long-lived stream.
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(head_));
      head_ = 0;
      MaybeShrink();
    }
  }

  /// Copies the oldest `n` bytes without consuming (n <= size()).
  void Peek(void* out, size_t n) const { std::memcpy(out, data(), n); }

  void Clear() {
    buf_.clear();
    head_ = 0;
    MaybeShrink();
  }

 private:
  static constexpr size_t kCompactAt = 4096;
  /// Buffers below this never shrink — reallocating a few KiB back and
  /// forth on every steady-state frame would cost more than it saves.
  static constexpr size_t kShrinkAt = 256 * 1024;

  /// clear()/erase() never release vector capacity, so one near-64MiB
  /// frame would otherwise pin that allocation on a long-lived
  /// connection forever. Release the storage once live bytes occupy
  /// less than a quarter of a large buffer; the 4x hysteresis keeps a
  /// stream of large frames from reallocating per frame.
  void MaybeShrink() {
    if (buf_.capacity() < kShrinkAt || buf_.size() > buf_.capacity() / 4) {
      return;
    }
    std::vector<uint8_t> tight(buf_.begin(), buf_.end());
    buf_.swap(tight);
  }

  std::vector<uint8_t> buf_;
  size_t head_ = 0;
};

/// The outcome of trying to cut one frame off the head of a stream.
struct FrameCut {
  enum class Kind {
    kNeedMore,  ///< Not enough bytes yet; nothing consumed.
    kFrame,     ///< One frame consumed; header/payload/envelope_error set.
    kPoisoned,  ///< Fatal envelope (bad magic, oversized, reserved bits):
                ///< the stream has no trustworthy frame boundary left.
  };
  Kind kind = Kind::kNeedMore;
  FrameHeader header;
  std::vector<uint8_t> payload;
  /// Non-fatal envelope problems (unknown version/opcode) the server
  /// answers in-band while the connection continues; empty when clean.
  /// For kPoisoned: the reason the stream is unframeable.
  std::string envelope_error;
};

/// Cuts the next complete frame off `in`. Consumes bytes only when a
/// whole frame (header + declared payload) is present, so a caller can
/// retry verbatim after the next socket read.
inline FrameCut CutFrame(ByteQueue& in) {
  FrameCut cut;
  if (in.size() < kFrameHeaderBytes) return cut;
  uint8_t header_bytes[kFrameHeaderBytes];
  in.Peek(header_bytes, sizeof(header_bytes));
  DecodeFrameHeader(header_bytes, cut.header);

  bool fatal = false;
  cut.envelope_error = FrameEnvelopeError(cut.header, &fatal);
  if (fatal) {
    cut.kind = FrameCut::Kind::kPoisoned;
    return cut;
  }
  if (in.size() < kFrameHeaderBytes + cut.header.payload_length) {
    cut.envelope_error.clear();
    return cut;  // kNeedMore
  }
  in.Consume(kFrameHeaderBytes);
  cut.payload.resize(cut.header.payload_length);
  if (cut.header.payload_length > 0) {
    in.Peek(cut.payload.data(), cut.payload.size());
    in.Consume(cut.payload.size());
  }
  cut.kind = FrameCut::Kind::kFrame;
  return cut;
}

}  // namespace fannr::net

#endif  // FANNR_NET_IOBUF_H_
