#include "net/client.h"

#include <utility>

namespace fannr::net {

bool FannClient::Fail(std::string message) {
  last_error_ = std::move(message);
  return false;
}

bool FannClient::Connect(const std::string& host, uint16_t port) {
  last_error_code_ = ErrorCode::kNone;
  std::string error;
  sock_ = TcpConnect(host, port, &error);
  if (!sock_.valid()) return Fail(error);
  return true;
}

bool FannClient::ReadFrame(FrameHeader& header,
                           std::vector<uint8_t>& payload) {
  uint8_t header_bytes[kFrameHeaderBytes];
  if (!sock_.ReadFull(header_bytes, sizeof(header_bytes))) {
    sock_.Close();
    return Fail("connection closed while awaiting response");
  }
  DecodeFrameHeader(header_bytes, header);
  bool fatal = false;
  const std::string envelope_error = FrameEnvelopeError(header, &fatal);
  if (fatal || header.version != kProtocolVersion) {
    sock_.Close();
    return Fail("bad response frame: " + envelope_error);
  }
  payload.resize(header.payload_length);
  if (header.payload_length > 0 &&
      !sock_.ReadFull(payload.data(), payload.size())) {
    sock_.Close();
    return Fail("connection closed mid-payload");
  }
  return true;
}

bool FannClient::RoutePush(const FrameHeader& header,
                           const std::vector<uint8_t>& payload) {
  ReceivedPush push;
  push.subscription_id = header.request_id;
  if (!DecodePushAnswer(payload, push.answer)) {
    sock_.Close();
    return Fail("undecodable PUSH_ANSWER payload");
  }
  if (push_handler_) {
    push_handler_(push);
    return true;
  }
  if (pushes_.size() >= kMaxBufferedPushes) {
    pushes_.pop_front();
    ++pushes_dropped_;
  }
  pushes_.push_back(std::move(push));
  return true;
}

bool FannClient::RoundTrip(Opcode request,
                           std::span<const uint8_t> request_payload,
                           Opcode expect, std::vector<uint8_t>& payload,
                           uint64_t* request_id_out) {
  last_error_code_ = ErrorCode::kNone;
  last_error_.clear();
  if (!sock_.valid()) return Fail("not connected");

  const uint64_t id = next_request_id_++;
  if (request_id_out != nullptr) *request_id_out = id;
  const std::vector<uint8_t> frame =
      EncodeFrame(static_cast<uint16_t>(request), id, request_payload);
  if (!sock_.WriteFull(frame.data(), frame.size())) {
    sock_.Close();
    return Fail("write failed (connection lost)");
  }

  while (true) {
    FrameHeader header;
    if (!ReadFrame(header, payload)) return false;
    // Unsolicited pushes interleave freely with the awaited response
    // (the server pushes the moment an update lands); route them by
    // opcode BEFORE the id check — a push's id is a subscription id,
    // not a pending request id, and dropping it would lose the answer
    // for good under delta semantics.
    if (static_cast<Opcode>(header.opcode) == Opcode::kPushAnswer) {
      if (!RoutePush(header, payload)) return false;
      continue;
    }
    // A response to an older request (possible only after a prior
    // timeout/desync) is skipped, not misattributed.
    if (header.request_id != id) continue;

    const Opcode opcode = static_cast<Opcode>(header.opcode);
    if (opcode == Opcode::kError) {
      ErrorResponse error;
      if (!DecodeErrorResponse(payload, error)) {
        sock_.Close();
        return Fail("undecodable error frame");
      }
      last_error_code_ = error.code;
      return Fail(std::string(ErrorCodeName(error.code)) + ": " +
                  error.message);
    }
    if (opcode != expect) {
      sock_.Close();
      return Fail("unexpected response opcode " +
                  std::string(OpcodeName(header.opcode)));
    }
    return true;
  }
}

bool FannClient::SendFrame(Opcode request,
                           std::span<const uint8_t> request_payload,
                           uint64_t* request_id) {
  last_error_code_ = ErrorCode::kNone;
  last_error_.clear();
  if (!sock_.valid()) return Fail("not connected");
  const uint64_t id = next_request_id_++;
  const std::vector<uint8_t> frame =
      EncodeFrame(static_cast<uint16_t>(request), id, request_payload);
  if (!sock_.WriteFull(frame.data(), frame.size())) {
    sock_.Close();
    return Fail("write failed (connection lost)");
  }
  if (request_id != nullptr) *request_id = id;
  return true;
}

bool FannClient::SendQuery(const WireQuery& query, uint64_t* request_id) {
  QueryRequest request;
  request.query = query;
  return SendFrame(Opcode::kQuery, EncodeQueryRequest(request), request_id);
}

bool FannClient::SendBatch(const BatchRequest& request, uint64_t* request_id) {
  return SendFrame(Opcode::kBatch, EncodeBatchRequest(request), request_id);
}

bool FannClient::SendPing(uint64_t* request_id) {
  return SendFrame(Opcode::kPing, {}, request_id);
}

bool FannClient::SendShutdown(uint64_t* request_id) {
  return SendFrame(Opcode::kShutdown, {}, request_id);
}

bool FannClient::ReadAny(FrameHeader& header, std::vector<uint8_t>& payload) {
  last_error_code_ = ErrorCode::kNone;
  last_error_.clear();
  if (!sock_.valid()) return Fail("not connected");
  while (true) {
    if (!ReadFrame(header, payload)) return false;
    if (static_cast<Opcode>(header.opcode) == Opcode::kPushAnswer) {
      // One delivery path for pushes no matter who reads the frame:
      // buffered (or handed to the handler) here, consumed via
      // TakePush/WaitPush — never returned as if it answered a request.
      if (!RoutePush(header, payload)) return false;
      continue;
    }
    return true;
  }
}

bool FannClient::TakePush(ReceivedPush& push) {
  if (pushes_.empty()) return false;
  push = std::move(pushes_.front());
  pushes_.pop_front();
  return true;
}

bool FannClient::WaitPush(ReceivedPush& push) {
  last_error_code_ = ErrorCode::kNone;
  last_error_.clear();
  while (!TakePush(push)) {
    if (!sock_.valid()) return Fail("not connected");
    FrameHeader header;
    std::vector<uint8_t> payload;
    if (!ReadFrame(header, payload)) return false;
    if (static_cast<Opcode>(header.opcode) == Opcode::kPushAnswer) {
      if (!RoutePush(header, payload)) return false;
    }
    // Anything else has no outstanding requester (the contract forbids
    // calling WaitPush with requests in flight) — skip it.
  }
  return true;
}

bool FannClient::Subscribe(const WireQuery& query, bool force_push,
                           uint64_t* subscription_id,
                           SubscribeResponse& response) {
  SubscribeRequest request;
  request.query = query;
  request.force_push = force_push ? 1 : 0;
  std::vector<uint8_t> payload;
  if (!RoundTrip(Opcode::kSubscribe, EncodeSubscribeRequest(request),
                 Opcode::kSubscribeResult, payload, subscription_id)) {
    return false;
  }
  if (!DecodeSubscribeResponse(payload, response)) {
    return Fail("undecodable SUBSCRIBE_RESULT payload");
  }
  return true;
}

bool FannClient::Unsubscribe(uint64_t subscription_id,
                             UnsubscribeResponse& response) {
  UnsubscribeRequest request;
  request.subscription_id = subscription_id;
  std::vector<uint8_t> payload;
  if (!RoundTrip(Opcode::kUnsubscribe, EncodeUnsubscribeRequest(request),
                 Opcode::kUnsubscribeResult, payload)) {
    return false;
  }
  if (!DecodeUnsubscribeResponse(payload, response)) {
    return Fail("undecodable UNSUBSCRIBE_RESULT payload");
  }
  return true;
}

bool FannClient::Ping() {
  std::vector<uint8_t> payload;
  if (!RoundTrip(Opcode::kPing, {}, Opcode::kPong, payload)) return false;
  if (!payload.empty()) return Fail("PONG carried an unexpected payload");
  return true;
}

bool FannClient::Query(const WireQuery& query, QueryResponse& response) {
  QueryRequest request;
  request.query = query;
  std::vector<uint8_t> payload;
  if (!RoundTrip(Opcode::kQuery, EncodeQueryRequest(request),
                 Opcode::kQueryResult, payload)) {
    return false;
  }
  if (!DecodeQueryResponse(payload, response)) {
    return Fail("undecodable QUERY_RESULT payload");
  }
  return true;
}

bool FannClient::Batch(const BatchRequest& request, BatchResponse& response) {
  std::vector<uint8_t> payload;
  if (!RoundTrip(Opcode::kBatch, EncodeBatchRequest(request),
                 Opcode::kBatchResult, payload)) {
    return false;
  }
  if (!DecodeBatchResponse(payload, response)) {
    return Fail("undecodable BATCH_RESULT payload");
  }
  if (response.results.size() != request.jobs.size()) {
    return Fail("BATCH_RESULT result count mismatch");
  }
  return true;
}

bool FannClient::UpdateWeights(const UpdateWeightsRequest& request,
                               UpdateWeightsResponse& response) {
  std::vector<uint8_t> payload;
  if (!RoundTrip(Opcode::kUpdateWeights, EncodeUpdateWeightsRequest(request),
                 Opcode::kUpdateResult, payload)) {
    return false;
  }
  if (!DecodeUpdateWeightsResponse(payload, response)) {
    return Fail("undecodable UPDATE_RESULT payload");
  }
  return true;
}

bool FannClient::ReplApply(const ReplApplyRequest& request,
                           UpdateWeightsResponse& response) {
  std::vector<uint8_t> payload;
  if (!RoundTrip(Opcode::kReplApply, EncodeReplApplyRequest(request),
                 Opcode::kReplApplyResult, payload)) {
    return false;
  }
  if (!DecodeUpdateWeightsResponse(payload, response)) {
    return Fail("undecodable REPL_APPLY_RESULT payload");
  }
  return true;
}

bool FannClient::Stats(std::string& json) {
  std::vector<uint8_t> payload;
  if (!RoundTrip(Opcode::kStats, {}, Opcode::kStatsResult, payload)) {
    return false;
  }
  StatsResponse response;
  if (!DecodeStatsResponse(payload, response)) {
    return Fail("undecodable STATS_RESULT payload");
  }
  json = std::move(response.json);
  return true;
}

bool FannClient::Shutdown() {
  std::vector<uint8_t> payload;
  if (!RoundTrip(Opcode::kShutdown, {}, Opcode::kShutdownAck, payload)) {
    return false;
  }
  return true;
}

}  // namespace fannr::net
