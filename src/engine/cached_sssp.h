// A g_phi engine backed by cached single-source shortest-path vectors.
//
// Evaluate(p, k, g) needs the network distances from the candidate p to
// every query point; on an undirected road network those are a gather
// from the SSSP vector delta(p, .). This engine obtains that vector from
// a SourceDistanceCache shared across the batch (recomputing with a
// per-engine DijkstraSearch on miss), so the second and every later
// query of a batch that evaluates the same candidate pays a hash lookup
// plus an O(|Q|) gather instead of an O(|E| log |V|) search.
//
// Exactness: the vector holds exact Dijkstra distances, so results equal
// the INE/A*/PHL engines' up to floating-point summation order, and are
// bitwise identical to any other CachedSsspEngine on the same graph —
// regardless of cache hits, sharing, or which thread filled the cache.
// Under live weight updates (dynamic/update.h) every cache probe carries
// the graph's current epoch, so a vector computed before an UpdateBatch
// is lazily reclaimed rather than returned — correctness survives updates
// without flushing the cache.

#ifndef FANNR_ENGINE_CACHED_SSSP_H_
#define FANNR_ENGINE_CACHED_SSSP_H_

#include <memory>

#include "engine/distance_cache.h"
#include "fann/gphi.h"
#include "obs/metrics.h"
#include "sp/dijkstra.h"

namespace fannr {

/// Cache-backed exact g_phi engine. Like every GphiEngine it is not
/// thread-safe itself (it owns Dijkstra scratch); concurrent workers each
/// hold their own instance and share one SourceDistanceCache.
class CachedSsspEngine : public GphiEngine {
 public:
  /// Cumulative cache probes made by THIS engine (as opposed to the
  /// shared cache's global counters). Because one engine is owned by one
  /// worker and one worker solves a query end to end, deltas of these
  /// counters around a solve attribute cache activity to that query.
  struct ProbeCounters {
    size_t hits = 0;
    size_t misses = 0;
    size_t epoch_evictions = 0;  ///< Misses that reclaimed a stale entry.
  };

  /// Registry handles the engine records into when publication is
  /// enabled (see PublishMetrics). Registered once by the owner so all
  /// workers share the same named metrics, sharded by worker id.
  struct MetricHandles {
    obs::CounterId cache_hits;
    obs::CounterId cache_misses;
    obs::CounterId cache_epoch_evictions;
    obs::HistogramId sssp_compute_ms;
  };

  /// `cache` may be null, in which case every evaluation recomputes (the
  /// engine then still amortizes its Dijkstra scratch across calls).
  CachedSsspEngine(const Graph& graph,
                   std::shared_ptr<SourceDistanceCache> cache);

  void Prepare(const IndexedVertexSet& query_points) override;
  bool BindWeights(std::span<const double> weights) override;
  GphiResult Evaluate(VertexId p, size_t k, Aggregate aggregate) override;
  /// Reserves the Dijkstra frontier for a full-graph search (see
  /// DijkstraSearch::ReserveFullSearch), making miss-path SSSP
  /// computations heap-regrowth-free from the first call.
  void PrewarmScratch() override;
  std::string_view name() const override { return "Cached-SSSP"; }

  /// Enables publication into `registry` (nullptr disables): cache
  /// hit/miss counters and the SSSP recompute-latency histogram, all
  /// written to shard `shard`. Observation only — never affects results.
  void PublishMetrics(obs::MetricsRegistry* registry, MetricHandles handles,
                      size_t shard);

  /// Publishes probe counts accumulated since the last flush into the
  /// registry. Hit/miss/eviction counters are NOT written per probe —
  /// the hit path is the hottest line of a cached batch, and a registry
  /// write per probe is measurable there — so the owner flushes once
  /// per query (and once at end of batch, so registry totals match the
  /// cache's own counters whenever a report is assembled). No-op when
  /// publication is disabled.
  void FlushMetrics();

  const ProbeCounters& probe_counters() const { return probes_; }

 private:
  const Graph& graph_;
  std::shared_ptr<SourceDistanceCache> cache_;
  DijkstraSearch search_;
  const IndexedVertexSet* query_points_ = nullptr;
  std::span<const double> weights_;    // per-q weights; empty = unweighted
  std::vector<Weight> scratch_sssp_;   // miss path without a cache
  std::vector<Weight> q_distances_;    // gather target, |Q| entries
  internal_gphi::SelectScratch select_scratch_;
  ProbeCounters probes_;
  ProbeCounters published_;  // values already flushed to the registry
  obs::MetricsRegistry* registry_ = nullptr;  // null = no publication
  MetricHandles handles_;
  size_t metrics_shard_ = 0;
};

/// Convenience factory matching MakeGphiEngine's shape.
std::unique_ptr<GphiEngine> MakeCachedSsspEngine(
    const Graph& graph, std::shared_ptr<SourceDistanceCache> cache);

}  // namespace fannr

#endif  // FANNR_ENGINE_CACHED_SSSP_H_
