#include "engine/thread_pool.h"

#include <algorithm>

namespace fannr {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerMain(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::ParallelFor(
    size_t count, const std::function<void(size_t, size_t)>& body) {
  if (count == 0) return;
  std::lock_guard<std::mutex> run_lock(run_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    count_ = count;
    next_index_.store(0, std::memory_order_relaxed);
    active_workers_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return active_workers_ == 0; });
  body_ = nullptr;
}

void ThreadPool::WorkerMain(size_t worker_id) {
  uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(size_t, size_t)>* body = nullptr;
    size_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      body = body_;
      count = count_;
    }
    while (true) {
      const size_t index = next_index_.fetch_add(1, std::memory_order_relaxed);
      if (index >= count) break;
      (*body)(index, worker_id);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_workers_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace fannr
