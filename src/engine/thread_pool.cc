#include "engine/thread_pool.h"

#include <algorithm>
#include <utility>

namespace fannr {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  worker_slots_ = std::make_unique<WorkerSlot[]>(num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerMain(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::ParallelFor(
    size_t count, const std::function<void(size_t, size_t)>& body) {
  if (count == 0) return;
  std::lock_guard<std::mutex> run_lock(run_mu_);
  stat_calls_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    count_ = count;
    next_index_.store(0, std::memory_order_relaxed);
    active_workers_ = workers_.size();
    first_exception_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();
  std::exception_ptr exception;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return active_workers_ == 0; });
    body_ = nullptr;
    exception = std::exchange(first_exception_, nullptr);
  }
  // Rethrow the first body exception on the calling thread, after the
  // barrier — the pool is already quiesced and reusable at this point.
  if (exception) std::rethrow_exception(exception);
}

ThreadPool::Stats ThreadPool::stats() const {
  uint64_t indices = 0;
  for (size_t i = 0; i < workers_.size(); ++i) {
    indices +=
        worker_slots_[i].indices_executed.load(std::memory_order_relaxed);
  }
  return Stats{stat_calls_.load(std::memory_order_relaxed), indices};
}

void ThreadPool::WorkerMain(size_t worker_id) {
  uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(size_t, size_t)>* body = nullptr;
    size_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      body = body_;
      count = count_;
    }
    while (true) {
      const size_t index = next_index_.fetch_add(1, std::memory_order_relaxed);
      if (index >= count) break;
      try {
        (*body)(index, worker_id);
        worker_slots_[worker_id].indices_executed.fetch_add(
            1, std::memory_order_relaxed);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (!first_exception_) first_exception_ = std::current_exception();
        }
        // Stop handing out further indices so the loop drains quickly;
        // indices already claimed by other workers still run.
        next_index_.store(count, std::memory_order_relaxed);
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_workers_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace fannr
