#include "engine/cached_sssp.h"

#include <utility>

#include "common/timer.h"

namespace fannr {

CachedSsspEngine::CachedSsspEngine(
    const Graph& graph, std::shared_ptr<SourceDistanceCache> cache)
    : graph_(graph), cache_(std::move(cache)), search_(graph) {}

void CachedSsspEngine::Prepare(const IndexedVertexSet& query_points) {
  query_points_ = &query_points;
  q_distances_.resize(query_points.size());
  weights_ = {};
}

bool CachedSsspEngine::BindWeights(std::span<const double> weights) {
  // The cache stores RAW SSSP vectors — weights are applied at the
  // gather/fold, never baked into cached distances, so weighted and
  // unweighted queries share the same cache entries.
  weights_ = weights;
  return true;
}

void CachedSsspEngine::PrewarmScratch() { search_.ReserveFullSearch(); }

GphiResult CachedSsspEngine::Evaluate(VertexId p, size_t k,
                                      Aggregate aggregate) {
  FANNR_CHECK(query_points_ != nullptr);
  const std::vector<Weight>* sssp = nullptr;
  std::shared_ptr<const std::vector<Weight>> cached;
  if (cache_ != nullptr) {
    // The epoch read here and the SSSP below see the same weights as long
    // as no update races the solve; the batch engine guarantees that by
    // rejecting jobs whose batch straddles an epoch change.
    const GraphEpoch epoch = graph_.epoch();
    bool stale_evicted = false;
    cached = cache_->Lookup(p, epoch, &stale_evicted);
    if (stale_evicted) {
      ++probes_.epoch_evictions;
    }
    if (cached == nullptr) {
      ++probes_.misses;
      std::vector<Weight> fresh;
      {
        Timer sssp_timer;
        search_.SsspInto(p, fresh);
        if (registry_ != nullptr) {
          registry_->Record(handles_.sssp_compute_ms, sssp_timer.Millis(),
                            metrics_shard_);
        }
      }
      cached = cache_->Insert(p, epoch, std::move(fresh));
    } else {
      ++probes_.hits;
    }
    sssp = cached.get();
  } else {
    Timer sssp_timer;
    search_.SsspInto(p, scratch_sssp_);
    if (registry_ != nullptr) {
      registry_->Record(handles_.sssp_compute_ms, sssp_timer.Millis(),
                        metrics_shard_);
    }
    sssp = &scratch_sssp_;
  }
  for (size_t i = 0; i < query_points_->size(); ++i) {
    q_distances_[i] = (*sssp)[(*query_points_)[i]];
  }
  return internal_gphi::SelectAndFold(*query_points_, q_distances_, k,
                                      aggregate, &select_scratch_, weights_);
}

void CachedSsspEngine::PublishMetrics(obs::MetricsRegistry* registry,
                                      MetricHandles handles, size_t shard) {
  registry_ = registry;
  handles_ = handles;
  metrics_shard_ = shard;
}

void CachedSsspEngine::FlushMetrics() {
  if (registry_ == nullptr) return;
  if (probes_.hits != published_.hits) {
    registry_->Add(handles_.cache_hits, probes_.hits - published_.hits,
                   metrics_shard_);
  }
  if (probes_.misses != published_.misses) {
    registry_->Add(handles_.cache_misses, probes_.misses - published_.misses,
                   metrics_shard_);
  }
  if (probes_.epoch_evictions != published_.epoch_evictions) {
    registry_->Add(handles_.cache_epoch_evictions,
                   probes_.epoch_evictions - published_.epoch_evictions,
                   metrics_shard_);
  }
  published_ = probes_;
}

std::unique_ptr<GphiEngine> MakeCachedSsspEngine(
    const Graph& graph, std::shared_ptr<SourceDistanceCache> cache) {
  return std::make_unique<CachedSsspEngine>(graph, std::move(cache));
}

}  // namespace fannr
