#include "engine/batch_engine.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/timer.h"
#include "fann/ier.h"

namespace fannr {

namespace {

/// Screens one job against the engine's graph and configuration. Empty
/// string = runnable. `gphi_kind` is the engine's configured oracle
/// (nullopt = cached SSSP, always weight-capable) and `stale_fallback`
/// whether this batch runs on the index-free fallback engines.
std::string JobValidationError(const FannrQuery& job, const Graph* graph,
                               const std::optional<GphiKind>& gphi_kind,
                               bool stale_fallback) {
  std::string error = QueryValidationError(job.query);
  if (!error.empty()) return error;
  if (job.query.graph != graph) {
    return "query.graph does not match the engine's graph";
  }
  if (!FannAlgorithmSupports(job.algorithm, job.query.aggregate)) {
    return std::string(FannAlgorithmName(job.algorithm)) +
           " does not support aggregate " +
           std::string(AggregateName(job.query.aggregate));
  }
  if (job.query.Weighted()) {
    // Weighted jobs are screened here rather than aborting later on the
    // solvers' BindWeights check: an externally-assembled batch must see
    // a per-job rejection, never a process abort.
    if (!FannAlgorithmSupportsWeights(job.algorithm)) {
      return std::string(FannAlgorithmName(job.algorithm)) +
             " does not support per-query-point weights";
    }
    if (gphi_kind.has_value() && !GphiKindSupportsWeights(*gphi_kind)) {
      return std::string(GphiKindName(*gphi_kind)) +
             " engines do not support per-query-point weights";
    }
    if (stale_fallback) {
      return "weighted query cannot run on the stale-index fallback "
             "engine (" +
             std::string(GphiKindName(kFallbackGphiKind)) +
             " terminates early on raw distances) — rebuild the index or "
             "re-submit after it is fresh";
    }
  }
  return std::string();
}

FannResult RejectedResult(const std::string& error) {
  FannResult result;
  result.status = QueryStatus::kRejected;
  result.error = error;
  return result;
}

FannResult TimedOutResult(const std::string& error) {
  FannResult result;
  result.status = QueryStatus::kTimedOut;
  result.error = error;
  return result;
}

}  // namespace

std::string MidBatchEpochError(GraphEpoch admitted, GraphEpoch now) {
  return "graph epoch advanced mid-batch (admitted at epoch " +
         std::to_string(admitted) + ", now " + std::to_string(now) +
         "): result would mix weights from different epochs — re-submit "
         "the query";
}

BatchQueryEngine::BatchQueryEngine(const GphiResources& resources,
                                   const BatchOptions& options)
    : resources_(resources),
      options_(options),
      pool_(options.num_threads) {
  FANNR_CHECK(resources_.graph != nullptr);
  const bool cached_oracle = !options_.gphi_kind.has_value();
  if (cached_oracle && options_.share_distance_cache) {
    size_t capacity = options_.cache_capacity;
    if (capacity == 0) {
      const size_t entry_bytes =
          std::max<size_t>(1, resources_.graph->NumVertices()) *
          sizeof(Weight);
      capacity =
          std::max<size_t>(1, options_.cache_memory_budget_bytes / entry_bytes);
    }
    cache_ = std::make_shared<SourceDistanceCache>(capacity,
                                                   options_.cache_shards);
  }
  worker_engines_.reserve(pool_.num_workers());
  cached_engines_.reserve(pool_.num_workers());
  for (size_t i = 0; i < pool_.num_workers(); ++i) {
    worker_engines_.push_back(MakeWorkerEngine());
    cached_engines_.push_back(
        cached_oracle ? static_cast<CachedSsspEngine*>(
                            worker_engines_.back().get())
                      : nullptr);
  }
  if (options_.gphi_kind.has_value() &&
      GphiKindUsesIndex(*options_.gphi_kind)) {
    // The configured oracle can go stale under weight updates; keep an
    // index-free engine per worker ready so a stale batch still runs.
    fallback_engines_.reserve(pool_.num_workers());
    for (size_t i = 0; i < pool_.num_workers(); ++i) {
      fallback_engines_.push_back(
          MakeGphiEngine(kFallbackGphiKind, resources_));
    }
  }

  if (options_.prewarm_scratch) {
    // Grow every worker's search scratch (notably the Dijkstra frontier)
    // to its worst case now, so the solve phase never regrows a heap:
    // construction is where allocation happens, Run() is allocation-free
    // and deterministic in its allocation behavior (the throughput gate
    // asserts heap_grows_solve == 0 per cell).
    for (auto& engine : worker_engines_) engine->PrewarmScratch();
    for (auto& engine : fallback_engines_) engine->PrewarmScratch();
  }

  if (options_.enable_metrics) {
    metrics_ = std::make_unique<obs::MetricsRegistry>(pool_.num_workers());
    m_queries_ = metrics_->RegisterCounter("engine.queries");
    m_rejected_ = metrics_->RegisterCounter("engine.rejected_queries");
    m_timed_out_ = metrics_->RegisterCounter("engine.timed_out_queries");
    m_solve_ms_ = metrics_->RegisterHistogram("engine.solve_ms",
                                              obs::DefaultLatencyBucketsMs());
    m_dispatch_wait_ms_ = metrics_->RegisterHistogram(
        "engine.dispatch_wait_ms", obs::DefaultLatencyBucketsMs());
    m_cache_entries_ = metrics_->RegisterGauge("cache.resident_entries");
    CachedSsspEngine::MetricHandles cache_handles;
    cache_handles.cache_hits = metrics_->RegisterCounter("cache.hits");
    cache_handles.cache_misses = metrics_->RegisterCounter("cache.misses");
    cache_handles.cache_epoch_evictions =
        metrics_->RegisterCounter("cache.epoch_evictions");
    cache_handles.sssp_compute_ms = metrics_->RegisterHistogram(
        "cache.sssp_compute_ms", obs::DefaultLatencyBucketsMs());
    slow_log_ = std::make_unique<obs::SlowQueryLog>(
        options_.slow_query_log_capacity, options_.slow_query_threshold_ms);
    tracing_engines_.reserve(pool_.num_workers());
    for (size_t i = 0; i < pool_.num_workers(); ++i) {
      tracing_engines_.push_back(
          std::make_unique<obs::TracingGphiEngine>(*worker_engines_[i]));
      if (cached_engines_[i] != nullptr) {
        cached_engines_[i]->PublishMetrics(metrics_.get(), cache_handles, i);
      }
    }
    fallback_tracing_.reserve(fallback_engines_.size());
    for (const auto& fallback : fallback_engines_) {
      fallback_tracing_.push_back(
          std::make_unique<obs::TracingGphiEngine>(*fallback));
    }
  }
}

std::unique_ptr<GphiEngine> BatchQueryEngine::MakeWorkerEngine() const {
  if (options_.gphi_kind.has_value()) {
    // MakeGphiEngine aborts here if a required index is missing, so a
    // misconfigured engine fails at construction, not mid-batch.
    return MakeGphiEngine(*options_.gphi_kind, resources_);
  }
  return MakeCachedSsspEngine(*resources_.graph, cache_);
}

std::vector<FannResult> BatchQueryEngine::Run(
    const std::vector<FannrQuery>& queries) {
  return Run(queries, std::string_view());
}

std::vector<FannResult> BatchQueryEngine::Run(
    const std::vector<FannrQuery>& queries, std::string_view tag) {
  const bool tracing = options_.enable_metrics;
  Timer run_timer;
  last_traces_.clear();
  last_report_ = obs::BatchReport{};
  last_report_.tag = std::string(tag);
  last_report_metrics_fresh_ = true;  // empty report, nothing to snapshot
  if (tracing) {
    last_traces_.resize(queries.size());
    if (!tag.empty()) {
      for (obs::QueryTrace& trace : last_traces_) {
        trace.batch_tag = std::string(tag);
      }
    }
  }
  const SourceDistanceCache::Stats cache_before =
      cache_ != nullptr ? cache_->stats() : SourceDistanceCache::Stats{};
  const ThreadPool::Stats pool_before = pool_.stats();

  // Admit the whole batch under one graph epoch. Jobs that cannot finish
  // under it are rejected below rather than answered from torn reads.
  const GraphEpoch admission_epoch = resources_.graph->epoch();
  // A stale index is diagnosed once per batch (O(1)): if the configured
  // oracle's index predates the admission epoch, every job of this batch
  // runs on the per-worker index-free fallback engines instead.
  const std::string stale_reason =
      options_.gphi_kind.has_value()
          ? StaleIndexReason(*options_.gphi_kind, resources_)
          : std::string();
  const bool use_fallback = !stale_reason.empty();
  FANNR_CHECK(!use_fallback || !fallback_engines_.empty());
  std::atomic<size_t> mid_batch_rejected{0};
  std::atomic<size_t> fallback_solves{0};
  std::atomic<size_t> timed_out{0};

  // Screen every job (rejections fill their result slot and are skipped
  // by the parallel phase) and build the R-trees the runnable IER-kNN
  // jobs need — once per distinct P set, outside the parallel phase so
  // workers only read them.
  std::vector<FannResult> results(queries.size());
  size_t rejected = 0;
  std::map<const IndexedVertexSet*, RTree> p_trees;
  for (size_t i = 0; i < queries.size(); ++i) {
    const FannrQuery& job = queries[i];
    std::string error = JobValidationError(job, resources_.graph,
                                           options_.gphi_kind, use_fallback);
    if (!error.empty()) {
      ++rejected;
      results[i] = RejectedResult(error);
      if (tracing) {
        obs::QueryTrace& trace = last_traces_[i];
        trace.query_index = i;
        trace.algorithm = job.algorithm;
        trace.status = QueryStatus::kRejected;
        trace.error = std::move(error);
        metrics_->Add(m_rejected_, 1, /*shard=*/0);
        slow_log_->Offer(trace);
      }
      continue;
    }
    if (job.algorithm == FannAlgorithm::kIer) {
      const IndexedVertexSet* p = job.query.data_points;
      if (p_trees.find(p) == p_trees.end()) {
        p_trees.emplace(p, BuildDataPointRTree(*resources_.graph, *p));
      }
    }
  }

  auto mid_batch_error = [&]() {
    return MidBatchEpochError(admission_epoch, resources_.graph->epoch());
  };

  // The per-job solve body, shared by both schedules. A job is solved
  // entirely by one worker against that worker's engine; results land by
  // job index. Scheduling therefore only decides WHICH worker runs a job
  // and in what order — never what the job computes.
  auto solve_one = [&](size_t index, size_t worker) {
    if (results[index].status == QueryStatus::kRejected) return;
    const FannrQuery& job = queries[index];
    const RTree* p_tree = nullptr;
    if (job.algorithm == FannAlgorithm::kIer) {
      p_tree = &p_trees.at(job.query.data_points);
    }

    // Wall-clock deadline, measured from Run() entry. Checked before the
    // solve (a job already past its deadline is not worth starting) and
    // after it (a result computed past the deadline is discarded so the
    // caller sees a consistent kTimedOut outcome either way).
    const std::optional<double> deadline =
        job.deadline_ms.has_value() ? job.deadline_ms : options_.deadline_ms;
    auto deadline_exceeded = [&](bool strictly_after) {
      if (!deadline.has_value()) return false;
      const double elapsed = run_timer.Millis();
      return strictly_after ? elapsed > *deadline : elapsed >= *deadline;
    };
    auto timeout_error = [&](const char* when) {
      return "deadline of " + std::to_string(*deadline) + " ms exceeded " +
             when + " (" + std::to_string(run_timer.Millis()) +
             " ms since batch start)";
    };
    auto record_timeout = [&](obs::QueryTrace* trace, const char* when) {
      timed_out.fetch_add(1, std::memory_order_relaxed);
      std::string error = timeout_error(when);
      if (trace != nullptr) {
        trace->status = QueryStatus::kTimedOut;
        trace->error = error;
        metrics_->Add(m_timed_out_, 1, worker);
        slow_log_->Offer(*trace);
      }
      results[index] = TimedOutResult(error);
    };

    // A job is only worth solving while the batch's admission epoch is
    // still the graph's epoch; checked again after the solve because an
    // update landing mid-solve can tear the weights the solver read.
    auto reject_mid_batch = [&](obs::QueryTrace* trace) {
      mid_batch_rejected.fetch_add(1, std::memory_order_relaxed);
      std::string error = mid_batch_error();
      if (trace != nullptr) {
        trace->status = QueryStatus::kRejected;
        trace->error = error;
        metrics_->Add(m_rejected_, 1, worker);
        slow_log_->Offer(*trace);
      }
      results[index] = RejectedResult(error);
    };

    if (!tracing) {
      if (resources_.graph->epoch() != admission_epoch) {
        reject_mid_batch(nullptr);
        return;
      }
      if (deadline_exceeded(/*strictly_after=*/false)) {
        record_timeout(nullptr, "before solve");
        return;
      }
      GphiEngine& engine = use_fallback ? *fallback_engines_[worker]
                                        : *worker_engines_[worker];
      results[index] = SolveWith(job.algorithm, job.query, engine, p_tree);
      if (resources_.graph->epoch() != admission_epoch) {
        reject_mid_batch(nullptr);
        return;
      }
      if (deadline_exceeded(/*strictly_after=*/true)) {
        record_timeout(nullptr, "during solve");
        return;
      }
      if (use_fallback) {
        fallback_solves.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }

    obs::QueryTrace& trace = last_traces_[index];
    trace.query_index = index;
    trace.worker = worker;
    trace.algorithm = job.algorithm;
    trace.dispatch_wait_ms = run_timer.Millis();
    if (resources_.graph->epoch() != admission_epoch) {
      reject_mid_batch(&trace);
      return;
    }
    if (deadline_exceeded(/*strictly_after=*/false)) {
      record_timeout(&trace, "before solve");
      return;
    }
    if (use_fallback) {
      trace.stale_index_fallback = true;
      trace.fallback_reason = stale_reason;
    }
    CachedSsspEngine* cached = cached_engines_[worker];
    const CachedSsspEngine::ProbeCounters probes_before =
        cached != nullptr ? cached->probe_counters()
                          : CachedSsspEngine::ProbeCounters{};
    obs::TracingGphiEngine& engine = use_fallback
                                         ? *fallback_tracing_[worker]
                                         : *tracing_engines_[worker];
    engine.set_trace(&trace);
    Timer solve_timer;
    results[index] = SolveWith(job.algorithm, job.query, engine, p_tree);
    trace.solve_ms = solve_timer.Millis();
    engine.set_trace(nullptr);  // finalizes the sampled evaluate estimate
    // The extrapolated estimate can overshoot the measured span if a
    // timed sample hit a scheduler hiccup; clamp so the phase breakdown
    // stays contained in the solve span.
    trace.gphi_evaluate_ms =
        std::min(trace.gphi_evaluate_ms,
                 std::max(0.0, trace.solve_ms - trace.gphi_prepare_ms));
    if (resources_.graph->epoch() != admission_epoch) {
      reject_mid_batch(&trace);
      return;
    }
    if (deadline_exceeded(/*strictly_after=*/true)) {
      record_timeout(&trace, "during solve");
      return;
    }
    if (use_fallback) {
      fallback_solves.fetch_add(1, std::memory_order_relaxed);
    }

    if (cached != nullptr) {
      const CachedSsspEngine::ProbeCounters& probes = cached->probe_counters();
      trace.cache_hits = probes.hits - probes_before.hits;
      trace.cache_misses = probes.misses - probes_before.misses;
      trace.cache_epoch_evictions =
          probes.epoch_evictions - probes_before.epoch_evictions;
      // One registry write per query instead of one per cache probe (the
      // hit path is hot enough for per-probe publication to register in
      // the observability-overhead measurement).
      cached->FlushMetrics();
    }
    trace.gphi_evaluations = results[index].gphi_evaluations;
    trace.distance = results[index].distance;
    trace.best = results[index].best;
    trace.spans = {
        {"dispatch-wait", 0.0, trace.dispatch_wait_ms},
        {"solve", trace.dispatch_wait_ms, trace.solve_ms},
    };
    metrics_->Add(m_queries_, 1, worker);
    metrics_->Record(m_solve_ms_, trace.solve_ms, worker);
    metrics_->Record(m_dispatch_wait_ms_, trace.dispatch_wait_ms, worker);
    slow_log_->Offer(trace);
  };

  if (options_.schedule == BatchSchedule::kDynamic ||
      pool_.num_workers() <= 1) {
    pool_.ParallelFor(queries.size(), solve_one);
  } else {
    // Locality schedule: group runnable jobs by P-set signature and pin
    // each group to one worker slot, so queries over the same data set
    // revisit that worker's warm solver scratch back to back instead of
    // interleaving unrelated P sets across workers. The construction is
    // fully deterministic — signatures hash the SORTED member ids (not
    // pointers), groups are visited in signature order, and ties in the
    // greedy balance break toward the lowest slot — and results still
    // land by job index, so the answers are bitwise identical to
    // kDynamic (tests/batch_schedule_test.cc enforces this).
    auto p_signature = [](const IndexedVertexSet& p) {
      std::vector<VertexId> ids(p.members().begin(), p.members().end());
      std::sort(ids.begin(), ids.end());
      uint64_t h = 1469598103934665603ull;  // FNV-1a over the sorted ids
      for (VertexId v : ids) {
        h ^= static_cast<uint64_t>(v);
        h *= 1099511628211ull;
      }
      return h;
    };
    std::unordered_map<const IndexedVertexSet*, uint64_t> sig_of_set;
    std::map<uint64_t, std::vector<size_t>> groups;  // ordered => stable
    for (size_t i = 0; i < queries.size(); ++i) {
      if (results[i].status == QueryStatus::kRejected) continue;
      const IndexedVertexSet* p = queries[i].query.data_points;
      auto [it, inserted] = sig_of_set.emplace(p, uint64_t{0});
      if (inserted) it->second = p_signature(*p);
      groups[it->second].push_back(i);
    }
    // Largest groups first (each group's job list is ascending by
    // construction; ties break on the smallest contained job index),
    // then greedy least-loaded assignment to worker slots.
    std::vector<const std::vector<size_t>*> ordered;
    ordered.reserve(groups.size());
    for (const auto& [sig, jobs] : groups) ordered.push_back(&jobs);
    std::sort(ordered.begin(), ordered.end(),
              [](const std::vector<size_t>* a, const std::vector<size_t>* b) {
                if (a->size() != b->size()) return a->size() > b->size();
                return a->front() < b->front();
              });
    if (!ordered.empty()) {
      std::vector<std::vector<size_t>> slots(
          std::min(pool_.num_workers(), ordered.size()));
      for (const std::vector<size_t>* jobs : ordered) {
        size_t target = 0;
        for (size_t s = 1; s < slots.size(); ++s) {
          if (slots[s].size() < slots[target].size()) target = s;
        }
        slots[target].insert(slots[target].end(), jobs->begin(), jobs->end());
      }
      pool_.ParallelFor(slots.size(), [&](size_t slot, size_t worker) {
        for (size_t index : slots[slot]) solve_one(index, worker);
      });
    }
  }

  if (tracing) {
    // Queries that bailed out early (mid-batch reject, deadline) return
    // before the per-query flush; settle every engine here so registry
    // totals equal the cache's own counters in any snapshot taken after
    // this Run.
    for (CachedSsspEngine* cached : cached_engines_) {
      if (cached != nullptr) cached->FlushMetrics();
    }
    obs::BatchReport& report = last_report_;
    report.batch_size = queries.size();
    report.rejected =
        rejected + mid_batch_rejected.load(std::memory_order_relaxed);
    report.rejected_mid_batch =
        mid_batch_rejected.load(std::memory_order_relaxed);
    report.timed_out = timed_out.load(std::memory_order_relaxed);
    report.graph_epoch = admission_epoch;
    report.stale_index_fallbacks =
        fallback_solves.load(std::memory_order_relaxed);
    report.num_threads = pool_.num_workers();
    report.wall_ms = run_timer.Millis();
    const size_t executed =
        queries.size() - report.rejected - report.timed_out;
    report.queries_per_second =
        report.wall_ms > 0.0
            ? 1000.0 * static_cast<double>(executed) / report.wall_ms
            : 0.0;

    report.solve_ms.bounds = obs::DefaultLatencyBucketsMs();
    report.solve_ms.counts.assign(report.solve_ms.bounds.size() + 1, 0);
    for (const obs::QueryTrace& trace : last_traces_) {
      if (trace.status != QueryStatus::kOk) continue;
      report.solve_ms.Accumulate(trace.solve_ms);
      report.attributed_cache_hits += trace.cache_hits;
      report.attributed_cache_misses += trace.cache_misses;
    }

    const SourceDistanceCache::Stats cache_after =
        cache_ != nullptr ? cache_->stats() : SourceDistanceCache::Stats{};
    report.cache.hits = cache_after.hits - cache_before.hits;
    report.cache.misses = cache_after.misses - cache_before.misses;
    report.cache.evictions = cache_after.evictions - cache_before.evictions;
    report.cache.epoch_evictions =
        cache_after.epoch_evictions - cache_before.epoch_evictions;
    report.cache_entries = cache_ != nullptr ? cache_->size() : 0;
    metrics_->Set(m_cache_entries_,
                  static_cast<double>(report.cache_entries));

    const ThreadPool::Stats pool_after = pool_.stats();
    report.pool_indices_executed =
        pool_after.indices_executed - pool_before.indices_executed;

    // The registry snapshot itself is deferred to last_report(): it is
    // the one expensive piece of report assembly, and building it here
    // would bill it to the batch's wall clock.
    last_report_metrics_fresh_ = false;
  }
  return results;
}

SourceDistanceCache::Stats BatchQueryEngine::cache_stats() const {
  return cache_ != nullptr ? cache_->stats() : SourceDistanceCache::Stats{};
}

}  // namespace fannr
