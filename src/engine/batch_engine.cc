#include "engine/batch_engine.h"

#include <algorithm>
#include <map>
#include <utility>

#include "engine/cached_sssp.h"
#include "fann/ier.h"

namespace fannr {

BatchQueryEngine::BatchQueryEngine(const GphiResources& resources,
                                   const BatchOptions& options)
    : resources_(resources),
      options_(options),
      pool_(options.num_threads) {
  FANNR_CHECK(resources_.graph != nullptr);
  const bool cached_oracle = !options_.gphi_kind.has_value();
  if (cached_oracle && options_.share_distance_cache) {
    size_t capacity = options_.cache_capacity;
    if (capacity == 0) {
      const size_t entry_bytes =
          std::max<size_t>(1, resources_.graph->NumVertices()) *
          sizeof(Weight);
      capacity =
          std::max<size_t>(1, options_.cache_memory_budget_bytes / entry_bytes);
    }
    cache_ = std::make_shared<SourceDistanceCache>(capacity,
                                                   options_.cache_shards);
  }
  worker_engines_.reserve(pool_.num_workers());
  for (size_t i = 0; i < pool_.num_workers(); ++i) {
    worker_engines_.push_back(MakeWorkerEngine());
  }
}

std::unique_ptr<GphiEngine> BatchQueryEngine::MakeWorkerEngine() const {
  if (options_.gphi_kind.has_value()) {
    // MakeGphiEngine aborts here if a required index is missing, so a
    // misconfigured engine fails at construction, not mid-batch.
    return MakeGphiEngine(*options_.gphi_kind, resources_);
  }
  return MakeCachedSsspEngine(*resources_.graph, cache_);
}

std::vector<FannResult> BatchQueryEngine::Run(
    const std::vector<FannrQuery>& queries) {
  // Validate up front (ValidateQuery aborts on malformed queries) and
  // build the R-trees the IER-kNN jobs need — once per distinct P set,
  // outside the parallel phase so workers only read them.
  std::map<const IndexedVertexSet*, RTree> p_trees;
  for (const FannrQuery& job : queries) {
    ValidateQuery(job.query);
    FANNR_CHECK(job.query.graph == resources_.graph &&
                "batch queries must target the engine's graph");
    FANNR_CHECK(FannAlgorithmSupports(job.algorithm, job.query.aggregate));
    if (job.algorithm == FannAlgorithm::kIer) {
      const IndexedVertexSet* p = job.query.data_points;
      if (p_trees.find(p) == p_trees.end()) {
        p_trees.emplace(p, BuildDataPointRTree(*resources_.graph, *p));
      }
    }
  }

  std::vector<FannResult> results(queries.size());
  pool_.ParallelFor(queries.size(), [&](size_t index, size_t worker) {
    const FannrQuery& job = queries[index];
    const RTree* p_tree = nullptr;
    if (job.algorithm == FannAlgorithm::kIer) {
      p_tree = &p_trees.at(job.query.data_points);
    }
    results[index] = SolveWith(job.algorithm, job.query,
                               *worker_engines_[worker], p_tree);
  });
  return results;
}

SourceDistanceCache::Stats BatchQueryEngine::cache_stats() const {
  return cache_ != nullptr ? cache_->stats() : SourceDistanceCache::Stats{};
}

}  // namespace fannr
