#include "engine/distance_cache.h"

#include <algorithm>

#include "common/check.h"

namespace fannr {

SourceDistanceCache::SourceDistanceCache(size_t capacity, size_t num_shards)
    : capacity_(std::max<size_t>(1, capacity)) {
  num_shards = std::max<size_t>(1, std::min(num_shards, capacity_));
  shards_ = std::vector<Shard>(num_shards);
  // Distribute the budget; every shard holds at least one entry.
  const size_t base = capacity_ / num_shards;
  const size_t extra = capacity_ % num_shards;
  for (size_t i = 0; i < num_shards; ++i) {
    shards_[i].capacity = std::max<size_t>(1, base + (i < extra ? 1 : 0));
  }
}

std::shared_ptr<const std::vector<Weight>> SourceDistanceCache::Lookup(
    VertexId source, GraphEpoch epoch, bool* stale_evicted) {
  if (stale_evicted != nullptr) *stale_evicted = false;
  Shard& shard = ShardOf(source);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(source);
  if (it == shard.map.end()) {
    ++shard.misses;
    return nullptr;
  }
  if (it->second.epoch != epoch) {
    // Entry was computed under a different graph epoch: reclaim it lazily
    // so it can never be returned, and report a miss.
    shard.lru.erase(it->second.lru_pos);
    shard.map.erase(it);
    ++shard.misses;
    ++shard.epoch_evictions;
    if (stale_evicted != nullptr) *stale_evicted = true;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
  return it->second.distances;
}

std::shared_ptr<const std::vector<Weight>> SourceDistanceCache::Insert(
    VertexId source, GraphEpoch epoch, std::vector<Weight> distances) {
  Shard& shard = ShardOf(source);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(source);
  if (it != shard.map.end()) {
    if (it->second.epoch == epoch) {
      // First writer wins within an epoch; refresh recency and drop the
      // duplicate vector.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
      return it->second.distances;
    }
    // Resident entry is from another epoch: replace it.
    shard.lru.erase(it->second.lru_pos);
    shard.map.erase(it);
    ++shard.epoch_evictions;
  }
  while (shard.map.size() >= shard.capacity) {
    FANNR_CHECK(!shard.lru.empty());
    shard.map.erase(shard.lru.back());
    shard.lru.pop_back();
    ++shard.evictions;
  }
  auto entry = std::make_shared<const std::vector<Weight>>(
      std::move(distances));
  shard.lru.push_front(source);
  shard.map[source] = {entry, epoch, shard.lru.begin()};
  return entry;
}

void SourceDistanceCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
    shard.lru.clear();
  }
}

size_t SourceDistanceCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

SourceDistanceCache::Stats SourceDistanceCache::stats() const {
  Stats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.evictions += shard.evictions;
    total.epoch_evictions += shard.epoch_evictions;
  }
  return total;
}

}  // namespace fannr
