// A sharded, read-mostly cache of single-source distance vectors.
//
// FANN_R batch workloads evaluate g_phi(p, Q) for overlapping candidate
// sets: distinct queries in a batch share the data set P (and often hit
// the same R-List / IER candidate prefixes), so the SSSP from a candidate
// p is recomputed many times under per-query execution. This cache keys
// the full settled distance vector delta(p, .) by its source vertex and
// shares it across all queries and worker threads of a batch.
//
// Design:
//   * Entries are immutable once inserted (shared_ptr<const vector>), so
//     readers hold no lock while consuming distances — only the brief
//     shard-map lookup is serialized.
//   * The key space is split over independently-locked shards
//     (source % num_shards) so concurrent lookups of different sources
//     rarely contend.
//   * Each shard evicts in LRU order against a per-shard entry budget,
//     bounding resident memory at capacity * |V| * sizeof(Weight) total.
//   * Insertion is first-writer-wins: if two threads compute delta(p, .)
//     concurrently, the loser's vector is discarded and the resident one
//     returned. Dijkstra is deterministic for a fixed graph and source,
//     so both vectors are identical and query results never depend on
//     which thread won the race.

#ifndef FANNR_ENGINE_DISTANCE_CACHE_H_
#define FANNR_ENGINE_DISTANCE_CACHE_H_

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace fannr {

/// Thread-safe LRU cache: source vertex -> immutable distance vector.
class SourceDistanceCache {
 public:
  /// Aggregate counters (summed over shards; each shard's counters are
  /// updated under its lock, so the totals are exact once the batch has
  /// quiesced).
  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t evictions = 0;
  };

  /// `capacity` bounds the total resident entries (>= 1 enforced);
  /// `num_shards` fixes the lock striping (>= 1 enforced; rounded down to
  /// at most `capacity` so every shard can hold an entry).
  explicit SourceDistanceCache(size_t capacity, size_t num_shards = 16);

  /// The cached distance vector of `source`, or nullptr on miss. A hit
  /// refreshes the entry's LRU position.
  std::shared_ptr<const std::vector<Weight>> Lookup(VertexId source);

  /// Inserts delta(source, .), evicting the least-recently-used entry of
  /// the shard if it is full. If the source is already resident the
  /// existing entry wins and `distances` is discarded; the resident
  /// vector is returned either way.
  std::shared_ptr<const std::vector<Weight>> Insert(
      VertexId source, std::vector<Weight> distances);

  /// Drops every entry (counters are kept).
  void Clear();

  Stats stats() const;

  /// Resident entry count, summed over shards (exact when quiesced).
  size_t size() const;

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Shard {
    mutable std::mutex mu;
    // LRU list of sources, most recent at front; map values hold the
    // entry plus its list position for O(1) refresh.
    std::list<VertexId> lru;
    struct Slot {
      std::shared_ptr<const std::vector<Weight>> distances;
      std::list<VertexId>::iterator lru_pos;
    };
    std::unordered_map<VertexId, Slot> map;
    size_t capacity = 0;
    size_t hits = 0;
    size_t misses = 0;
    size_t evictions = 0;
  };

  Shard& ShardOf(VertexId source) {
    return shards_[source % shards_.size()];
  }

  size_t capacity_;
  std::vector<Shard> shards_;
};

}  // namespace fannr

#endif  // FANNR_ENGINE_DISTANCE_CACHE_H_
