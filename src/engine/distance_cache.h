// A sharded, read-mostly cache of single-source distance vectors.
//
// FANN_R batch workloads evaluate g_phi(p, Q) for overlapping candidate
// sets: distinct queries in a batch share the data set P (and often hit
// the same R-List / IER candidate prefixes), so the SSSP from a candidate
// p is recomputed many times under per-query execution. This cache keys
// the full settled distance vector delta(p, .) by its source vertex and
// shares it across all queries and worker threads of a batch.
//
// Design:
//   * Entries are immutable once inserted (shared_ptr<const vector>), so
//     readers hold no lock while consuming distances — only the brief
//     shard-map lookup is serialized.
//   * The key space is split over independently-locked shards
//     (source % num_shards) so concurrent lookups of different sources
//     rarely contend.
//   * Each shard evicts in LRU order against a per-shard entry budget,
//     bounding resident memory at capacity * |V| * sizeof(Weight) total.
//   * Insertion is first-writer-wins: if two threads compute delta(p, .)
//     concurrently, the loser's vector is discarded and the resident one
//     returned. Dijkstra is deterministic for a fixed graph and source,
//     so both vectors are identical and query results never depend on
//     which thread won the race.
//   * Every entry is stamped with the graph epoch it was computed under
//     (see Graph::epoch() and dynamic/update.h). A lookup that presents a
//     newer epoch treats the entry as absent and lazily reclaims it — no
//     stop-the-world flush is ever needed after a weight update, and a
//     stale vector is structurally unreturnable. Reclaims are counted
//     separately (Stats::epoch_evictions) from capacity evictions.
//     First-writer-wins only applies within an epoch; an insert carrying
//     a newer epoch replaces the resident entry.

#ifndef FANNR_ENGINE_DISTANCE_CACHE_H_
#define FANNR_ENGINE_DISTANCE_CACHE_H_

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace fannr {

/// Thread-safe LRU cache: source vertex -> immutable distance vector.
class SourceDistanceCache {
 public:
  /// Aggregate counters (summed over shards; each shard's counters are
  /// updated under its lock, so the totals are exact once the batch has
  /// quiesced).
  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t evictions = 0;        ///< Capacity (LRU) evictions.
    size_t epoch_evictions = 0;  ///< Lazy reclaims of epoch-stale entries.
  };

  /// `capacity` bounds the total resident entries (>= 1 enforced);
  /// `num_shards` fixes the lock striping (>= 1 enforced; rounded down to
  /// at most `capacity` so every shard can hold an entry).
  explicit SourceDistanceCache(size_t capacity, size_t num_shards = 16);

  /// The distance vector of `source` as computed under graph `epoch`, or
  /// nullptr on miss. An entry stamped with a different epoch is treated
  /// as a miss AND erased on the spot (counted in Stats::epoch_evictions;
  /// `stale_evicted`, when non-null, is set accordingly) — stale
  /// distances are never returned. A genuine hit refreshes the entry's
  /// LRU position.
  std::shared_ptr<const std::vector<Weight>> Lookup(
      VertexId source, GraphEpoch epoch, bool* stale_evicted = nullptr);

  /// Inserts delta(source, .) computed under graph `epoch`, evicting the
  /// least-recently-used entry of the shard if it is full. If the source
  /// is already resident at the SAME epoch the existing entry wins and
  /// `distances` is discarded; if resident at a DIFFERENT epoch the stale
  /// entry is replaced (counted in Stats::epoch_evictions). The resident
  /// vector is returned either way.
  std::shared_ptr<const std::vector<Weight>> Insert(
      VertexId source, GraphEpoch epoch, std::vector<Weight> distances);

  /// Drops every entry (counters are kept).
  void Clear();

  Stats stats() const;

  /// Resident entry count, summed over shards (exact when quiesced).
  size_t size() const;

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }

 private:
  // Cache-line aligned: adjacent shards' mutexes and counters must not
  // share a line, or un-contended locks on different shards still
  // ping-pong the line between cores (false sharing).
  struct alignas(64) Shard {
    mutable std::mutex mu;
    // LRU list of sources, most recent at front; map values hold the
    // entry plus its list position for O(1) refresh.
    std::list<VertexId> lru;
    struct Slot {
      std::shared_ptr<const std::vector<Weight>> distances;
      GraphEpoch epoch = 0;
      std::list<VertexId>::iterator lru_pos;
    };
    std::unordered_map<VertexId, Slot> map;
    size_t capacity = 0;
    size_t hits = 0;
    size_t misses = 0;
    size_t evictions = 0;
    size_t epoch_evictions = 0;
  };

  Shard& ShardOf(VertexId source) {
    return shards_[source % shards_.size()];
  }

  size_t capacity_;
  std::vector<Shard> shards_;
};

}  // namespace fannr

#endif  // FANNR_ENGINE_DISTANCE_CACHE_H_
