// BatchQueryEngine: throughput-oriented parallel execution of FANN_R
// query batches.
//
// The paper's evaluation (Section VI) measures one query at a time; a
// production deployment answers streams of queries against a shared set
// of substrate indexes. This engine accepts a batch of FannrQuery jobs
// and executes them concurrently on a fixed worker pool with:
//
//   (a) per-worker scratch reuse — each worker owns one g_phi engine
//       (and thereby one Dijkstra/A*/CH search object) for the lifetime
//       of the engine, extending the TimestampedArray amortization of
//       sp/dijkstra.h across threads;
//   (b) a sharded source-distance cache shared by all workers (see
//       engine/distance_cache.h), so candidate evaluations repeated
//       across the queries of a batch reuse settled SSSP distances;
//   (c) pluggable algorithm dispatch (fann/dispatch.h): every solver —
//       Naive, GD, R-List, IER-kNN, Exact-max, APX-sum — gains
//       parallelism without modification; and
//   (d) optional per-query observation (src/obs/): metrics registry,
//       QueryTrace per job, a slow-query log, and a BatchReport per
//       Run. All of it is observation-only — see the determinism
//       invariant below.
//
// Job validation: each job is screened before the parallel phase. A job
// whose query is malformed (null/empty P or Q, bad phi), targets a graph
// other than the engine's, or pairs an algorithm with an unsupported
// aggregate is NOT executed; its slot in the returned vector carries
// status == QueryStatus::kRejected and a reason in `error`, and the
// remaining jobs run normally. This turns what used to be undefined
// behavior (or a process abort) on externally-assembled batches into a
// per-job error visible in the result and its trace.
//
// Update safety (dynamic/update.h): Run() admits the whole batch under
// one graph epoch, captured at entry. If an UpdateBatch bumps the epoch
// while the batch is in flight, every job that had not finished solving
// under the admission epoch is rejected (QueryStatus::kRejected with a
// mid-batch-update reason) instead of returning a result computed from
// torn weight reads — the caller re-submits against the new epoch. And
// when the engine was configured with an index-backed g_phi kind (G-tree,
// PHL, CH) whose index is stale for the admission epoch, the batch is
// transparently answered by per-worker index-free fallback engines (INE,
// exact on the live weights); traces carry stale_index_fallback plus the
// staleness diagnosis, and the report counts the fallbacks. A stale index
// therefore costs latency, never correctness.
//
// Determinism invariant: Run() output is a pure function of the input
// batch — identical (bitwise, including work counters) for every thread
// count, cache configuration, and observation setting. This holds
// because (1) each query is solved entirely by one worker with engine
// state rebound per query, (2) workers never share mutable solver state,
// (3) cache entries are immutable exact Dijkstra vectors, so a hit
// returns exactly what a miss would recompute, and (4) tracing wraps the
// worker engine in a pass-through decorator that forwards calls
// unchanged and only copies counters/timestamps out.
// tests/batch_determinism_test.cc enforces all four.

#ifndef FANNR_ENGINE_BATCH_ENGINE_H_
#define FANNR_ENGINE_BATCH_ENGINE_H_

#include <memory>
#include <optional>
#include <vector>

#include "engine/cached_sssp.h"
#include "engine/distance_cache.h"
#include "engine/thread_pool.h"
#include "fann/dispatch.h"
#include "fann/gphi.h"
#include "fann/query.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"

namespace fannr {

/// One job of a batch: the query plus the algorithm that answers it.
/// All pointers inside `query` must outlive the Run() call; `query.graph`
/// must equal the engine's graph (violations are rejected per job, see
/// the header comment).
struct FannrQuery {
  FannQuery query;
  FannAlgorithm algorithm = FannAlgorithm::kGd;
  /// Per-job wall-clock deadline in milliseconds, measured from Run()
  /// entry; overrides BatchOptions::deadline_ms. nullopt inherits the
  /// batch default. A job whose deadline has passed before it is picked
  /// up is not solved; a job whose solve finishes past its deadline has
  /// its answer discarded. Either way the result carries
  /// QueryStatus::kTimedOut (and a reason in `error`), and batch-mates
  /// are unaffected. Values <= 0 time out immediately.
  std::optional<double> deadline_ms;
};

/// How Run() maps jobs onto workers. Either way the output is bitwise
/// identical (the determinism invariant in the header comment): results
/// land by job index and each job is solved end to end by one worker, so
/// scheduling only moves work, never changes it.
enum class BatchSchedule {
  /// Workers pull job indices from a shared atomic counter (dynamic load
  /// balancing; good when query costs vary wildly).
  kDynamic,
  /// Jobs are grouped by P-set signature (hash of the sorted data point
  /// ids) and each group is pinned to one worker slot, so queries sharing
  /// P land on the same worker and hit that worker's warm solver scratch
  /// (and cache shard affinity) instead of relying on the shared LRU.
  /// Slots are balanced greedily by group size, deterministically.
  kLocality,
};

struct BatchOptions {
  /// Worker threads (0 = hardware_concurrency).
  size_t num_threads = 1;

  /// Job-to-worker mapping policy; see BatchSchedule.
  BatchSchedule schedule = BatchSchedule::kDynamic;

  /// Which g_phi oracle the workers use. nullopt (default) selects the
  /// Cached-SSSP oracle, which shares settled distances through the
  /// batch-wide cache. Any GphiKind instead gives every worker its own
  /// engine of that kind (Table I semantics, parallel but uncached).
  std::optional<GphiKind> gphi_kind;

  /// Cached-SSSP oracle only: share one distance cache across workers
  /// and batches. Disabled, each evaluation recomputes its SSSP.
  bool share_distance_cache = true;

  /// Call PrewarmScratch() on every worker engine at construction: each
  /// worker's search scratch (notably the Dijkstra frontier, up to
  /// NumArcs() + 1 entries) is grown to its worst case before the first
  /// batch, so Run() itself never regrows a heap and the solve phase is
  /// allocation-free and deterministic in its allocation behavior.
  /// Costs O(NumArcs()) bytes per worker up front; disable on
  /// memory-tight deployments with very large graphs. Never affects
  /// results.
  bool prewarm_scratch = true;

  /// Shared cache sizing: resident entries (each one |V| Weights) and
  /// lock stripes. capacity 0 (default) auto-sizes from
  /// cache_memory_budget_bytes and the graph's vertex count, so the
  /// default stays sane from the TEST preset up to million-vertex maps.
  size_t cache_capacity = 0;
  size_t cache_memory_budget_bytes = size_t{512} << 20;  // 512 MiB
  size_t cache_shards = 16;

  /// Observability. Enabled, every Run() records a QueryTrace per job,
  /// publishes into the engine's metrics registry, feeds the slow-query
  /// log, and produces a BatchReport (last_report()). Disabled (default),
  /// the observation path costs nothing and last_report() is empty.
  /// Either way query results are bitwise identical.
  bool enable_metrics = false;

  /// Traces whose solve time reaches this threshold (and every rejected
  /// job) are retained in the slow-query log. <= 0 retains everything.
  double slow_query_threshold_ms = 50.0;

  /// Ring capacity of the slow-query log.
  size_t slow_query_log_capacity = 64;

  /// Batch-wide wall-clock deadline in milliseconds, measured from
  /// Run() entry, applied to every job without a per-job override.
  /// nullopt (default) = no deadline. Deadline outcomes are inherently
  /// timing-dependent, so the bitwise determinism invariant above only
  /// covers runs with no deadline configured (the default).
  std::optional<double> deadline_ms;
};

/// The canonical rejection reason for work admitted under epoch
/// `admitted` that can no longer be answered because the graph has
/// moved to `now`. Shared by Run()'s mid-batch check and the network
/// server's admission-queue check (src/net/server.h) so both layers
/// reject with the identical re-submit contract.
std::string MidBatchEpochError(GraphEpoch admitted, GraphEpoch now);

/// Parallel batch executor. Construct once per (graph, indexes); Run()
/// any number of batches. Run() itself must not be called concurrently.
class BatchQueryEngine {
 public:
  /// `resources.graph` is required; index pointers only for the kinds
  /// that need them (checked at construction). The pointees are shared
  /// read-only across workers and must outlive the engine.
  BatchQueryEngine(const GphiResources& resources,
                   const BatchOptions& options);

  /// Executes every query of the batch and returns the answers aligned
  /// with the input (rejected jobs carry QueryStatus::kRejected, see
  /// above). IER-kNN queries build one R-tree per distinct data point
  /// set before the parallel phase (shared, read-only during it).
  std::vector<FannResult> Run(const std::vector<FannrQuery>& queries);

  /// Same as Run(), with a caller attribution tag written into the
  /// batch's report (BatchReport::tag) and every trace
  /// (QueryTrace::batch_tag). The server tags subscription
  /// re-evaluation batches "subscription-reeval" so push-driven work is
  /// attributable in metrics dumps and slow-query logs. The tag is pure
  /// observation: results are bitwise identical to an untagged Run.
  std::vector<FannResult> Run(const std::vector<FannrQuery>& queries,
                              std::string_view tag);

  size_t num_threads() const { return pool_.num_workers(); }

  /// Cumulative shared-cache counters (zero when the cache is disabled
  /// or a GphiKind oracle is selected).
  SourceDistanceCache::Stats cache_stats() const;

  // --- Observability (all empty/no-op unless options.enable_metrics) ---

  /// Report for the most recent Run(). Reset at the start of each Run.
  /// The embedded registry snapshot (report.metrics) is assembled on
  /// first access rather than inside Run() — snapshotting walks every
  /// shard of every metric and allocates the name maps, and doing that
  /// inside Run() charged report assembly to the batch's own wall time
  /// (it showed up in the measured observability overhead). Everything
  /// else in the report is captured at Run() end as cheap scalars.
  const obs::BatchReport& last_report() const {
    if (metrics_ != nullptr && !last_report_metrics_fresh_) {
      last_report_.metrics = metrics_->Snapshot();
      last_report_metrics_fresh_ = true;
    }
    return last_report_;
  }

  /// Traces of the most recent Run(), aligned with its input batch.
  /// Cleared at the start of each Run; empty when metrics are disabled.
  const std::vector<obs::QueryTrace>& last_traces() const {
    return last_traces_;
  }

  /// Threshold-filtered trace ring, persistent across Run() calls.
  /// nullptr when metrics are disabled.
  const obs::SlowQueryLog* slow_query_log() const {
    return slow_log_ ? slow_log_.get() : nullptr;
  }

  /// The engine's registry (per-worker sharded; pool, cache, and solver
  /// metrics — names in DESIGN.md §2.7). nullptr when metrics are
  /// disabled.
  const obs::MetricsRegistry* metrics() const {
    return metrics_ ? metrics_.get() : nullptr;
  }

 private:
  std::unique_ptr<GphiEngine> MakeWorkerEngine() const;

  GphiResources resources_;
  BatchOptions options_;
  std::shared_ptr<SourceDistanceCache> cache_;  // null if not sharing
  ThreadPool pool_;
  std::vector<std::unique_ptr<GphiEngine>> worker_engines_;
  // Typed views of worker_engines_ for cache attribution; entries are
  // null in gphi_kind mode.
  std::vector<CachedSsspEngine*> cached_engines_;
  // Per-worker index-free fallback engines, created eagerly when the
  // configured gphi_kind answers from a prebuilt index (empty otherwise),
  // so a stale index never forces an allocation mid-batch.
  std::vector<std::unique_ptr<GphiEngine>> fallback_engines_;

  // Observation state (allocated only when options.enable_metrics).
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::SlowQueryLog> slow_log_;
  std::vector<std::unique_ptr<obs::TracingGphiEngine>> tracing_engines_;
  std::vector<std::unique_ptr<obs::TracingGphiEngine>> fallback_tracing_;
  obs::CounterId m_queries_, m_rejected_, m_timed_out_;
  obs::HistogramId m_solve_ms_, m_dispatch_wait_ms_;
  obs::GaugeId m_cache_entries_;
  std::vector<obs::QueryTrace> last_traces_;
  // Mutable: last_report() lazily fills in the metrics snapshot (see its
  // doc comment). Safe because Run() must not be called concurrently and
  // accessors share that external synchronization.
  mutable obs::BatchReport last_report_;
  mutable bool last_report_metrics_fresh_ = true;
};

}  // namespace fannr

#endif  // FANNR_ENGINE_BATCH_ENGINE_H_
