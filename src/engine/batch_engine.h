// BatchQueryEngine: throughput-oriented parallel execution of FANN_R
// query batches.
//
// The paper's evaluation (Section VI) measures one query at a time; a
// production deployment answers streams of queries against a shared set
// of substrate indexes. This engine accepts a batch of FannrQuery jobs
// and executes them concurrently on a fixed worker pool with:
//
//   (a) per-worker scratch reuse — each worker owns one g_phi engine
//       (and thereby one Dijkstra/A*/CH search object) for the lifetime
//       of the engine, extending the TimestampedArray amortization of
//       sp/dijkstra.h across threads;
//   (b) a sharded source-distance cache shared by all workers (see
//       engine/distance_cache.h), so candidate evaluations repeated
//       across the queries of a batch reuse settled SSSP distances; and
//   (c) pluggable algorithm dispatch (fann/dispatch.h): every solver —
//       Naive, GD, R-List, IER-kNN, Exact-max, APX-sum — gains
//       parallelism without modification.
//
// Determinism invariant: Run() output is a pure function of the input
// batch — identical (bitwise, including work counters) for every thread
// count and cache configuration. This holds because (1) each query is
// solved entirely by one worker with engine state rebound per query, (2)
// workers never share mutable solver state, and (3) cache entries are
// immutable exact Dijkstra vectors, so a hit returns exactly what a miss
// would recompute. tests/batch_determinism_test.cc enforces this.

#ifndef FANNR_ENGINE_BATCH_ENGINE_H_
#define FANNR_ENGINE_BATCH_ENGINE_H_

#include <memory>
#include <optional>
#include <vector>

#include "engine/distance_cache.h"
#include "engine/thread_pool.h"
#include "fann/dispatch.h"
#include "fann/gphi.h"
#include "fann/query.h"

namespace fannr {

/// One job of a batch: the query plus the algorithm that answers it.
/// All pointers inside `query` must outlive the Run() call; `query.graph`
/// must equal the graph the engine was constructed with.
struct FannrQuery {
  FannQuery query;
  FannAlgorithm algorithm = FannAlgorithm::kGd;
};

struct BatchOptions {
  /// Worker threads (0 = hardware_concurrency).
  size_t num_threads = 1;

  /// Which g_phi oracle the workers use. nullopt (default) selects the
  /// Cached-SSSP oracle, which shares settled distances through the
  /// batch-wide cache. Any GphiKind instead gives every worker its own
  /// engine of that kind (Table I semantics, parallel but uncached).
  std::optional<GphiKind> gphi_kind;

  /// Cached-SSSP oracle only: share one distance cache across workers
  /// and batches. Disabled, each evaluation recomputes its SSSP.
  bool share_distance_cache = true;

  /// Shared cache sizing: resident entries (each one |V| Weights) and
  /// lock stripes. capacity 0 (default) auto-sizes from
  /// cache_memory_budget_bytes and the graph's vertex count, so the
  /// default stays sane from the TEST preset up to million-vertex maps.
  size_t cache_capacity = 0;
  size_t cache_memory_budget_bytes = size_t{512} << 20;  // 512 MiB
  size_t cache_shards = 16;
};

/// Parallel batch executor. Construct once per (graph, indexes); Run()
/// any number of batches. Run() itself must not be called concurrently.
class BatchQueryEngine {
 public:
  /// `resources.graph` is required; index pointers only for the kinds
  /// that need them (checked at construction). The pointees are shared
  /// read-only across workers and must outlive the engine.
  BatchQueryEngine(const GphiResources& resources,
                   const BatchOptions& options);

  /// Executes every query of the batch and returns the answers aligned
  /// with the input. IER-kNN queries build one R-tree per distinct data
  /// point set before the parallel phase (shared, read-only during it).
  std::vector<FannResult> Run(const std::vector<FannrQuery>& queries);

  size_t num_threads() const { return pool_.num_workers(); }

  /// Cumulative shared-cache counters (zero when the cache is disabled
  /// or a GphiKind oracle is selected).
  SourceDistanceCache::Stats cache_stats() const;

 private:
  std::unique_ptr<GphiEngine> MakeWorkerEngine() const;

  GphiResources resources_;
  BatchOptions options_;
  std::shared_ptr<SourceDistanceCache> cache_;  // null if not sharing
  ThreadPool pool_;
  std::vector<std::unique_ptr<GphiEngine>> worker_engines_;
};

}  // namespace fannr

#endif  // FANNR_ENGINE_BATCH_ENGINE_H_
