// A fixed-size worker pool for batch query execution.
//
// Workers are started once and kept parked on a condition variable, so a
// long-lived BatchQueryEngine pays the thread-spawn cost once, not per
// batch. The pool's unit of work is an index range processed by
// ParallelFor: workers pull indices from a shared atomic counter
// (dynamic load balancing — queries have wildly different costs), and
// every callback receives its worker id so callers can maintain
// per-worker scratch (search objects, g_phi engines) without locking.

#ifndef FANNR_ENGINE_THREAD_POOL_H_
#define FANNR_ENGINE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fannr {

/// Fixed pool of worker threads executing indexed parallel loops.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (minimum 1; 0 means
  /// hardware_concurrency). The calling thread never executes loop
  /// bodies, so worker ids are stable in [0, num_workers()).
  explicit ThreadPool(size_t num_threads);

  /// Joins all workers. Must not be called while a ParallelFor is
  /// running on another thread.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Cumulative pool activity since construction. Exact once no
  /// ParallelFor is in flight (counters are relaxed atomics).
  struct Stats {
    uint64_t parallel_for_calls = 0;
    uint64_t indices_executed = 0;
  };
  Stats stats() const;

  /// Runs body(index, worker) for every index in [0, count), distributing
  /// indices dynamically over the workers, and blocks until all calls
  /// have returned. `worker` is the executing worker's id in
  /// [0, num_workers()). Only one ParallelFor may run at a time (calls
  /// from multiple threads serialize on an internal mutex). The body must
  /// not re-enter ParallelFor on the same pool.
  ///
  /// A throwing body is contained, not fatal: the first exception is
  /// captured, the loop stops handing out further indices (bodies
  /// already claimed by other workers still complete), and the exception
  /// is rethrown here — on the calling thread — after every worker has
  /// left the loop. The pool stays fully usable afterwards. When a body
  /// throws, indices not yet claimed are skipped; callers that need
  /// all-or-nothing semantics must treat the loop's outputs as invalid
  /// on throw.
  void ParallelFor(size_t count,
                   const std::function<void(size_t index, size_t worker)>& body);

 private:
  void WorkerMain(size_t worker_id);

  std::vector<std::thread> workers_;

  std::mutex run_mu_;  // serializes ParallelFor calls

  // State of the current loop, guarded by mu_.
  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait here for a new loop
  std::condition_variable done_cv_;  // ParallelFor waits here for completion
  const std::function<void(size_t, size_t)>* body_ = nullptr;
  size_t count_ = 0;
  uint64_t generation_ = 0;     // bumped per loop so workers see new work
  size_t active_workers_ = 0;   // workers still inside the current loop
  std::exception_ptr first_exception_;  // first throw of the current loop
  bool shutdown_ = false;

  // The index counter every worker hammers lives on its own cache line;
  // each worker's stat counter lives on its own line too. Without the
  // alignment the relaxed increments false-share one line and the
  // "dynamic load balancing" counter becomes a cross-core bottleneck.
  alignas(64) std::atomic<size_t> next_index_{0};

  struct alignas(64) WorkerSlot {
    std::atomic<uint64_t> indices_executed{0};
  };
  std::unique_ptr<WorkerSlot[]> worker_slots_;  // one per worker

  alignas(64) std::atomic<uint64_t> stat_calls_{0};
};

}  // namespace fannr

#endif  // FANNR_ENGINE_THREAD_POOL_H_
