#include "workload/poi.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "workload/workload.h"

namespace fannr {

std::vector<PoiCategory> PaperPoiCategories() {
  // Table IV: name, description, density (# nodes / |V| of NW).
  return {
      {"PA", "Parks", 0.005},        {"SC", "Schools", 0.004},
      {"FF", "Fast Food", 0.001},    {"PO", "Post Offices", 0.001},
      {"HOT", "Hotels", 0.0004},     {"HOS", "Hospitals", 0.0002},
      {"UNI", "Universities", 0.00009}, {"CH", "Courthouses", 0.00005},
  };
}

PoiCategory PoiCategoryByName(const std::string& name) {
  for (const PoiCategory& c : PaperPoiCategories()) {
    if (c.name == name) return c;
  }
  FANNR_CHECK(false && "unknown POI category");
}

std::vector<VertexId> GeneratePoiSet(const Graph& graph,
                                     const PoiCategory& category, Rng& rng) {
  const size_t count = std::max<size_t>(
      4, static_cast<size_t>(std::llround(
             category.density * static_cast<double>(graph.NumVertices()))));
  FANNR_CHECK(count <= graph.NumVertices());
  // Real POI data clumps: generate as clusters of ~16 spread over the
  // whole map (coverage 1).
  const size_t clusters = std::max<size_t>(1, count / 16);
  return GenerateClusteredQueryPoints(graph, /*coverage=*/1.0, count,
                                      clusters, rng);
}

}  // namespace fannr
