// Synthetic points-of-interest mirroring the paper's Table IV.
//
// The paper draws real POI sets (parks, schools, fast food, ...) from
// OpenStreetMap extracts over the NW road network. Offline we synthesize
// category sets with the same *densities* relative to |V| and the same
// clustered spatial character ("some locations, such as schools, often
// occur in clusters"); DESIGN.md §2.1 documents the substitution. Fig. 12
// uses FF/PO as P (density 0.001, the default d) and HOS/UNI as Q.

#ifndef FANNR_WORKLOAD_POI_H_
#define FANNR_WORKLOAD_POI_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace fannr {

/// One POI category of Table IV.
struct PoiCategory {
  std::string name;         // e.g. "FF"
  std::string description;  // e.g. "Fast Food"
  double density;           // fraction of |V| (Table IV "Density")
};

/// The eight categories of Table IV with the paper's densities.
std::vector<PoiCategory> PaperPoiCategories();

/// Looks up a category by name ("PA", "SC", "FF", "PO", "HOT", "HOS",
/// "UNI", "CH"). Aborts on unknown names.
PoiCategory PoiCategoryByName(const std::string& name);

/// Generates the POI vertex set for a category on `graph`: count =
/// max(4, density * |V|), placed in clusters of ~16 POIs to mimic the
/// spatial clumping of real POI data.
std::vector<VertexId> GeneratePoiSet(const Graph& graph,
                                     const PoiCategory& category, Rng& rng);

}  // namespace fannr

#endif  // FANNR_WORKLOAD_POI_H_
