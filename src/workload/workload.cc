#include "workload/workload.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <unordered_set>

#include "common/check.h"
#include "sp/dijkstra.h"

namespace fannr {

namespace {

// Vertices within coverage * radius of a random seed, ordered by network
// distance; reachable vertices beyond the region follow so callers can
// expand outward. Returns at least `minimum` vertices when the graph has
// them (reachable from the seed).
std::vector<VertexId> CoverageRegion(const Graph& graph, double coverage,
                                     size_t minimum, Rng& rng) {
  FANNR_CHECK(coverage > 0.0 && coverage <= 1.0);
  const VertexId seed =
      static_cast<VertexId>(rng.NextIndex(graph.NumVertices()));
  const std::vector<Weight> dist = DijkstraSssp(graph, seed);
  Weight radius = 0.0;
  for (Weight d : dist) {
    if (d != kInfWeight) radius = std::max(radius, d);
  }
  const Weight limit = coverage * radius;

  std::vector<VertexId> reachable;
  reachable.reserve(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (dist[v] != kInfWeight) reachable.push_back(v);
  }
  std::sort(reachable.begin(), reachable.end(),
            [&](VertexId a, VertexId b) { return dist[a] < dist[b]; });

  size_t in_region = 0;
  while (in_region < reachable.size() &&
         dist[reachable[in_region]] <= limit) {
    ++in_region;
  }
  // Expand outward if the region is too small (paper Section VI-A).
  const size_t take = std::max(in_region, std::min(minimum,
                                                   reachable.size()));
  reachable.resize(take);
  return reachable;
}

}  // namespace

std::vector<VertexId> GenerateDataPoints(const Graph& graph, double density,
                                         Rng& rng) {
  FANNR_CHECK(density > 0.0 && density <= 1.0);
  const size_t count = std::max<size_t>(
      1, static_cast<size_t>(
             std::llround(density * static_cast<double>(
                                        graph.NumVertices()))));
  std::vector<size_t> raw =
      rng.SampleWithoutReplacement(graph.NumVertices(), count);
  std::vector<VertexId> result;
  result.reserve(count);
  for (size_t v : raw) result.push_back(static_cast<VertexId>(v));
  return result;
}

std::vector<VertexId> GenerateUniformQueryPoints(const Graph& graph,
                                                 double coverage, size_t m,
                                                 Rng& rng) {
  FANNR_CHECK(m > 0 && m <= graph.NumVertices());
  std::vector<VertexId> region = CoverageRegion(graph, coverage, m, rng);
  FANNR_CHECK(region.size() >= m &&
              "graph too disconnected for the requested |Q|");
  std::vector<size_t> picks = rng.SampleWithoutReplacement(region.size(), m);
  std::vector<VertexId> result;
  result.reserve(m);
  for (size_t i : picks) result.push_back(region[i]);
  return result;
}

std::vector<VertexId> GenerateClusteredQueryPoints(const Graph& graph,
                                                   double coverage, size_t m,
                                                   size_t clusters,
                                                   Rng& rng) {
  return GenerateClusteredQueryPoints(graph, coverage, m, clusters, rng,
                                      /*looseness=*/0.35);
}

std::vector<VertexId> GenerateClusteredQueryPoints(const Graph& graph,
                                                   double coverage, size_t m,
                                                   size_t clusters, Rng& rng,
                                                   double looseness) {
  FANNR_CHECK(m > 0 && m <= graph.NumVertices());
  FANNR_CHECK(clusters >= 1 && clusters <= m);
  FANNR_CHECK(looseness > 0.0 && looseness <= 1.0);
  std::vector<VertexId> region = CoverageRegion(graph, coverage, m, rng);
  FANNR_CHECK(region.size() >= m);

  std::unordered_set<VertexId> chosen;
  std::vector<VertexId> result;
  result.reserve(m);

  for (size_t c = 0; c < clusters; ++c) {
    const size_t remaining_clusters = clusters - c;
    const size_t quota = (m - result.size() + remaining_clusters - 1) /
                         remaining_clusters;
    const VertexId center = region[rng.NextIndex(region.size())];
    // Expand from the center, accepting each settled vertex with the
    // looseness probability; skipped vertices are kept (nearest-first)
    // as backfill in case the component is exhausted.
    std::priority_queue<std::pair<Weight, VertexId>,
                        std::vector<std::pair<Weight, VertexId>>,
                        std::greater<>>
        heap;
    heap.push({0.0, center});
    size_t claimed = 0;
    std::unordered_set<VertexId> settled;
    std::vector<VertexId> skipped;
    while (!heap.empty() && claimed < quota) {
      auto [d, u] = heap.top();
      heap.pop();
      if (!settled.insert(u).second) continue;
      if (!chosen.count(u)) {
        if (rng.NextBool(looseness)) {
          chosen.insert(u);
          result.push_back(u);
          ++claimed;
        } else {
          skipped.push_back(u);
        }
      }
      for (const Arc& a : graph.Neighbors(u)) {
        if (!settled.count(a.to)) heap.push({d + a.weight, a.to});
      }
    }
    for (size_t i = 0; claimed < quota && i < skipped.size(); ++i) {
      if (chosen.insert(skipped[i]).second) {
        result.push_back(skipped[i]);
        ++claimed;
      }
    }
  }
  FANNR_CHECK(result.size() == m && "could not claim enough vertices");
  return result;
}

}  // namespace fannr
