// Workload generators for FANN_R experiments (paper Section VI-A).
//
// The cost factors studied in the paper:
//   d    density of P:            |P| = d * |V|, uniform over V
//   A    coverage ratio of Q:     Q sampled within A * radius of a seed
//   M    size of Q (|Q|)
//   C    number of clusters of Q  (1 = uniform within the region)
//   phi  flexibility parameter
//
// "radius" is the maximum network distance from the randomly chosen seed
// node (the paper's definition); if the A-region holds fewer than M
// vertices it is expanded outward until it suffices, as in the paper.

#ifndef FANNR_WORKLOAD_WORKLOAD_H_
#define FANNR_WORKLOAD_WORKLOAD_H_

#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace fannr {

/// Uniform data points P: max(1, round(density * |V|)) distinct vertices.
std::vector<VertexId> GenerateDataPoints(const Graph& graph, double density,
                                         Rng& rng);

/// Uniform query points Q: M distinct vertices within coverage * radius of
/// a random seed node (expanded outward when the region is too small).
/// Requires m <= |V|.
std::vector<VertexId> GenerateUniformQueryPoints(const Graph& graph,
                                                 double coverage, size_t m,
                                                 Rng& rng);

/// Clustered query points Q: C cluster centers inside the coverage region,
/// each expanded via network distance to claim ~M/C nearby vertices.
/// During expansion each settled vertex joins the cluster with probability
/// `looseness` (nearest-first backfill if the component runs out), so
/// clusters clump without being perfectly contiguous — like real POI
/// clusters. clusters == 1 gives a single cluster.
std::vector<VertexId> GenerateClusteredQueryPoints(const Graph& graph,
                                                   double coverage, size_t m,
                                                   size_t clusters,
                                                   Rng& rng);
std::vector<VertexId> GenerateClusteredQueryPoints(const Graph& graph,
                                                   double coverage, size_t m,
                                                   size_t clusters, Rng& rng,
                                                   double looseness);

}  // namespace fannr

#endif  // FANNR_WORKLOAD_WORKLOAD_H_
