// 2-D point used for vertex coordinates and Euclidean lower bounds.

#ifndef FANNR_GEO_POINT_H_
#define FANNR_GEO_POINT_H_

#include <cmath>

namespace fannr {

/// A point in the plane. Road-network vertex coordinates are stored in the
/// same (arbitrary but consistent) unit as edge weights so that Euclidean
/// distance is a valid lower bound on network distance (A* admissibility;
/// see Graph::EuclideanConsistent()).
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Euclidean distance between two points.
inline double EuclideanDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace fannr

#endif  // FANNR_GEO_POINT_H_
