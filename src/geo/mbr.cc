#include "geo/mbr.h"

#include <cmath>

#include "common/check.h"

namespace fannr {

namespace {

// Distance from value v to interval [lo, hi]; zero when inside.
double AxisGap(double v, double lo, double hi) {
  if (v < lo) return lo - v;
  if (v > hi) return v - hi;
  return 0.0;
}

}  // namespace

double MinDist(const Mbr& b, const Point& p) {
  FANNR_DCHECK(!b.Empty());
  const double dx = AxisGap(p.x, b.min_x, b.max_x);
  const double dy = AxisGap(p.y, b.min_y, b.max_y);
  return std::sqrt(dx * dx + dy * dy);
}

double MinDist(const Mbr& a, const Mbr& b) {
  FANNR_DCHECK(!a.Empty() && !b.Empty());
  const double dx = std::max({0.0, b.min_x - a.max_x, a.min_x - b.max_x});
  const double dy = std::max({0.0, b.min_y - a.max_y, a.min_y - b.max_y});
  return std::sqrt(dx * dx + dy * dy);
}

double MaxDist(const Mbr& b, const Point& p) {
  FANNR_DCHECK(!b.Empty());
  const double dx = std::max(std::abs(p.x - b.min_x), std::abs(p.x - b.max_x));
  const double dy = std::max(std::abs(p.y - b.min_y), std::abs(p.y - b.max_y));
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace fannr
