// Minimum bounding rectangle (MBR) with the mindist lower bounds used by
// the R-tree and by the IER pruning rules (paper Section III-C).

#ifndef FANNR_GEO_MBR_H_
#define FANNR_GEO_MBR_H_

#include <algorithm>
#include <limits>

#include "geo/point.h"

namespace fannr {

/// Axis-aligned minimum bounding rectangle. A default-constructed Mbr is
/// empty; extending an empty Mbr by a point yields a degenerate rectangle
/// covering exactly that point.
struct Mbr {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  /// True if no point has been added.
  bool Empty() const { return min_x > max_x; }

  /// Grows the rectangle to cover `p`.
  void Extend(const Point& p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }

  /// Grows the rectangle to cover `other`.
  void Extend(const Mbr& other) {
    min_x = std::min(min_x, other.min_x);
    min_y = std::min(min_y, other.min_y);
    max_x = std::max(max_x, other.max_x);
    max_y = std::max(max_y, other.max_y);
  }

  /// True if `p` lies inside or on the boundary.
  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  /// True if the rectangles share at least one point.
  bool Intersects(const Mbr& o) const {
    return !Empty() && !o.Empty() && min_x <= o.max_x && o.min_x <= max_x &&
           min_y <= o.max_y && o.min_y <= max_y;
  }

  /// Area (zero for degenerate or empty rectangles).
  double Area() const {
    return Empty() ? 0.0 : (max_x - min_x) * (max_y - min_y);
  }

  /// Half-perimeter, used by R-tree split heuristics.
  double Margin() const {
    return Empty() ? 0.0 : (max_x - min_x) + (max_y - min_y);
  }

  /// Center point. Requires a non-empty rectangle.
  Point Center() const {
    return Point{(min_x + max_x) / 2.0, (min_y + max_y) / 2.0};
  }

  friend bool operator==(const Mbr& a, const Mbr& b) {
    return a.min_x == b.min_x && a.min_y == b.min_y && a.max_x == b.max_x &&
           a.max_y == b.max_y;
  }
};

/// Minimum possible Euclidean distance from `p` to any point in `b`
/// (mdist(b, q) in the paper). Zero if `p` is inside `b`. Requires a
/// non-empty rectangle.
double MinDist(const Mbr& b, const Point& p);

/// Minimum possible Euclidean distance between any point of `a` and any
/// point of `b` (mdist(b, b') in the paper). Zero if they intersect.
double MinDist(const Mbr& a, const Mbr& b);

/// Maximum possible Euclidean distance from `p` to a point in `b`.
double MaxDist(const Mbr& b, const Point& p);

}  // namespace fannr

#endif  // FANNR_GEO_MBR_H_
