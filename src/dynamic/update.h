// Live edge-weight updates: the dynamic-road-network subsystem.
//
// The paper's index-free algorithms (Section IV) are motivated by road
// networks that "change frequently": travel times shift with congestion
// far faster than a PHL/G-tree/CH rebuild completes. This subsystem
// turns a weight change from a full graph rebuild into an in-place
// UpdateBatch apply:
//
//   * UpdateBatch collects weight sets (absolute or scaled) against one
//     graph, deduplicating by edge (last writer wins) and validating
//     every entry before anything mutates;
//   * Apply() pushes the batch into the Graph (both arc directions) and
//     bumps the graph's epoch exactly once;
//   * everything downstream keys freshness off that epoch: the sharded
//     source-distance cache stamps entries and lazily rejects stale ones
//     (engine/distance_cache.h), prebuilt indexes record their build
//     epoch and the batch engine falls back to index-free solving when
//     an index is stale (fann/dispatch.h), and the batch engine rejects
//     jobs whose batch straddled an epoch change (engine/batch_engine.h).
//
// See DESIGN.md §2.8 for the full invalidation model.

#ifndef FANNR_DYNAMIC_UPDATE_H_
#define FANNR_DYNAMIC_UPDATE_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace fannr::dynamic {

/// Outcome of applying one UpdateBatch.
struct ApplyResult {
  size_t applied = 0;      ///< Edges whose weight changed.
  size_t missing = 0;      ///< Updates addressing a non-existent edge.
  GraphEpoch old_epoch = 0;
  GraphEpoch new_epoch = 0;  ///< old_epoch + 1 iff applied > 0.
};

/// A batch of edge-weight changes to apply atomically (one epoch bump).
/// Collect with SetWeight/ScaleWeight, then Apply() to a graph. Entries
/// addressing the same undirected edge are deduplicated at Apply time —
/// the last one added wins, matching "latest traffic reading wins".
class UpdateBatch {
 public:
  /// Sets w(u, v) to `weight` (must be positive and finite; checked at
  /// Apply). Endpoint order is irrelevant.
  void SetWeight(VertexId u, VertexId v, Weight weight) {
    updates_.push_back({u, v, weight});
  }

  /// Multiplies the edge's CURRENT weight (read from `graph` at call
  /// time) by `factor` > 0. Convenience for congestion/clearing waves.
  /// Requires the edge to exist in `graph`.
  void ScaleWeight(const Graph& graph, VertexId u, VertexId v,
                   double factor);

  size_t size() const { return updates_.size(); }
  bool empty() const { return updates_.empty(); }
  const std::vector<EdgeWeightUpdate>& updates() const { return updates_; }

  /// Explains the first invalid entry (endpoint out of range, self-loop,
  /// non-positive or non-finite weight) or returns an empty string when
  /// every entry is applicable to `graph`. Entries addressing a missing
  /// edge are NOT an error here — Apply reports them in
  /// ApplyResult::missing.
  std::string ValidationError(const Graph& graph) const;

  /// Applies the batch to `graph` in place: deduplicates by edge (last
  /// writer wins), updates both arc directions of every edge, and bumps
  /// the epoch once iff at least one weight changed. Aborts if
  /// ValidationError(graph) is non-empty — callers applying untrusted
  /// batches screen first.
  ApplyResult Apply(Graph& graph) const;

 private:
  std::vector<EdgeWeightUpdate> updates_;
};

/// A random congestion wave: scales the weight of ~`fraction` of the
/// graph's edges by a factor drawn uniformly from
/// [min_factor, max_factor]. Factors > 1 model congestion, < 1 model
/// clearing; mixes are fine. Deterministic in `rng`'s state. Used by the
/// dynamic benchmark and the update-interleaved fuzz mode.
UpdateBatch MakeCongestionWave(const Graph& graph, double fraction,
                               double min_factor, double max_factor,
                               Rng& rng);

}  // namespace fannr::dynamic

#endif  // FANNR_DYNAMIC_UPDATE_H_
