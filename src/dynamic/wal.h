// UpdateWal: a minimal append-only log of applied weight-update
// batches, positioned by graph epoch.
//
// The dynamic subsystem gives a graph a linear weight history: epoch 0
// at load, +1 per applied batch (dynamic/update.h). The WAL records
// that history durably — one record per applied batch, carrying the
// epoch the batch applied on top of (its *position*) and the absolute
// weight entries — so a restarted process can replay its way from the
// freshly loaded epoch-0 graph back to the epoch it crashed at, instead
// of rebuilding or resyncing the full weight state.
//
// Replay is position-keyed and therefore idempotent: a record applies
// only when the graph is exactly at the record's position, and entries
// are absolute weight sets. Batches that applied zero updates do not
// bump the epoch, so consecutive records may legitimately share a
// position; replaying them in order reproduces the identical epoch
// sequence.
//
// The file begins with the fingerprint of the *epoch-0* graph it logs
// updates for. Open() rejects a WAL written against a different
// network; callers check it before replaying on top of the wrong graph.
// A torn final record (crash mid-append) is detected by its checksum or
// short length and truncated away on open — everything before it is
// intact by construction (records are appended with a single write and
// flushed before Append returns).

#ifndef FANNR_DYNAMIC_WAL_H_
#define FANNR_DYNAMIC_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/fingerprint.h"
#include "graph/graph.h"

namespace fannr::dynamic {

/// One applied update batch as logged.
struct WalRecord {
  struct Entry {
    uint32_t u = 0;
    uint32_t v = 0;
    double weight = 0.0;  ///< Absolute weight (idempotent re-apply).
  };
  uint64_t position = 0;   ///< Graph epoch the batch applied on top of.
  uint64_t new_epoch = 0;  ///< Epoch after apply (== position iff no-op).
  std::vector<Entry> entries;
};

class UpdateWal {
 public:
  /// Opens the WAL at `path`, creating it (with a header stamped by
  /// `fingerprint`) when absent. An existing file must carry the same
  /// fingerprint; its records are loaded and a torn tail truncated.
  /// Returns nullptr with a reason on I/O failure or mismatch.
  static std::unique_ptr<UpdateWal> Open(const std::string& path,
                                         const GraphFingerprint& fingerprint,
                                         std::string* error);
  ~UpdateWal();

  UpdateWal(const UpdateWal&) = delete;
  UpdateWal& operator=(const UpdateWal&) = delete;

  /// Appends one record and flushes it to disk before returning, so a
  /// batch acknowledged to a client is never lost to a crash.
  bool Append(const WalRecord& record);

  /// Replays the log onto `graph`: walks records in order, applying
  /// each one whose position matches the graph's current epoch (others
  /// are skipped — already part of the graph's history). Returns the
  /// number of records applied; false-positive-free because positions
  /// gate every apply. On a validation failure (a record's entries do
  /// not fit the graph) replay stops and `error` explains.
  size_t ReplayInto(Graph& graph, std::string* error) const;

  /// Every record currently in the log, oldest first. The router reads
  /// this tail to catch a restarted replica up from its last epoch.
  const std::vector<WalRecord>& records() const { return records_; }

  /// The epoch the log ends at (0 when empty): the epoch a full replay
  /// onto an epoch-0 graph reaches.
  uint64_t end_epoch() const {
    return records_.empty() ? 0 : records_.back().new_epoch;
  }

  /// Bytes dropped from a torn tail at Open (0 for a clean file).
  size_t truncated_bytes() const { return truncated_bytes_; }

 private:
  UpdateWal() = default;

  int fd_ = -1;
  std::vector<WalRecord> records_;
  size_t truncated_bytes_ = 0;
};

}  // namespace fannr::dynamic

#endif  // FANNR_DYNAMIC_WAL_H_
