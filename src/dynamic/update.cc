#include "dynamic/update.h"

#include <cmath>
#include <unordered_map>

#include "common/check.h"

namespace fannr::dynamic {

void UpdateBatch::ScaleWeight(const Graph& graph, VertexId u, VertexId v,
                              double factor) {
  FANNR_CHECK(factor > 0.0 && std::isfinite(factor));
  const std::optional<Weight> current = graph.EdgeWeight(u, v);
  FANNR_CHECK(current.has_value() && "ScaleWeight requires an existing edge");
  updates_.push_back({u, v, *current * factor});
}

std::string UpdateBatch::ValidationError(const Graph& graph) const {
  const size_t n = graph.NumVertices();
  for (size_t i = 0; i < updates_.size(); ++i) {
    const EdgeWeightUpdate& u = updates_[i];
    const std::string prefix = "update #" + std::to_string(i) + ": ";
    if (u.u >= n || u.v >= n) {
      return prefix + "endpoint out of range (|V|=" + std::to_string(n) + ")";
    }
    if (u.u == u.v) {
      return prefix + "self-loop (road networks have none)";
    }
    if (!(u.new_weight > 0.0) || !std::isfinite(u.new_weight)) {
      return prefix + "weight must be positive and finite";
    }
  }
  return std::string();
}

ApplyResult UpdateBatch::Apply(Graph& graph) const {
  const std::string error = ValidationError(graph);
  FANNR_CHECK(error.empty() && "invalid UpdateBatch; screen with "
                               "ValidationError before Apply");
  // Deduplicate by undirected edge, last writer wins, preserving the
  // first-seen order so the apply is deterministic.
  std::unordered_map<uint64_t, size_t> position;  // edge key -> dedup index
  std::vector<EdgeWeightUpdate> deduped;
  deduped.reserve(updates_.size());
  for (const EdgeWeightUpdate& u : updates_) {
    const uint64_t lo = std::min(u.u, u.v);
    const uint64_t hi = std::max(u.u, u.v);
    const uint64_t key = (lo << 32) | hi;
    auto [it, inserted] = position.emplace(key, deduped.size());
    if (inserted) {
      deduped.push_back(u);
    } else {
      deduped[it->second] = u;
    }
  }

  ApplyResult result;
  result.old_epoch = graph.epoch();
  const Graph::ApplyStats stats = graph.ApplyWeightUpdates(deduped);
  result.applied = stats.applied;
  result.missing = stats.missing;
  result.new_epoch = graph.epoch();
  return result;
}

UpdateBatch MakeCongestionWave(const Graph& graph, double fraction,
                               double min_factor, double max_factor,
                               Rng& rng) {
  FANNR_CHECK(fraction >= 0.0 && fraction <= 1.0);
  FANNR_CHECK(min_factor > 0.0 && min_factor <= max_factor);
  UpdateBatch batch;
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (const Arc& a : graph.Neighbors(u)) {
      if (u >= a.to) continue;  // visit each undirected edge once
      if (!rng.NextBool(fraction)) continue;
      const double factor = rng.NextDouble(min_factor, max_factor);
      batch.SetWeight(u, a.to, a.weight * factor);
    }
  }
  return batch;
}

}  // namespace fannr::dynamic
