#include "dynamic/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>

#include "dynamic/update.h"
#include "graph/index_io.h"

namespace fannr::dynamic {

namespace {

constexpr uint64_t kWalMagic = 0xFA22A81A77A10006ULL;
constexpr uint32_t kWalVersion = 1;

/// Header: magic u64, version u32, reserved u32 (zero), fingerprint
/// 3 x u64. 40 bytes total.
constexpr size_t kHeaderBytes = 40;

/// Fixed part of a record: position u64, new_epoch u64, count u32.
constexpr size_t kRecordFixedBytes = 20;
constexpr size_t kEntryBytes = 16;
constexpr size_t kChecksumBytes = 8;

template <typename T>
void Put(std::vector<uint8_t>& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &value, sizeof(T));
}

template <typename T>
T Get(const uint8_t* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

/// Serializes one record (without its trailing checksum).
std::vector<uint8_t> SerializeRecordBody(const WalRecord& record) {
  std::vector<uint8_t> out;
  out.reserve(kRecordFixedBytes + record.entries.size() * kEntryBytes);
  Put(out, record.position);
  Put(out, record.new_epoch);
  Put(out, static_cast<uint32_t>(record.entries.size()));
  for (const WalRecord::Entry& e : record.entries) {
    Put(out, e.u);
    Put(out, e.v);
    Put(out, e.weight);
  }
  return out;
}

uint64_t BodyChecksum(const std::vector<uint8_t>& body) {
  ArenaChecksum sum;
  sum.Absorb(body.data(), body.size());
  return sum.Finish();
}

bool WriteFullFd(int fd, const void* data, size_t bytes) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  while (bytes > 0) {
    const ssize_t n = ::write(fd, p, bytes);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    bytes -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

UpdateWal::~UpdateWal() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<UpdateWal> UpdateWal::Open(const std::string& path,
                                           const GraphFingerprint& fingerprint,
                                           std::string* error) {
  auto fail = [&](const std::string& reason) -> std::unique_ptr<UpdateWal> {
    if (error != nullptr) *error = reason;
    return nullptr;
  };

  std::unique_ptr<UpdateWal> wal(new UpdateWal());
  wal->fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (wal->fd_ < 0) return fail("could not open WAL " + path);

  const off_t file_size = ::lseek(wal->fd_, 0, SEEK_END);
  if (file_size < 0) return fail("could not size WAL " + path);

  if (file_size == 0) {
    // Fresh log: stamp the header for the graph we will record.
    std::vector<uint8_t> header;
    Put(header, kWalMagic);
    Put(header, kWalVersion);
    Put(header, uint32_t{0});
    Put(header, fingerprint.vertices);
    Put(header, fingerprint.edges);
    Put(header, fingerprint.weight_checksum);
    FANNR_CHECK(header.size() == kHeaderBytes);
    if (!WriteFullFd(wal->fd_, header.data(), header.size()) ||
        ::fsync(wal->fd_) != 0) {
      return fail("could not write WAL header to " + path);
    }
    return wal;
  }

  // Existing log: read it whole (WALs are bounded by update volume, not
  // graph size) and parse records until the first torn/corrupt one.
  if (static_cast<size_t>(file_size) < kHeaderBytes) {
    return fail("WAL " + path + " is shorter than its header");
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(file_size));
  if (::lseek(wal->fd_, 0, SEEK_SET) != 0) {
    return fail("could not rewind WAL " + path);
  }
  size_t got = 0;
  while (got < bytes.size()) {
    const ssize_t n = ::read(wal->fd_, bytes.data() + got, bytes.size() - got);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return fail("could not read WAL " + path);
    got += static_cast<size_t>(n);
  }

  if (Get<uint64_t>(bytes.data()) != kWalMagic ||
      Get<uint32_t>(bytes.data() + 8) != kWalVersion) {
    return fail(path + " is not an update WAL this build can read");
  }
  const GraphFingerprint stored{Get<uint64_t>(bytes.data() + 16),
                                Get<uint64_t>(bytes.data() + 24),
                                Get<uint64_t>(bytes.data() + 32)};
  if (!(stored == fingerprint)) {
    return fail("WAL " + path +
                " was written against a different graph (fingerprint "
                "mismatch) — refusing to replay it");
  }

  size_t at = kHeaderBytes;
  while (at < bytes.size()) {
    // A record is torn when the remaining bytes cannot hold it or its
    // checksum disagrees; either way everything from here on is the
    // debris of an interrupted append.
    if (bytes.size() - at < kRecordFixedBytes + kChecksumBytes) break;
    WalRecord record;
    record.position = Get<uint64_t>(bytes.data() + at);
    record.new_epoch = Get<uint64_t>(bytes.data() + at + 8);
    const uint32_t count = Get<uint32_t>(bytes.data() + at + 16);
    const size_t body_bytes =
        kRecordFixedBytes + static_cast<size_t>(count) * kEntryBytes;
    if (bytes.size() - at < body_bytes + kChecksumBytes) break;
    ArenaChecksum sum;
    sum.Absorb(bytes.data() + at, body_bytes);
    if (Get<uint64_t>(bytes.data() + at + body_bytes) != sum.Finish()) break;
    record.entries.resize(count);
    for (uint32_t i = 0; i < count; ++i) {
      const uint8_t* p = bytes.data() + at + kRecordFixedBytes +
                         static_cast<size_t>(i) * kEntryBytes;
      record.entries[i].u = Get<uint32_t>(p);
      record.entries[i].v = Get<uint32_t>(p + 4);
      record.entries[i].weight = Get<double>(p + 8);
    }
    wal->records_.push_back(std::move(record));
    at += body_bytes + kChecksumBytes;
  }

  if (at < bytes.size()) {
    wal->truncated_bytes_ = bytes.size() - at;
    if (::ftruncate(wal->fd_, static_cast<off_t>(at)) != 0) {
      return fail("could not truncate torn tail of WAL " + path);
    }
  }
  if (::lseek(wal->fd_, 0, SEEK_END) < 0) {
    return fail("could not seek to end of WAL " + path);
  }
  return wal;
}

bool UpdateWal::Append(const WalRecord& record) {
  if (fd_ < 0) return false;
  std::vector<uint8_t> body = SerializeRecordBody(record);
  const uint64_t checksum = BodyChecksum(body);
  Put(body, checksum);
  // One write + one flush: a crash leaves either no trace of this
  // record or a torn tail the next Open truncates — never a prefix that
  // parses as valid.
  if (!WriteFullFd(fd_, body.data(), body.size())) return false;
  if (::fdatasync(fd_) != 0) return false;
  records_.push_back(record);
  return true;
}

size_t UpdateWal::ReplayInto(Graph& graph, std::string* error) const {
  size_t applied = 0;
  for (const WalRecord& record : records_) {
    if (graph.epoch() != record.position) continue;
    UpdateBatch batch;
    for (const WalRecord::Entry& e : record.entries) {
      batch.SetWeight(e.u, e.v, e.weight);
    }
    const std::string validation = batch.ValidationError(graph);
    if (!validation.empty()) {
      if (error != nullptr) {
        *error = "WAL record at position " + std::to_string(record.position) +
                 " does not fit this graph: " + validation;
      }
      return applied;
    }
    batch.Apply(graph);
    ++applied;
  }
  return applied;
}

}  // namespace fannr::dynamic
