// A threshold-filtered ring buffer of slow-query traces.
//
// Production triage starts from "which queries were slow and why"; the
// answer must survive the batch that produced it without retaining a
// trace per query forever. The log keeps the most recent `capacity`
// completed traces whose solve time reached the threshold, overwriting
// the oldest on wraparound. Offer() checks the threshold BEFORE taking
// the mutex: the common case — a fast, successful query — costs one
// relaxed atomic increment and a branch, so concurrent workers never
// serialize on the log. Only admissions (rare by construction) lock,
// and the copied trace is small.

#ifndef FANNR_OBS_SLOW_QUERY_LOG_H_
#define FANNR_OBS_SLOW_QUERY_LOG_H_

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace fannr::obs {

/// Thread-safe fixed-capacity ring of QueryTraces over a latency
/// threshold. Rejected and timed-out queries are always admitted
/// regardless of solve time: a non-ok outcome is exactly the kind of
/// event triage wants to see.
class SlowQueryLog {
 public:
  /// `capacity` >= 1 enforced. `threshold_ms` <= 0 admits every offered
  /// trace (useful for tools that want a full trace dump).
  explicit SlowQueryLog(size_t capacity, double threshold_ms);

  /// Admits `trace` if trace.solve_ms >= threshold_ms or the trace is a
  /// rejection; otherwise drops it. Thread-safe.
  void Offer(const QueryTrace& trace);

  /// Retained traces, oldest first. Thread-safe snapshot.
  std::vector<QueryTrace> Entries() const;

  /// Lifetime counters: everything Offer() ever saw / admitted (admitted
  /// includes entries since overwritten).
  size_t total_offered() const;
  size_t total_admitted() const;

  size_t capacity() const { return capacity_; }
  double threshold_ms() const { return threshold_ms_; }

  /// Human-readable dump of the retained traces (FormatTrace per entry).
  std::string DumpText() const;

  /// JSON array of the retained traces (TraceToJson per entry).
  std::string DumpJson() const;

  /// Drops retained traces; counters are kept.
  void Clear();

 private:
  const size_t capacity_;
  const double threshold_ms_;

  // Offers are counted lock-free so the drop path (fast queries) never
  // touches mu_.
  std::atomic<size_t> offered_{0};

  mutable std::mutex mu_;
  std::vector<QueryTrace> ring_;  // grows to capacity_, then wraps
  size_t next_ = 0;               // overwrite position once full
  size_t admitted_ = 0;
};

}  // namespace fannr::obs

#endif  // FANNR_OBS_SLOW_QUERY_LOG_H_
