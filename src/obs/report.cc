#include "obs/report.h"

#include <cstdio>

#include "obs/trace.h"

namespace fannr::obs {

namespace {

std::string Num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::string HistogramJson(const HistogramSnapshot& h, const std::string& pad) {
  std::string out = "{\n";
  out += pad + "  \"count\": " + std::to_string(h.count) + ",\n";
  out += pad + "  \"sum\": " + Num(h.sum) + ",\n";
  out += pad + "  \"min\": " + Num(h.min) + ",\n";
  out += pad + "  \"max\": " + Num(h.max) + ",\n";
  out += pad + "  \"mean\": " + Num(h.Mean()) + ",\n";
  out += pad + "  \"p50\": " + Num(h.Percentile(50)) + ",\n";
  out += pad + "  \"p95\": " + Num(h.Percentile(95)) + ",\n";
  out += pad + "  \"p99\": " + Num(h.Percentile(99)) + ",\n";
  out += pad + "  \"bounds\": [";
  for (size_t i = 0; i < h.bounds.size(); ++i) {
    out += std::string(i ? ", " : "") + Num(h.bounds[i]);
  }
  out += "],\n" + pad + "  \"counts\": [";
  for (size_t i = 0; i < h.counts.size(); ++i) {
    out += std::string(i ? ", " : "") + std::to_string(h.counts[i]);
  }
  out += "]\n" + pad + "}";
  return out;
}

}  // namespace

std::string BatchReport::ToText() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "batch: %zu queries (%zu rejected, %zu timed out), %zu "
                "threads, %.2f ms wall, %.1f queries/s\n",
                batch_size, rejected, timed_out, num_threads, wall_ms,
                queries_per_second);
  out += line;
  std::snprintf(line, sizeof(line),
                "solve latency ms: mean %.3f  p50 %.3f  p95 %.3f  p99 %.3f  "
                "max %.3f\n",
                solve_ms.Mean(), solve_ms.Percentile(50),
                solve_ms.Percentile(95), solve_ms.Percentile(99),
                solve_ms.max);
  out += line;
  const size_t lookups = cache.hits + cache.misses;
  std::snprintf(line, sizeof(line),
                "cache: %zu lookups (%zu hits / %zu misses, %.1f%% hit "
                "rate), %zu evictions (%zu epoch-stale), %zu resident\n",
                lookups, cache.hits, cache.misses,
                lookups == 0 ? 0.0
                             : 100.0 * static_cast<double>(cache.hits) /
                                   static_cast<double>(lookups),
                cache.evictions, cache.epoch_evictions, cache_entries);
  out += line;
  if (rejected_mid_batch > 0 || stale_index_fallbacks > 0) {
    std::snprintf(line, sizeof(line),
                  "dynamic: epoch %llu, %zu mid-batch rejections, %zu "
                  "stale-index fallbacks\n",
                  static_cast<unsigned long long>(graph_epoch),
                  rejected_mid_batch, stale_index_fallbacks);
    out += line;
  }
  std::snprintf(line, sizeof(line), "pool: %zu indices executed\n",
                pool_indices_executed);
  out += line;
  return out;
}

std::string BatchReport::ToJson(int indent) const {
  const std::string pad(static_cast<size_t>(indent), ' ');
  const std::string in = pad + "  ";
  std::string out = "{\n";
  if (!tag.empty()) {
    out += in + "\"tag\": \"" + internal_obs::JsonEscape(tag) + "\",\n";
  }
  out += in + "\"batch_size\": " + std::to_string(batch_size) + ",\n";
  out += in + "\"rejected\": " + std::to_string(rejected) + ",\n";
  out += in + "\"timed_out\": " + std::to_string(timed_out) + ",\n";
  out += in + "\"rejected_mid_batch\": " + std::to_string(rejected_mid_batch) +
         ",\n";
  out += in + "\"num_threads\": " + std::to_string(num_threads) + ",\n";
  out += in + "\"graph_epoch\": " + std::to_string(graph_epoch) + ",\n";
  out += in + "\"stale_index_fallbacks\": " +
         std::to_string(stale_index_fallbacks) + ",\n";
  out += in + "\"wall_ms\": " + Num(wall_ms) + ",\n";
  out += in + "\"queries_per_second\": " + Num(queries_per_second) + ",\n";
  out += in + "\"solve_ms\": " + HistogramJson(solve_ms, in) + ",\n";
  out += in + "\"cache\": {\"hits\": " + std::to_string(cache.hits) +
         ", \"misses\": " + std::to_string(cache.misses) +
         ", \"lookups\": " + std::to_string(cache.hits + cache.misses) +
         ", \"evictions\": " + std::to_string(cache.evictions) +
         ", \"epoch_evictions\": " + std::to_string(cache.epoch_evictions) +
         ", \"resident_entries\": " + std::to_string(cache_entries) + "},\n";
  out += in + "\"attributed_cache_hits\": " +
         std::to_string(attributed_cache_hits) + ",\n";
  out += in + "\"attributed_cache_misses\": " +
         std::to_string(attributed_cache_misses) + ",\n";
  out += in + "\"pool_indices_executed\": " +
         std::to_string(pool_indices_executed) + ",\n";
  out += in + "\"counters\": {";
  for (size_t i = 0; i < metrics.counters.size(); ++i) {
    out += std::string(i ? ", " : "") + "\"" +
           internal_obs::JsonEscape(metrics.counters[i].first) +
           "\": " + std::to_string(metrics.counters[i].second);
  }
  out += "},\n";
  out += in + "\"gauges\": {";
  for (size_t i = 0; i < metrics.gauges.size(); ++i) {
    out += std::string(i ? ", " : "") + "\"" +
           internal_obs::JsonEscape(metrics.gauges[i].first) +
           "\": " + Num(metrics.gauges[i].second);
  }
  out += "},\n";
  out += in + "\"histograms\": {";
  for (size_t i = 0; i < metrics.histograms.size(); ++i) {
    out += std::string(i ? ",\n" : "\n") + in + "  \"" +
           internal_obs::JsonEscape(metrics.histograms[i].first) +
           "\": " + HistogramJson(metrics.histograms[i].second, in + "  ");
  }
  out += metrics.histograms.empty() ? "}" : "\n" + in + "}";
  out += "\n" + pad + "}";
  return out;
}

}  // namespace fannr::obs
