#include "obs/slow_query_log.h"

#include <algorithm>

namespace fannr::obs {

SlowQueryLog::SlowQueryLog(size_t capacity, double threshold_ms)
    : capacity_(std::max<size_t>(1, capacity)), threshold_ms_(threshold_ms) {}

void SlowQueryLog::Offer(const QueryTrace& trace) {
  offered_.fetch_add(1, std::memory_order_relaxed);
  // Fast path: a quick, successful query is dropped without touching
  // the mutex, so workers offering every trace never serialize here.
  const bool admit =
      trace.status != QueryStatus::kOk || trace.solve_ms >= threshold_ms_;
  if (!admit) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++admitted_;
  if (ring_.size() < capacity_) {
    ring_.push_back(trace);
  } else {
    ring_[next_] = trace;
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<QueryTrace> SlowQueryLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryTrace> out;
  out.reserve(ring_.size());
  // Once full, next_ points at the oldest entry.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

size_t SlowQueryLog::total_offered() const {
  return offered_.load(std::memory_order_relaxed);
}

size_t SlowQueryLog::total_admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

std::string SlowQueryLog::DumpText() const {
  std::string out;
  for (const QueryTrace& trace : Entries()) out += FormatTrace(trace);
  return out;
}

std::string SlowQueryLog::DumpJson() const {
  std::string out = "[";
  const auto entries = Entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    out += std::string(i ? ", " : "") + TraceToJson(entries[i]);
  }
  out += "]";
  return out;
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
}

}  // namespace fannr::obs
