// Per-query execution traces.
//
// A QueryTrace is the unit of record the batch engine keeps per query
// when observation is enabled: where the query ran (worker), how long
// each phase took (dispatch wait, solve, and the g_phi prepare/evaluate
// breakdown captured by a pass-through TracingGphiEngine), what the
// solver reported (the FannResult work counters), and what the shared
// distance cache did for this specific query (hit/miss deltas of the
// executing worker's engine).
//
// Traces are observation-only by construction: the tracing engine
// forwards Prepare/Evaluate untouched and every recorded quantity is a
// timestamp or a copy of an existing counter, so traced and untraced
// runs produce bitwise-identical query results
// (tests/batch_determinism_test.cc enforces this).

#ifndef FANNR_OBS_TRACE_H_
#define FANNR_OBS_TRACE_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/timer.h"
#include "fann/dispatch.h"
#include "fann/query.h"

namespace fannr::obs {

namespace internal_obs {

/// Minimal JSON string escaping shared by the obs dump paths.
std::string JsonEscape(std::string_view s);

}  // namespace internal_obs

/// One named span inside a trace. Offsets are milliseconds relative to
/// the batch's Run() start, so spans across queries and workers share
/// one time base.
struct TraceSpan {
  std::string name;
  double start_ms = 0.0;
  double duration_ms = 0.0;
};

/// The complete record of one query's execution within a batch.
struct QueryTrace {
  size_t query_index = 0;   ///< Position in the Run() input batch.
  size_t worker = 0;        ///< Executing worker id.
  FannAlgorithm algorithm = FannAlgorithm::kGd;
  QueryStatus status = QueryStatus::kOk;
  std::string error;        ///< Non-empty iff status == kRejected.

  /// Caller-supplied batch attribution (e.g. "subscription-reeval"); set
  /// on every trace of a tagged Run, empty for untagged batches.
  std::string batch_tag;

  /// Coarse spans: "dispatch-wait" (Run() start -> worker pickup) and
  /// "solve" (solver entry -> result), in batch-relative time.
  std::vector<TraceSpan> spans;
  double dispatch_wait_ms = 0.0;
  double solve_ms = 0.0;

  /// g_phi phase breakdown accumulated by the tracing engine across the
  /// whole solve (a solver calls Prepare once and Evaluate many times).
  /// Prepare is timed exactly. Evaluate time is SAMPLED: a solver makes
  /// tens of Evaluate calls per query and each one is microseconds, so
  /// timing every call costs more than everything else observation does
  /// combined (two clock reads per call dominated the measured
  /// observability overhead). The tracing engine times one call in
  /// kEvaluateSamplePeriod (the first is always timed) and scales the
  /// sum by calls/timed on trace finalization; gphi_evaluate_ms is that
  /// estimate, clamped into the solve span by the batch engine.
  /// gphi_evaluate_calls is always exact.
  double gphi_prepare_ms = 0.0;
  double gphi_evaluate_ms = 0.0;
  size_t gphi_evaluate_calls = 0;
  size_t gphi_evaluate_timed_calls = 0;  ///< Calls behind the estimate.

  /// Copied solver counters / answer summary.
  size_t gphi_evaluations = 0;
  Weight distance = kInfWeight;
  VertexId best = kInvalidVertex;

  /// Shared-distance-cache activity attributed to this query (deltas of
  /// the executing worker's cached engine around the solve; zero when
  /// the cache or the cached oracle is disabled). epoch_evictions counts
  /// the misses that lazily reclaimed an entry stamped with an older
  /// graph epoch (see dynamic/update.h).
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  size_t cache_epoch_evictions = 0;

  /// Set when the engine's configured g_phi kind depends on a prebuilt
  /// index that was stale for the graph's current epoch, so this query
  /// was answered by the index-free fallback engine instead (INE; exact
  /// on the live weights). fallback_reason carries the staleness
  /// diagnosis from StaleIndexReason().
  bool stale_index_fallback = false;
  std::string fallback_reason;
};

/// One-line-per-field human dump.
std::string FormatTrace(const QueryTrace& trace);

/// Compact JSON object (no trailing newline).
std::string TraceToJson(const QueryTrace& trace);

/// RAII helper accumulating wall-clock milliseconds into a target.
class ScopedTimerMs {
 public:
  explicit ScopedTimerMs(double* target_ms) : target_ms_(target_ms) {}
  ~ScopedTimerMs() { *target_ms_ += timer_.Millis(); }
  ScopedTimerMs(const ScopedTimerMs&) = delete;
  ScopedTimerMs& operator=(const ScopedTimerMs&) = delete;

 private:
  double* target_ms_;
  Timer timer_;
};

/// Pass-through g_phi engine recording phase timings into the active
/// QueryTrace. Forwarding is exact (same calls, same order, same
/// results), so wrapping never changes answers. Not thread-safe, like
/// every GphiEngine; each worker wraps its own engine.
class TracingGphiEngine : public GphiEngine {
 public:
  /// Evaluate calls are timed at this period (see QueryTrace's phase
  /// breakdown doc): call 0 of every query is timed, then every
  /// kEvaluateSamplePeriod-th. Evaluations within one query are
  /// homogeneous (same |Q|, same oracle), so the extrapolated estimate
  /// tracks the true sum while the untimed calls cost one increment.
  static constexpr size_t kEvaluateSamplePeriod = 16;

  explicit TracingGphiEngine(GphiEngine& inner) : inner_(inner) {}

  /// Redirects recording; nullptr disables (pure forwarding). Switching
  /// away from a trace finalizes it: the sampled Evaluate time is scaled
  /// to an estimate covering all calls.
  void set_trace(QueryTrace* trace) {
    FinalizeTrace();
    trace_ = trace;
  }

  void Prepare(const IndexedVertexSet& query_points) override {
    if (trace_ == nullptr) return inner_.Prepare(query_points);
    ScopedTimerMs t(&trace_->gphi_prepare_ms);
    inner_.Prepare(query_points);
  }

  // Forwarded untimed: binding is a span copy, far below the sampling
  // noise floor, and forwarding is mandatory — swallowing it here would
  // trip the weighted solvers' BindWeights check under tracing.
  bool BindWeights(std::span<const double> weights) override {
    return inner_.BindWeights(weights);
  }

  GphiResult Evaluate(VertexId p, size_t k, Aggregate aggregate) override {
    if (trace_ == nullptr) return inner_.Evaluate(p, k, aggregate);
    const size_t call = trace_->gphi_evaluate_calls++;
    if (call % kEvaluateSamplePeriod != 0) {
      return inner_.Evaluate(p, k, aggregate);
    }
    ++trace_->gphi_evaluate_timed_calls;
    ScopedTimerMs t(&trace_->gphi_evaluate_ms);
    return inner_.Evaluate(p, k, aggregate);
  }

  // Pure forwarding: prewarming is part of construction, not solving,
  // so it is never timed into a trace.
  void PrewarmScratch() override { inner_.PrewarmScratch(); }

  std::string_view name() const override { return inner_.name(); }

 private:
  // Scales the sampled Evaluate-time sum up to all calls. Idempotent per
  // trace because set_trace detaches the trace it finalizes.
  void FinalizeTrace() {
    if (trace_ == nullptr) return;
    if (trace_->gphi_evaluate_timed_calls > 0 &&
        trace_->gphi_evaluate_calls > trace_->gphi_evaluate_timed_calls) {
      trace_->gphi_evaluate_ms *=
          static_cast<double>(trace_->gphi_evaluate_calls) /
          static_cast<double>(trace_->gphi_evaluate_timed_calls);
    }
    trace_ = nullptr;
  }

  GphiEngine& inner_;
  QueryTrace* trace_ = nullptr;
};

}  // namespace fannr::obs

#endif  // FANNR_OBS_TRACE_H_
