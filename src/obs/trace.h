// Per-query execution traces.
//
// A QueryTrace is the unit of record the batch engine keeps per query
// when observation is enabled: where the query ran (worker), how long
// each phase took (dispatch wait, solve, and the g_phi prepare/evaluate
// breakdown captured by a pass-through TracingGphiEngine), what the
// solver reported (the FannResult work counters), and what the shared
// distance cache did for this specific query (hit/miss deltas of the
// executing worker's engine).
//
// Traces are observation-only by construction: the tracing engine
// forwards Prepare/Evaluate untouched and every recorded quantity is a
// timestamp or a copy of an existing counter, so traced and untraced
// runs produce bitwise-identical query results
// (tests/batch_determinism_test.cc enforces this).

#ifndef FANNR_OBS_TRACE_H_
#define FANNR_OBS_TRACE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/timer.h"
#include "fann/dispatch.h"
#include "fann/query.h"

namespace fannr::obs {

namespace internal_obs {

/// Minimal JSON string escaping shared by the obs dump paths.
std::string JsonEscape(std::string_view s);

}  // namespace internal_obs

/// One named span inside a trace. Offsets are milliseconds relative to
/// the batch's Run() start, so spans across queries and workers share
/// one time base.
struct TraceSpan {
  std::string name;
  double start_ms = 0.0;
  double duration_ms = 0.0;
};

/// The complete record of one query's execution within a batch.
struct QueryTrace {
  size_t query_index = 0;   ///< Position in the Run() input batch.
  size_t worker = 0;        ///< Executing worker id.
  FannAlgorithm algorithm = FannAlgorithm::kGd;
  QueryStatus status = QueryStatus::kOk;
  std::string error;        ///< Non-empty iff status == kRejected.

  /// Coarse spans: "dispatch-wait" (Run() start -> worker pickup) and
  /// "solve" (solver entry -> result), in batch-relative time.
  std::vector<TraceSpan> spans;
  double dispatch_wait_ms = 0.0;
  double solve_ms = 0.0;

  /// g_phi phase breakdown accumulated by the tracing engine across the
  /// whole solve (a solver calls Prepare once and Evaluate many times).
  double gphi_prepare_ms = 0.0;
  double gphi_evaluate_ms = 0.0;
  size_t gphi_evaluate_calls = 0;

  /// Copied solver counters / answer summary.
  size_t gphi_evaluations = 0;
  Weight distance = kInfWeight;
  VertexId best = kInvalidVertex;

  /// Shared-distance-cache activity attributed to this query (deltas of
  /// the executing worker's cached engine around the solve; zero when
  /// the cache or the cached oracle is disabled). epoch_evictions counts
  /// the misses that lazily reclaimed an entry stamped with an older
  /// graph epoch (see dynamic/update.h).
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  size_t cache_epoch_evictions = 0;

  /// Set when the engine's configured g_phi kind depends on a prebuilt
  /// index that was stale for the graph's current epoch, so this query
  /// was answered by the index-free fallback engine instead (INE; exact
  /// on the live weights). fallback_reason carries the staleness
  /// diagnosis from StaleIndexReason().
  bool stale_index_fallback = false;
  std::string fallback_reason;
};

/// One-line-per-field human dump.
std::string FormatTrace(const QueryTrace& trace);

/// Compact JSON object (no trailing newline).
std::string TraceToJson(const QueryTrace& trace);

/// RAII helper accumulating wall-clock milliseconds into a target.
class ScopedTimerMs {
 public:
  explicit ScopedTimerMs(double* target_ms) : target_ms_(target_ms) {}
  ~ScopedTimerMs() { *target_ms_ += timer_.Millis(); }
  ScopedTimerMs(const ScopedTimerMs&) = delete;
  ScopedTimerMs& operator=(const ScopedTimerMs&) = delete;

 private:
  double* target_ms_;
  Timer timer_;
};

/// Pass-through g_phi engine recording phase timings into the active
/// QueryTrace. Forwarding is exact (same calls, same order, same
/// results), so wrapping never changes answers. Not thread-safe, like
/// every GphiEngine; each worker wraps its own engine.
class TracingGphiEngine : public GphiEngine {
 public:
  explicit TracingGphiEngine(GphiEngine& inner) : inner_(inner) {}

  /// Redirects recording; nullptr disables (pure forwarding).
  void set_trace(QueryTrace* trace) { trace_ = trace; }

  void Prepare(const IndexedVertexSet& query_points) override {
    if (trace_ == nullptr) return inner_.Prepare(query_points);
    ScopedTimerMs t(&trace_->gphi_prepare_ms);
    inner_.Prepare(query_points);
  }

  GphiResult Evaluate(VertexId p, size_t k, Aggregate aggregate) override {
    if (trace_ == nullptr) return inner_.Evaluate(p, k, aggregate);
    ++trace_->gphi_evaluate_calls;
    ScopedTimerMs t(&trace_->gphi_evaluate_ms);
    return inner_.Evaluate(p, k, aggregate);
  }

  std::string_view name() const override { return inner_.name(); }

 private:
  GphiEngine& inner_;
  QueryTrace* trace_ = nullptr;
};

}  // namespace fannr::obs

#endif  // FANNR_OBS_TRACE_H_
