#include "obs/trace.h"

#include <cstdio>

namespace fannr::obs {

namespace internal_obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace internal_obs

namespace {

std::string Ms(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}

}  // namespace

std::string FormatTrace(const QueryTrace& trace) {
  std::string out;
  out += "query #" + std::to_string(trace.query_index) + "  " +
         std::string(FannAlgorithmName(trace.algorithm)) + "  worker " +
         std::to_string(trace.worker) + "\n";
  if (trace.status == QueryStatus::kRejected) {
    out += "  status: REJECTED — " + trace.error + "\n";
    return out;
  }
  if (trace.status == QueryStatus::kTimedOut) {
    out += "  status: TIMED OUT — " + trace.error + "\n";
    return out;
  }
  out += "  dispatch wait: " + Ms(trace.dispatch_wait_ms) + " ms\n";
  out += "  solve:         " + Ms(trace.solve_ms) + " ms  (g_phi prepare " +
         Ms(trace.gphi_prepare_ms) + " ms, evaluate " +
         Ms(trace.gphi_evaluate_ms) + " ms est. over " +
         std::to_string(trace.gphi_evaluate_calls) + " calls, " +
         std::to_string(trace.gphi_evaluate_timed_calls) + " timed)\n";
  out += "  counters:      " + std::to_string(trace.gphi_evaluations) +
         " g_phi evaluations, cache " + std::to_string(trace.cache_hits) +
         " hits / " + std::to_string(trace.cache_misses) + " misses";
  if (trace.cache_epoch_evictions > 0) {
    out += " (" + std::to_string(trace.cache_epoch_evictions) +
           " epoch-stale reclaimed)";
  }
  out += "\n";
  if (trace.stale_index_fallback) {
    out += "  fallback:      index-free (stale index: " +
           trace.fallback_reason + ")\n";
  }
  out += "  answer:        p* = " +
         (trace.best == kInvalidVertex ? std::string("none")
                                       : "v" + std::to_string(trace.best)) +
         ", d* = " + Ms(trace.distance) + "\n";
  for (const TraceSpan& span : trace.spans) {
    out += "  span " + span.name + ": start " + Ms(span.start_ms) +
           " ms, duration " + Ms(span.duration_ms) + " ms\n";
  }
  return out;
}

std::string TraceToJson(const QueryTrace& trace) {
  std::string out = "{";
  out += "\"query_index\": " + std::to_string(trace.query_index);
  out += ", \"algorithm\": \"" +
         std::string(FannAlgorithmName(trace.algorithm)) + "\"";
  out += ", \"worker\": " + std::to_string(trace.worker);
  out += ", \"status\": \"";
  out += QueryStatusName(trace.status);
  out += "\"";
  if (!trace.batch_tag.empty()) {
    out += ", \"batch_tag\": \"" + internal_obs::JsonEscape(trace.batch_tag) +
           "\"";
  }
  if (!trace.error.empty()) {
    out += ", \"error\": \"" + internal_obs::JsonEscape(trace.error) + "\"";
  }
  out += ", \"dispatch_wait_ms\": " + Ms(trace.dispatch_wait_ms);
  out += ", \"solve_ms\": " + Ms(trace.solve_ms);
  out += ", \"gphi_prepare_ms\": " + Ms(trace.gphi_prepare_ms);
  out += ", \"gphi_evaluate_ms\": " + Ms(trace.gphi_evaluate_ms);
  out += ", \"gphi_evaluate_calls\": " +
         std::to_string(trace.gphi_evaluate_calls);
  out += ", \"gphi_evaluate_timed_calls\": " +
         std::to_string(trace.gphi_evaluate_timed_calls);
  out += ", \"gphi_evaluations\": " + std::to_string(trace.gphi_evaluations);
  out += ", \"cache_hits\": " + std::to_string(trace.cache_hits);
  out += ", \"cache_misses\": " + std::to_string(trace.cache_misses);
  out += ", \"cache_epoch_evictions\": " +
         std::to_string(trace.cache_epoch_evictions);
  out += ", \"stale_index_fallback\": ";
  out += trace.stale_index_fallback ? "true" : "false";
  if (!trace.fallback_reason.empty()) {
    out += ", \"fallback_reason\": \"" +
           internal_obs::JsonEscape(trace.fallback_reason) + "\"";
  }
  out += ", \"spans\": [";
  for (size_t i = 0; i < trace.spans.size(); ++i) {
    const TraceSpan& span = trace.spans[i];
    out += std::string(i ? ", " : "") + "{\"name\": \"" +
           internal_obs::JsonEscape(span.name) + "\", \"start_ms\": " +
           Ms(span.start_ms) + ", \"duration_ms\": " + Ms(span.duration_ms) +
           "}";
  }
  out += "]}";
  return out;
}

}  // namespace fannr::obs
