// A lock-cheap metrics registry for the query engine.
//
// Production batch execution needs to answer "what did the pool, the
// cache, and the solvers actually do" without perturbing the hot path.
// The registry therefore separates the write side from the read side:
//
//   * Metrics are registered up front (by name, returning a typed
//     handle). Registration takes a mutex and is meant for construction
//     time, not the hot path.
//   * Counter/histogram updates go to a per-shard slot — callers pass
//     their worker id as the shard — so concurrent workers touch
//     distinct cache lines and never contend. Updates are relaxed
//     atomics: wait-free, no fences on the query path.
//   * Reads merge the shards into a MetricsSnapshot. Totals are exact
//     once the writers have quiesced (e.g. after ParallelFor's barrier),
//     which is the only time the engine reads them.
//
// Histograms use fixed bucket upper bounds chosen at registration.
// Percentile extraction is exact in rank (the rank is located in the
// merged bucket counts, never sampled) and bucket-resolution in value:
// the reported value interpolates linearly inside the located bucket and
// is clamped to the exact observed [min, max], so single-sample and
// boundary cases come out exact. See HistogramSnapshot::Percentile.

#ifndef FANNR_OBS_METRICS_H_
#define FANNR_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fannr::obs {

/// Typed handles into a MetricsRegistry. Cheap to copy; only valid for
/// the registry that issued them.
struct CounterId {
  size_t index = 0;
};
struct GaugeId {
  size_t index = 0;
};
struct HistogramId {
  size_t index = 0;
};

/// Merged view of one histogram: bucket counts plus exact count/sum and
/// observed extrema.
struct HistogramSnapshot {
  /// Inclusive upper bounds per bucket, ascending; an implicit overflow
  /// bucket (counts.back()) catches values above bounds.back().
  std::vector<double> bounds;
  /// bounds.size() + 1 entries (last = overflow bucket).
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when count == 0
  double max = 0.0;

  double Mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }

  /// Value at percentile `p` in [0, 100]. Exact-rank selection over the
  /// merged bucket counts with linear interpolation inside the bucket,
  /// clamped to the observed [min, max]. Returns 0 when empty.
  double Percentile(double p) const;

  /// Adds one observation to this (single-threaded) snapshot. Used to
  /// build standalone histograms — e.g. the per-batch solve-latency
  /// histogram — outside a registry. `bounds`/`counts` must be
  /// initialized (counts.size() == bounds.size() + 1).
  void Accumulate(double value);
};

/// Point-in-time merged view of every metric in a registry.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Lookup by name; 0 / empty snapshot when absent.
  uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  const HistogramSnapshot* histogram(const std::string& name) const;
};

/// Default latency bucket bounds (milliseconds): a 1-2-5 geometric ladder
/// from 10 microseconds to 10 seconds, 19 buckets. Suits per-query solve
/// times from the TEST preset up to continental road networks.
std::vector<double> DefaultLatencyBucketsMs();

/// The registry. One instance per BatchQueryEngine (or any other
/// component that wants isolated metrics). Thread-safety contract:
/// Register* calls are serialized internally but must not race with
/// Add/Record/Snapshot; Add/Record are wait-free and may race freely
/// with each other; Snapshot totals are exact once writers quiesce.
class MetricsRegistry {
 public:
  /// `num_shards` is the number of independent writer lanes (use the
  /// worker count; minimum 1 enforced). Shard ids passed to Add/Record
  /// must be < num_shards().
  explicit MetricsRegistry(size_t num_shards = 1);

  size_t num_shards() const { return num_shards_; }

  CounterId RegisterCounter(std::string name);
  GaugeId RegisterGauge(std::string name);
  /// `bucket_bounds` must be ascending and non-empty.
  HistogramId RegisterHistogram(std::string name,
                                std::vector<double> bucket_bounds);

  /// Adds `delta` to the counter's shard slot. Wait-free.
  void Add(CounterId id, uint64_t delta, size_t shard = 0);

  /// Sets the gauge (gauges are last-writer-wins, unsharded).
  void Set(GaugeId id, double value);

  /// Records one observation into the histogram's shard slot. Wait-free
  /// except for the sum/min/max scalars, which use relaxed atomic
  /// read-modify-write per shard (uncontended: one writer per shard).
  void Record(HistogramId id, double value, size_t shard = 0);

  /// Merges all shards. Exact once writers have quiesced.
  MetricsSnapshot Snapshot() const;

 private:
  // One cache line per (metric, shard) slot so workers never false-share.
  struct alignas(64) CounterSlot {
    std::atomic<uint64_t> value{0};
  };
  struct alignas(64) HistogramShard {
    std::vector<std::atomic<uint64_t>> counts;  // bounds.size() + 1
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};
    std::atomic<double> max{0.0};
    std::atomic<bool> has_value{false};
  };
  struct CounterMetric {
    std::string name;
    std::vector<CounterSlot> shards;
  };
  struct GaugeMetric {
    std::string name;
    // Same one-line-per-writer rule as the sharded slots: gauges are
    // unsharded, so keep the atomic off the neighboring metric's line.
    alignas(64) std::atomic<double> value{0.0};
  };
  struct HistogramMetric {
    std::string name;
    std::vector<double> bounds;
    std::vector<HistogramShard> shards;
  };

  size_t num_shards_;
  mutable std::mutex register_mu_;
  // unique_ptr indirection keeps metric storage at a stable address;
  // handle access on the hot path is a plain index, no lock (the
  // contract forbids racing registration against Add/Record).
  std::vector<std::unique_ptr<CounterMetric>> counters_;
  std::vector<std::unique_ptr<GaugeMetric>> gauges_;
  std::vector<std::unique_ptr<HistogramMetric>> histograms_;
};

}  // namespace fannr::obs

#endif  // FANNR_OBS_METRICS_H_
