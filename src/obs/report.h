// Batch-level observability summary.
//
// One BatchReport is produced per BatchQueryEngine::Run when observation
// is enabled: wall-clock throughput, the per-query solve-latency
// histogram with exact-rank percentiles, shared-cache totals (both the
// cache's own counters and the sum of per-query attributed probes, which
// must agree — CI checks they do), pool activity, and the full metrics
// registry snapshot. Serializes to indented JSON for BENCH_throughput /
// CI, and to a short text block for tools.

#ifndef FANNR_OBS_REPORT_H_
#define FANNR_OBS_REPORT_H_

#include <cstddef>
#include <string>

#include "engine/distance_cache.h"
#include "obs/metrics.h"

namespace fannr::obs {

/// Summary of one executed batch.
struct BatchReport {
  /// Caller-supplied attribution for this Run (e.g. the server tags
  /// subscription re-evaluations "subscription-reeval"); empty for
  /// untagged batches.
  std::string tag;

  size_t batch_size = 0;
  size_t rejected = 0;  ///< Jobs that failed validation (status kRejected).
  size_t timed_out = 0;  ///< Jobs whose wall-clock deadline expired.
  size_t num_threads = 0;

  /// Graph epoch the batch was admitted under (see dynamic/update.h).
  /// Every executed query of the batch saw exactly this epoch's weights.
  GraphEpoch graph_epoch = 0;
  /// Jobs rejected because an UpdateBatch bumped the epoch after
  /// admission (these are counted inside `rejected` too).
  size_t rejected_mid_batch = 0;
  /// Queries answered by the index-free fallback because the configured
  /// g_phi kind's index was stale for graph_epoch.
  size_t stale_index_fallbacks = 0;

  double wall_ms = 0.0;  ///< Run() entry to return.
  double queries_per_second = 0.0;

  /// Per-query solve latencies (rejected jobs excluded).
  HistogramSnapshot solve_ms;

  /// Shared-distance-cache counters over this batch: the cache's own
  /// shard totals (delta across Run) and the per-query attributed sums
  /// from the traces. attributed_* == cache.hits/misses whenever the
  /// cached oracle is active; both are zero otherwise.
  SourceDistanceCache::Stats cache;
  size_t cache_entries = 0;  ///< Resident entries after the batch.
  size_t attributed_cache_hits = 0;
  size_t attributed_cache_misses = 0;

  /// Pool totals over this batch.
  size_t pool_indices_executed = 0;

  /// Full registry dump (engine-published metrics; see DESIGN.md §2.7
  /// for the metric name schema).
  MetricsSnapshot metrics;

  std::string ToText() const;

  /// Indented JSON object; `indent` spaces prefix every line (so the
  /// report can be embedded in a larger document).
  std::string ToJson(int indent = 0) const;
};

}  // namespace fannr::obs

#endif  // FANNR_OBS_REPORT_H_
