#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace fannr::obs {

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Exact rank of the requested percentile (nearest-rank definition,
  // 1-based): the smallest rank r with r/count >= p/100.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(p / 100.0 * static_cast<double>(count))));
  uint64_t cumulative = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    cumulative += counts[b];
    if (cumulative < rank) continue;
    // The ranked sample lies in bucket b: interpolate between the
    // bucket's bounds by the rank's position within the bucket, then
    // clamp to the exact observed extrema (which makes single-sample
    // and all-in-one-bucket histograms exact at the extremes).
    const double lower = b == 0 ? 0.0 : bounds[b - 1];
    const double upper = b < bounds.size() ? bounds[b] : max;
    const uint64_t in_bucket = counts[b];
    const uint64_t before = cumulative - in_bucket;
    const double fraction =
        in_bucket == 0
            ? 1.0
            : static_cast<double>(rank - before) /
                  static_cast<double>(in_bucket);
    const double value = lower + (upper - lower) * fraction;
    return std::clamp(value, min, max);
  }
  return max;
}

void HistogramSnapshot::Accumulate(double value) {
  FANNR_DCHECK(counts.size() == bounds.size() + 1);
  const size_t bucket =
      std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin();
  ++counts[bucket];
  sum += value;
  if (count == 0) {
    min = max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
}

uint64_t MetricsSnapshot::counter(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double MetricsSnapshot::gauge(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0.0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    const std::string& name) const {
  for (const auto& [n, v] : histograms) {
    if (n == name) return &v;
  }
  return nullptr;
}

std::vector<double> DefaultLatencyBucketsMs() {
  return {0.01, 0.02, 0.05, 0.1,  0.2,  0.5,    1.0,    2.0,     5.0, 10.0,
          20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0};
}

MetricsRegistry::MetricsRegistry(size_t num_shards)
    : num_shards_(std::max<size_t>(1, num_shards)) {}

CounterId MetricsRegistry::RegisterCounter(std::string name) {
  std::lock_guard<std::mutex> lock(register_mu_);
  auto metric = std::make_unique<CounterMetric>();
  metric->name = std::move(name);
  metric->shards = std::vector<CounterSlot>(num_shards_);
  counters_.push_back(std::move(metric));
  return CounterId{counters_.size() - 1};
}

GaugeId MetricsRegistry::RegisterGauge(std::string name) {
  std::lock_guard<std::mutex> lock(register_mu_);
  auto metric = std::make_unique<GaugeMetric>();
  metric->name = std::move(name);
  gauges_.push_back(std::move(metric));
  return GaugeId{gauges_.size() - 1};
}

HistogramId MetricsRegistry::RegisterHistogram(
    std::string name, std::vector<double> bucket_bounds) {
  FANNR_CHECK(!bucket_bounds.empty());
  FANNR_CHECK(std::is_sorted(bucket_bounds.begin(), bucket_bounds.end()));
  std::lock_guard<std::mutex> lock(register_mu_);
  auto metric = std::make_unique<HistogramMetric>();
  metric->name = std::move(name);
  metric->bounds = std::move(bucket_bounds);
  metric->shards = std::vector<HistogramShard>(num_shards_);
  for (HistogramShard& shard : metric->shards) {
    shard.counts = std::vector<std::atomic<uint64_t>>(
        metric->bounds.size() + 1);
  }
  histograms_.push_back(std::move(metric));
  return HistogramId{histograms_.size() - 1};
}

void MetricsRegistry::Add(CounterId id, uint64_t delta, size_t shard) {
  FANNR_DCHECK(id.index < counters_.size() && shard < num_shards_);
  counters_[id.index]->shards[shard].value.fetch_add(
      delta, std::memory_order_relaxed);
}

void MetricsRegistry::Set(GaugeId id, double value) {
  FANNR_DCHECK(id.index < gauges_.size());
  gauges_[id.index]->value.store(value, std::memory_order_relaxed);
}

void MetricsRegistry::Record(HistogramId id, double value, size_t shard) {
  FANNR_DCHECK(id.index < histograms_.size() && shard < num_shards_);
  HistogramMetric& metric = *histograms_[id.index];
  HistogramShard& s = metric.shards[shard];
  // Bucket index: first bound >= value, else the overflow bucket.
  const size_t bucket =
      std::lower_bound(metric.bounds.begin(), metric.bounds.end(), value) -
      metric.bounds.begin();
  s.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  // One writer per shard by convention, so plain RMW via load+store is
  // race-free within the shard; atomics keep cross-shard reads defined.
  s.sum.store(s.sum.load(std::memory_order_relaxed) + value,
              std::memory_order_relaxed);
  if (!s.has_value.load(std::memory_order_relaxed)) {
    s.min.store(value, std::memory_order_relaxed);
    s.max.store(value, std::memory_order_relaxed);
    s.has_value.store(true, std::memory_order_relaxed);
  } else {
    if (value < s.min.load(std::memory_order_relaxed)) {
      s.min.store(value, std::memory_order_relaxed);
    }
    if (value > s.max.load(std::memory_order_relaxed)) {
      s.max.store(value, std::memory_order_relaxed);
    }
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(register_mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& metric : counters_) {
    uint64_t total = 0;
    for (const CounterSlot& slot : metric->shards) {
      total += slot.value.load(std::memory_order_relaxed);
    }
    snapshot.counters.emplace_back(metric->name, total);
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& metric : gauges_) {
    snapshot.gauges.emplace_back(
        metric->name, metric->value.load(std::memory_order_relaxed));
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& metric : histograms_) {
    HistogramSnapshot h;
    h.bounds = metric->bounds;
    h.counts.assign(metric->bounds.size() + 1, 0);
    bool any = false;
    for (const HistogramShard& shard : metric->shards) {
      for (size_t b = 0; b < h.counts.size(); ++b) {
        h.counts[b] += shard.counts[b].load(std::memory_order_relaxed);
      }
      h.count += shard.count.load(std::memory_order_relaxed);
      h.sum += shard.sum.load(std::memory_order_relaxed);
      if (shard.has_value.load(std::memory_order_relaxed)) {
        const double shard_min = shard.min.load(std::memory_order_relaxed);
        const double shard_max = shard.max.load(std::memory_order_relaxed);
        if (!any) {
          h.min = shard_min;
          h.max = shard_max;
          any = true;
        } else {
          h.min = std::min(h.min, shard_min);
          h.max = std::max(h.max, shard_max);
        }
      }
    }
    snapshot.histograms.emplace_back(metric->name, std::move(h));
  }
  return snapshot;
}

}  // namespace fannr::obs
