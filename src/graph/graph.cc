#include "graph/graph.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/serialize.h"

namespace fannr {

namespace internal_graph {

uint64_t ArcChecksum(VertexId from, VertexId to, Weight weight) {
  // splitmix64-style finalizer over the packed endpoints and the weight's
  // bit pattern. The per-arc hashes are summed with wrapping addition, so
  // the total is order-independent and a single weight change adjusts it
  // by (new hash - old hash).
  auto mix = [](uint64_t x) {
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
  };
  const uint64_t endpoints =
      (static_cast<uint64_t>(from) << 32) | static_cast<uint64_t>(to);
  return mix(mix(endpoints) ^ std::bit_cast<uint64_t>(weight));
}

}  // namespace internal_graph

Graph::Graph(std::vector<std::vector<Arc>> adjacency,
             std::vector<Point> coords)
    : coords_(std::move(coords)) {
  FANNR_CHECK(coords_.empty() || coords_.size() == adjacency.size());
  offsets_.resize(adjacency.size() + 1, 0);
  size_t total = 0;
  for (size_t u = 0; u < adjacency.size(); ++u) {
    offsets_[u] = total;
    total += adjacency[u].size();
  }
  offsets_[adjacency.size()] = total;
  arcs_.reserve(total);
  for (auto& list : adjacency) {
    for (const Arc& a : list) {
      FANNR_CHECK(a.to < adjacency.size());
      FANNR_CHECK(a.weight > 0.0);
      arcs_.push_back(a);
    }
    list.clear();
    list.shrink_to_fit();
  }
  RecomputeWeightChecksum();
}

Graph::Graph(Graph&& other) noexcept
    : offsets_(std::move(other.offsets_)),
      arcs_(std::move(other.arcs_)),
      coords_(std::move(other.coords_)),
      weight_checksum_(other.weight_checksum_),
      epoch_(other.epoch_.load(std::memory_order_relaxed)) {}

Graph& Graph::operator=(Graph&& other) noexcept {
  if (this != &other) {
    offsets_ = std::move(other.offsets_);
    arcs_ = std::move(other.arcs_);
    coords_ = std::move(other.coords_);
    weight_checksum_ = other.weight_checksum_;
    epoch_.store(other.epoch_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  }
  return *this;
}

void Graph::RecomputeWeightChecksum() {
  uint64_t sum = 0;
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (const Arc& a : Neighbors(u)) {
      sum += internal_graph::ArcChecksum(u, a.to, a.weight);
    }
  }
  weight_checksum_ = sum;
}

std::optional<Weight> Graph::EdgeWeight(VertexId u, VertexId v) const {
  if (u >= NumVertices() || v >= NumVertices()) return std::nullopt;
  for (const Arc& a : Neighbors(u)) {
    if (a.to == v) return a.weight;
  }
  return std::nullopt;
}

Graph::ApplyStats Graph::ApplyWeightUpdates(
    std::span<const EdgeWeightUpdate> updates) {
  ApplyStats stats;
  for (const EdgeWeightUpdate& update : updates) {
    FANNR_CHECK(update.u < NumVertices() && update.v < NumVertices() &&
                update.u != update.v);
    FANNR_CHECK(update.new_weight > 0.0 && std::isfinite(update.new_weight));
    // Update both arc directions; the builder deduplicated parallel
    // edges, so each direction has at most one arc.
    auto find_arc = [&](VertexId from, VertexId to) -> Arc* {
      for (size_t i = offsets_[from]; i < offsets_[from + 1]; ++i) {
        if (arcs_[i].to == to) return &arcs_[i];
      }
      return nullptr;
    };
    Arc* forward = find_arc(update.u, update.v);
    if (forward == nullptr) {
      ++stats.missing;
      continue;
    }
    Arc* backward = find_arc(update.v, update.u);
    FANNR_CHECK(backward != nullptr &&
                "undirected invariant violated: arc without its reverse");
    weight_checksum_ -=
        internal_graph::ArcChecksum(update.u, update.v, forward->weight);
    weight_checksum_ -=
        internal_graph::ArcChecksum(update.v, update.u, backward->weight);
    forward->weight = update.new_weight;
    backward->weight = update.new_weight;
    weight_checksum_ +=
        internal_graph::ArcChecksum(update.u, update.v, forward->weight);
    weight_checksum_ +=
        internal_graph::ArcChecksum(update.v, update.u, backward->weight);
    ++stats.applied;
  }
  if (stats.applied > 0) {
    epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  return stats;
}

bool Graph::EuclideanConsistent() const {
  if (!HasCoordinates()) return false;
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (const Arc& a : Neighbors(u)) {
      if (EuclideanDistance(u, a.to) > a.weight * (1.0 + 1e-12)) return false;
    }
  }
  return true;
}

void Graph::MakeEuclideanConsistent() {
  FANNR_CHECK(HasCoordinates());
  double max_ratio = 0.0;
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (const Arc& a : Neighbors(u)) {
      const double euclid = EuclideanDistance(u, a.to);
      if (euclid > 0.0) max_ratio = std::max(max_ratio, euclid / a.weight);
    }
  }
  if (max_ratio <= 1.0) return;
  const double scale = 1.0 / (max_ratio * (1.0 + 1e-9));
  for (Point& p : coords_) {
    p.x *= scale;
    p.y *= scale;
  }
}

namespace {
constexpr uint64_t kGraphMagic = 0xFA22A81A62A9E004ULL;
// Format history: v1 had no version field (magic straight into the offset
// vector); v2 adds this version word. Old files are rejected, not misread
// — their first vector-size word never equals a small version number.
constexpr uint32_t kGraphFormatVersion = 2;
}  // namespace

bool Graph::Save(std::ostream& out) const {
  BinaryWriter w(out);
  w.Pod(kGraphMagic);
  w.Pod(kGraphFormatVersion);
  w.Vec(offsets_);
  w.Vec(arcs_);
  w.Vec(coords_);
  return w.ok();
}

std::optional<Graph> Graph::Load(std::istream& in) {
  BinaryReader r(in);
  uint64_t magic = 0;
  uint32_t version = 0;
  if (!r.Pod(magic) || magic != kGraphMagic) return std::nullopt;
  if (!r.Pod(version) || version != kGraphFormatVersion) return std::nullopt;
  Graph graph;
  if (!r.Vec(graph.offsets_) || !r.Vec(graph.arcs_) ||
      !r.Vec(graph.coords_)) {
    return std::nullopt;
  }
  // Structural sanity: offsets must be a monotone prefix array ending at
  // the arc count, coordinates empty or per-vertex, targets in range.
  if (graph.offsets_.empty() ||
      graph.offsets_.back() != graph.arcs_.size()) {
    return std::nullopt;
  }
  const size_t n = graph.offsets_.size() - 1;
  for (size_t i = 0; i < n; ++i) {
    if (graph.offsets_[i] > graph.offsets_[i + 1]) return std::nullopt;
  }
  if (!graph.coords_.empty() && graph.coords_.size() != n) {
    return std::nullopt;
  }
  for (const Arc& a : graph.arcs_) {
    if (a.to >= n || !(a.weight > 0.0)) return std::nullopt;
  }
  graph.RecomputeWeightChecksum();
  return graph;
}

size_t Graph::MemoryBytes() const {
  return offsets_.capacity() * sizeof(size_t) +
         arcs_.capacity() * sizeof(Arc) + coords_.capacity() * sizeof(Point);
}

}  // namespace fannr
