#include "graph/graph.h"

#include <algorithm>

#include "common/serialize.h"

namespace fannr {

Graph::Graph(std::vector<std::vector<Arc>> adjacency,
             std::vector<Point> coords)
    : coords_(std::move(coords)) {
  FANNR_CHECK(coords_.empty() || coords_.size() == adjacency.size());
  offsets_.resize(adjacency.size() + 1, 0);
  size_t total = 0;
  for (size_t u = 0; u < adjacency.size(); ++u) {
    offsets_[u] = total;
    total += adjacency[u].size();
  }
  offsets_[adjacency.size()] = total;
  arcs_.reserve(total);
  for (auto& list : adjacency) {
    for (const Arc& a : list) {
      FANNR_CHECK(a.to < adjacency.size());
      FANNR_CHECK(a.weight > 0.0);
      arcs_.push_back(a);
    }
    list.clear();
    list.shrink_to_fit();
  }
}

bool Graph::EuclideanConsistent() const {
  if (!HasCoordinates()) return false;
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (const Arc& a : Neighbors(u)) {
      if (EuclideanDistance(u, a.to) > a.weight * (1.0 + 1e-12)) return false;
    }
  }
  return true;
}

void Graph::MakeEuclideanConsistent() {
  FANNR_CHECK(HasCoordinates());
  double max_ratio = 0.0;
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (const Arc& a : Neighbors(u)) {
      const double euclid = EuclideanDistance(u, a.to);
      if (euclid > 0.0) max_ratio = std::max(max_ratio, euclid / a.weight);
    }
  }
  if (max_ratio <= 1.0) return;
  const double scale = 1.0 / (max_ratio * (1.0 + 1e-9));
  for (Point& p : coords_) {
    p.x *= scale;
    p.y *= scale;
  }
}

namespace {
constexpr uint64_t kGraphMagic = 0xFA22A81A62A9E004ULL;
}  // namespace

bool Graph::Save(std::ostream& out) const {
  BinaryWriter w(out);
  w.Pod(kGraphMagic);
  w.Vec(offsets_);
  w.Vec(arcs_);
  w.Vec(coords_);
  return w.ok();
}

std::optional<Graph> Graph::Load(std::istream& in) {
  BinaryReader r(in);
  uint64_t magic = 0;
  if (!r.Pod(magic) || magic != kGraphMagic) return std::nullopt;
  Graph graph;
  if (!r.Vec(graph.offsets_) || !r.Vec(graph.arcs_) ||
      !r.Vec(graph.coords_)) {
    return std::nullopt;
  }
  // Structural sanity: offsets must be a monotone prefix array ending at
  // the arc count, coordinates empty or per-vertex, targets in range.
  if (graph.offsets_.empty() ||
      graph.offsets_.back() != graph.arcs_.size()) {
    return std::nullopt;
  }
  const size_t n = graph.offsets_.size() - 1;
  for (size_t i = 0; i < n; ++i) {
    if (graph.offsets_[i] > graph.offsets_[i + 1]) return std::nullopt;
  }
  if (!graph.coords_.empty() && graph.coords_.size() != n) {
    return std::nullopt;
  }
  for (const Arc& a : graph.arcs_) {
    if (a.to >= n || !(a.weight > 0.0)) return std::nullopt;
  }
  return graph;
}

size_t Graph::MemoryBytes() const {
  return offsets_.capacity() * sizeof(size_t) +
         arcs_.capacity() * sizeof(Arc) + coords_.capacity() * sizeof(Point);
}

}  // namespace fannr
