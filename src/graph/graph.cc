#include "graph/graph.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "common/serialize.h"

namespace fannr {

namespace internal_graph {

uint64_t ArcChecksum(VertexId from, VertexId to, Weight weight) {
  // splitmix64-style finalizer over the packed endpoints and the weight's
  // bit pattern. The per-arc hashes are summed with wrapping addition, so
  // the total is order-independent and a single weight change adjusts it
  // by (new hash - old hash).
  auto mix = [](uint64_t x) {
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
  };
  const uint64_t endpoints =
      (static_cast<uint64_t>(from) << 32) | static_cast<uint64_t>(to);
  return mix(mix(endpoints) ^ std::bit_cast<uint64_t>(weight));
}

}  // namespace internal_graph

Graph::Graph(std::vector<std::vector<Arc>> adjacency,
             std::vector<Point> coords)
    : coords_(std::move(coords)) {
  FANNR_CHECK(coords_.empty() || coords_.size() == adjacency.size());
  offsets_.vec().resize(adjacency.size() + 1, 0);
  size_t total = 0;
  for (size_t u = 0; u < adjacency.size(); ++u) {
    offsets_[u] = total;
    total += adjacency[u].size();
  }
  offsets_[adjacency.size()] = total;
  arcs_.vec().reserve(total);
  for (auto& list : adjacency) {
    for (const Arc& a : list) {
      FANNR_CHECK(a.to < adjacency.size());
      FANNR_CHECK(a.weight > 0.0);
      arcs_.vec().push_back(a);
    }
    list.clear();
    list.shrink_to_fit();
  }
  RecomputeWeightChecksum();
}

Graph::Graph(Graph&& other) noexcept
    : offsets_(std::move(other.offsets_)),
      arcs_(std::move(other.arcs_)),
      coords_(std::move(other.coords_)),
      weight_checksum_(other.weight_checksum_),
      epoch_(other.epoch_.load(std::memory_order_relaxed)),
      arena_(std::move(other.arena_)) {}

Graph& Graph::operator=(Graph&& other) noexcept {
  if (this != &other) {
    offsets_ = std::move(other.offsets_);
    arcs_ = std::move(other.arcs_);
    coords_ = std::move(other.coords_);
    weight_checksum_ = other.weight_checksum_;
    epoch_.store(other.epoch_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    arena_ = std::move(other.arena_);
  }
  return *this;
}

void Graph::RecomputeWeightChecksum() {
  uint64_t sum = 0;
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (const Arc& a : Neighbors(u)) {
      sum += internal_graph::ArcChecksum(u, a.to, a.weight);
    }
  }
  weight_checksum_ = sum;
}

std::optional<Weight> Graph::EdgeWeight(VertexId u, VertexId v) const {
  if (u >= NumVertices() || v >= NumVertices()) return std::nullopt;
  for (const Arc& a : Neighbors(u)) {
    if (a.to == v) return a.weight;
  }
  return std::nullopt;
}

Graph::ApplyStats Graph::ApplyWeightUpdates(
    std::span<const EdgeWeightUpdate> updates) {
  ApplyStats stats;
  for (const EdgeWeightUpdate& update : updates) {
    FANNR_CHECK(update.u < NumVertices() && update.v < NumVertices() &&
                update.u != update.v);
    FANNR_CHECK(update.new_weight > 0.0 && std::isfinite(update.new_weight));
    // Update both arc directions; the builder deduplicated parallel
    // edges, so each direction has at most one arc.
    auto find_arc = [&](VertexId from, VertexId to) -> Arc* {
      for (size_t i = offsets_[from]; i < offsets_[from + 1]; ++i) {
        if (arcs_[i].to == to) return &arcs_[i];
      }
      return nullptr;
    };
    Arc* forward = find_arc(update.u, update.v);
    if (forward == nullptr) {
      ++stats.missing;
      continue;
    }
    Arc* backward = find_arc(update.v, update.u);
    FANNR_CHECK(backward != nullptr &&
                "undirected invariant violated: arc without its reverse");
    weight_checksum_ -=
        internal_graph::ArcChecksum(update.u, update.v, forward->weight);
    weight_checksum_ -=
        internal_graph::ArcChecksum(update.v, update.u, backward->weight);
    forward->weight = update.new_weight;
    backward->weight = update.new_weight;
    weight_checksum_ +=
        internal_graph::ArcChecksum(update.u, update.v, forward->weight);
    weight_checksum_ +=
        internal_graph::ArcChecksum(update.v, update.u, backward->weight);
    ++stats.applied;
  }
  if (stats.applied > 0) {
    epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  return stats;
}

bool Graph::EuclideanConsistent() const {
  if (!HasCoordinates()) return false;
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (const Arc& a : Neighbors(u)) {
      if (EuclideanDistance(u, a.to) > a.weight * (1.0 + 1e-12)) return false;
    }
  }
  return true;
}

void Graph::MakeEuclideanConsistent() {
  FANNR_CHECK(HasCoordinates());
  double max_ratio = 0.0;
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (const Arc& a : Neighbors(u)) {
      const double euclid = EuclideanDistance(u, a.to);
      if (euclid > 0.0) max_ratio = std::max(max_ratio, euclid / a.weight);
    }
  }
  if (max_ratio <= 1.0) return;
  const double scale = 1.0 / (max_ratio * (1.0 + 1e-9));
  for (size_t i = 0; i < coords_.size(); ++i) {
    coords_[i].x *= scale;
    coords_[i].y *= scale;
  }
}

namespace {
constexpr uint64_t kGraphMagic = 0xFA22A81A62A9E004ULL;
// Format history: v1 had no version field (magic straight into the offset
// vector); v2 adds this version word. Old files are rejected, not misread
// — their first vector-size word never equals a small version number.
constexpr uint32_t kGraphFormatVersion = 2;
}  // namespace

bool Graph::Save(std::ostream& out) const {
  BinaryWriter w(out);
  w.Pod(kGraphMagic);
  w.Pod(kGraphFormatVersion);
  w.Span(offsets_.data(), offsets_.size());
  w.Span(arcs_.data(), arcs_.size());
  w.Span(coords_.data(), coords_.size());
  return w.ok();
}

namespace {

/// Shared structural validation for both load paths: offsets must be a
/// monotone prefix array ending at the arc count, coordinates empty or
/// per-vertex, targets in range with positive weights.
bool ValidGraphStructure(const Column<size_t>& offsets,
                         const Column<Arc>& arcs,
                         const Column<Point>& coords) {
  if (offsets.empty() || offsets.back() != arcs.size()) return false;
  const size_t n = offsets.size() - 1;
  for (size_t i = 0; i < n; ++i) {
    if (offsets[i] > offsets[i + 1]) return false;
  }
  if (!coords.empty() && coords.size() != n) return false;
  for (const Arc& a : arcs) {
    if (a.to >= n || !(a.weight > 0.0)) return false;
  }
  return true;
}

}  // namespace

std::optional<Graph> Graph::Load(std::istream& in) {
  BinaryReader r(in);
  uint64_t magic = 0;
  uint32_t version = 0;
  if (!r.Pod(magic) || magic != kGraphMagic) return std::nullopt;
  if (!r.Pod(version) || version != kGraphFormatVersion) return std::nullopt;
  Graph graph;
  if (!r.Vec(graph.offsets_.vec()) || !r.Vec(graph.arcs_.vec()) ||
      !r.Vec(graph.coords_.vec())) {
    return std::nullopt;
  }
  if (!ValidGraphStructure(graph.offsets_, graph.arcs_, graph.coords_)) {
    return std::nullopt;
  }
  graph.RecomputeWeightChecksum();
  return graph;
}

bool Graph::SaveV3(const std::string& path) const {
  ArenaWriter writer;
  // Arc has 4 padding bytes after `to`; a field-wise copy into zeroed
  // storage makes the section bytes (and so the file and its checksum)
  // deterministic.
  std::vector<Arc> clean_arcs(arcs_.size());
  std::memset(clean_arcs.data(), 0, clean_arcs.size() * sizeof(Arc));
  for (size_t i = 0; i < arcs_.size(); ++i) {
    clean_arcs[i].to = arcs_[i].to;
    clean_arcs[i].weight = arcs_[i].weight;
  }
  writer.Add(offsets_);
  writer.Add(clean_arcs);
  writer.Add(coords_);
  return writer.Write(path, kGraphMagic, Fingerprint());
}

std::optional<Graph> Graph::LoadMmap(const std::string& path,
                                     ArenaValidation validation) {
  std::optional<ArenaFile> arena =
      ArenaFile::Open(path, kGraphMagic, validation);
  if (!arena.has_value() || arena->NumSections() != 3) return std::nullopt;

  size_t num_offsets = 0, num_arcs = 0, num_coords = 0;
  size_t* offsets = arena->SectionArray<size_t>(0, num_offsets);
  Arc* arcs = arena->SectionArray<Arc>(1, num_arcs);
  Point* coords = arena->SectionArray<Point>(2, num_coords);
  if (offsets == nullptr || arcs == nullptr || coords == nullptr) {
    return std::nullopt;
  }

  Graph graph;
  graph.offsets_ = Column<size_t>::Borrow(offsets, num_offsets);
  graph.arcs_ = Column<Arc>::Borrow(arcs, num_arcs);
  graph.coords_ = Column<Point>::Borrow(coords, num_coords);
  // The structural scan keeps queries on a corrupt payload memory-safe
  // without copying anything; it is the only O(V + E) work on this path.
  if (!ValidGraphStructure(graph.offsets_, graph.arcs_, graph.coords_)) {
    return std::nullopt;
  }
  const GraphFingerprint stored = arena->fingerprint();
  if (stored.vertices != graph.offsets_.size() - 1 ||
      stored.edges != num_arcs / 2) {
    return std::nullopt;
  }
  // Trust the stored weight checksum instead of recomputing it per-arc:
  // under kFull the arena checksum certifies the header and every
  // payload byte, and a SaveV3 writer always stores the true value.
  graph.weight_checksum_ = stored.weight_checksum;
  graph.arena_ = std::make_shared<ArenaFile>(std::move(*arena));
  return graph;
}

size_t Graph::MemoryBytes() const {
  return offsets_.memory_bytes() + arcs_.memory_bytes() +
         coords_.memory_bytes();
}

}  // namespace fannr
