#include "graph/presets.h"

#include <cmath>

#include "common/rng.h"
#include "graph/generator.h"

namespace fannr {

namespace {

struct PresetSpec {
  const char* name;
  const char* description;
  size_t target_vertices;
  uint64_t seed;
};

constexpr PresetSpec kPresets[] = {
    {"TEST", "tiny synthetic for unit tests", 2'500, 0xFA117E5701ULL},
    {"DE", "Delaware-scale synthetic (48,812 nodes in the paper)", 48'812,
     0xFA117E5702ULL},
    {"ME", "Maine-scale synthetic (187,315 nodes in the paper)", 187'315,
     0xFA117E5703ULL},
    {"COL", "Colorado-scale synthetic (435,666 nodes in the paper)", 435'666,
     0xFA117E5704ULL},
    {"NW", "Northwest-USA-scale synthetic (1,089,933 nodes in the paper)",
     1'089'933, 0xFA117E5705ULL},
};

}  // namespace

std::vector<DatasetPreset> AllPresets() {
  std::vector<DatasetPreset> result;
  for (const PresetSpec& s : kPresets) {
    result.push_back({s.name, s.description, s.target_vertices});
  }
  return result;
}

bool IsPresetName(const std::string& name) {
  for (const PresetSpec& s : kPresets) {
    if (name == s.name) return true;
  }
  return false;
}

Graph BuildPreset(const std::string& name) {
  for (const PresetSpec& s : kPresets) {
    if (name != s.name) continue;
    // Square-ish lattice sized so the largest component lands near the
    // target (the lattice keeps ~99.9% of vertices at keep_probability
    // 0.9, so rows*cols ~ target works well).
    const size_t side =
        static_cast<size_t>(std::llround(std::sqrt(
            static_cast<double>(s.target_vertices))));
    GridNetworkOptions options;
    options.rows = side;
    options.cols = (s.target_vertices + side - 1) / side;
    Rng rng(s.seed);
    return GenerateGridNetwork(options, rng);
  }
  FANNR_CHECK(false && "unknown preset name");
}

}  // namespace fannr
