// Synthetic road-network generators.
//
// The paper evaluates on DIMACS USA road graphs, which are not available
// offline; these generators produce planar-ish graphs with matching degree
// statistics (average degree ~2.4-2.7 undirected edges per vertex) so the
// relative behaviour of the algorithms is preserved (see DESIGN.md §2.1 and
// §4 for the substitution rationale). All generated graphs are connected,
// carry coordinates, and are Euclidean-consistent (edge weight >= Euclidean
// length), so every engine — including A* and the IER bounds — is exact on
// them.

#ifndef FANNR_GRAPH_GENERATOR_H_
#define FANNR_GRAPH_GENERATOR_H_

#include "common/rng.h"
#include "graph/graph.h"

namespace fannr {

/// Parameters for the perturbed-grid road-network model: vertices sit on a
/// jittered rows x cols lattice; lattice edges survive with probability
/// `keep_probability`; occasional diagonal shortcuts model highways.
struct GridNetworkOptions {
  size_t rows = 100;
  size_t cols = 100;
  /// Spacing between lattice points (map units).
  double cell_size = 1000.0;
  /// Positional jitter as a fraction of cell_size, in [0, 0.5).
  double jitter = 0.3;
  /// Probability that each lattice edge is kept.
  double keep_probability = 0.90;
  /// Probability that a diagonal shortcut is added at a lattice cell.
  double diagonal_probability = 0.05;
  /// Edge weight = Euclidean length * uniform(1, 1 + detour). Must be >= 0
  /// so that weights dominate Euclidean distance.
  double detour = 0.35;
};

/// Generates a connected perturbed-grid road network (largest component of
/// the random lattice). The result has coordinates and is
/// Euclidean-consistent.
Graph GenerateGridNetwork(const GridNetworkOptions& options, Rng& rng);

/// Parameters for the random geometric graph model: n vertices uniform in
/// a square, edges between pairs closer than `radius`.
struct GeometricNetworkOptions {
  size_t num_vertices = 10000;
  /// Side length of the square (map units).
  double extent = 100000.0;
  /// Connection radius (map units). Pick ~ extent * sqrt(c / n) with
  /// c ~ 2-3 for a sparse connected-ish graph.
  double radius = 2000.0;
  /// Edge weight = Euclidean length * uniform(1, 1 + detour).
  double detour = 0.2;
};

/// Generates a connected random geometric graph (largest component).
Graph GenerateGeometricNetwork(const GeometricNetworkOptions& options,
                               Rng& rng);

}  // namespace fannr

#endif  // FANNR_GRAPH_GENERATOR_H_
