#include "graph/builder.h"

#include <algorithm>
#include <utility>

namespace fannr {

GraphBuilder GraphBuilder::FromGraph(const Graph& graph) {
  GraphBuilder builder;
  if (graph.HasCoordinates()) {
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      builder.AddVertex(graph.Coord(v));
    }
  } else {
    builder.Resize(graph.NumVertices());
  }
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (const Arc& a : graph.Neighbors(u)) {
      if (u < a.to) builder.AddEdge(u, a.to, a.weight);
    }
  }
  return builder;
}

void GraphBuilder::Resize(size_t n) {
  // Ids are VertexId (uint32_t) with kInvalidVertex reserved as a
  // sentinel: a count past that would make AddVertex/AddEdge silently
  // wrap instead of failing, so it is a hard error here.
  FANNR_CHECK(n <= static_cast<size_t>(kInvalidVertex));
  if (n > num_vertices_) {
    if (!coords_.empty()) has_uncoordinated_vertex_ = true;
    num_vertices_ = n;
  }
}

VertexId GraphBuilder::AddVertex(Point coord) {
  FANNR_CHECK(num_vertices_ < static_cast<size_t>(kInvalidVertex));
  if (num_vertices_ != coords_.size()) {
    // Some earlier vertex had no coordinate; coordinates will be dropped.
    has_uncoordinated_vertex_ = true;
  } else {
    coords_.push_back(coord);
  }
  return static_cast<VertexId>(num_vertices_++);
}

VertexId GraphBuilder::AddVertex() {
  FANNR_CHECK(num_vertices_ < static_cast<size_t>(kInvalidVertex));
  if (!coords_.empty()) has_uncoordinated_vertex_ = true;
  return static_cast<VertexId>(num_vertices_++);
}

void GraphBuilder::AddEdge(VertexId u, VertexId v, Weight weight) {
  FANNR_CHECK(u < num_vertices_ && v < num_vertices_);
  FANNR_CHECK(weight > 0.0);
  edges_.push_back({u, v, weight});
}

Graph GraphBuilder::Build() {
  // Normalize edges so u <= v, sort, and deduplicate keeping the minimum
  // weight among parallel edges; drop self-loops.
  for (Edge& e : edges_) {
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    if (a.u != b.u) return a.u < b.u;
    if (a.v != b.v) return a.v < b.v;
    return a.weight < b.weight;
  });

  std::vector<std::vector<Arc>> adjacency(num_vertices_);
  const Edge* prev = nullptr;
  for (const Edge& e : edges_) {
    if (e.u == e.v) continue;  // self-loop
    if (prev != nullptr && prev->u == e.u && prev->v == e.v) continue;
    adjacency[e.u].push_back({e.v, e.weight});
    adjacency[e.v].push_back({e.u, e.weight});
    prev = &e;
  }

  std::vector<Point> coords;
  if (!has_uncoordinated_vertex_ && coords_.size() == num_vertices_) {
    coords = std::move(coords_);
  }

  edges_.clear();
  coords_.clear();
  num_vertices_ = 0;
  has_uncoordinated_vertex_ = false;
  return Graph(std::move(adjacency), std::move(coords));
}

}  // namespace fannr
