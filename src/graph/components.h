// Connected-component analysis and cleanup.
//
// The paper notes the raw DIMACS data contains disconnected components and
// self-loops that must be removed at preprocessing time; ExtractLargestComponent
// performs that cleanup (self-loops/parallel edges are already handled by
// GraphBuilder).

#ifndef FANNR_GRAPH_COMPONENTS_H_
#define FANNR_GRAPH_COMPONENTS_H_

#include <vector>

#include "graph/graph.h"

namespace fannr {

/// Labels each vertex with a component id in [0, num_components).
struct ComponentLabeling {
  std::vector<uint32_t> label;  // size NumVertices()
  size_t num_components = 0;
};

/// Computes connected components by BFS.
ComponentLabeling ConnectedComponents(const Graph& graph);

/// Result of ExtractLargestComponent: the subgraph plus the mapping from
/// new vertex ids to original ids.
struct LargestComponent {
  Graph graph;
  std::vector<VertexId> new_to_old;  // size graph.NumVertices()
};

/// Returns the subgraph induced by the largest connected component, with
/// vertices renumbered densely (coordinates carried over when present).
LargestComponent ExtractLargestComponent(const Graph& graph);

/// True if the whole graph is a single connected component (or empty).
bool IsConnected(const Graph& graph);

}  // namespace fannr

#endif  // FANNR_GRAPH_COMPONENTS_H_
