// Immutable road-network graph in compressed sparse row (CSR) form.
//
// A road network is an undirected weighted graph G = (V, E, W) with
// strictly positive edge weights (paper Section II-A). Vertices optionally
// carry planar coordinates; when present and Euclidean-consistent
// (EuclideanDistance(coord(u), coord(v)) <= w(u, v) for every edge), the
// Euclidean distance between any two vertices lower-bounds their network
// distance, which the A* engine and the IER pruning rules rely on.

#ifndef FANNR_GRAPH_GRAPH_H_
#define FANNR_GRAPH_GRAPH_H_

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "common/check.h"
#include "geo/point.h"

namespace fannr {

/// Vertex identifier; dense in [0, NumVertices()).
using VertexId = uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// Edge weight / path distance.
using Weight = double;

/// Sentinel for "unreachable".
inline constexpr Weight kInfWeight = std::numeric_limits<Weight>::infinity();

/// A half-edge in an adjacency list.
struct Arc {
  VertexId to = kInvalidVertex;
  Weight weight = 0.0;
};

/// Immutable undirected weighted graph with optional vertex coordinates.
/// Construct via GraphBuilder (graph/builder.h), a loader (graph/io.h), or
/// a generator (graph/generator.h). Every accessor is const with no
/// internal scratch, so one Graph may be read concurrently from any
/// number of threads (the batch engine relies on this).
class Graph {
 public:
  /// Builds the CSR representation from per-vertex adjacency lists.
  /// `adjacency[u]` must contain an arc to v iff `adjacency[v]` contains an
  /// arc of equal weight back to u (the graph is undirected). `coords` is
  /// either empty or has one entry per vertex.
  Graph(std::vector<std::vector<Arc>> adjacency, std::vector<Point> coords);

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  /// Number of vertices |V|.
  size_t NumVertices() const { return offsets_.size() - 1; }

  /// Number of undirected edges |E| (each stored as two arcs).
  size_t NumEdges() const { return arcs_.size() / 2; }

  /// Outgoing arcs of `u`.
  std::span<const Arc> Neighbors(VertexId u) const {
    FANNR_DCHECK(u < NumVertices());
    return {arcs_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }

  /// Degree of `u`.
  size_t Degree(VertexId u) const {
    FANNR_DCHECK(u < NumVertices());
    return offsets_[u + 1] - offsets_[u];
  }

  /// True if vertices carry planar coordinates.
  bool HasCoordinates() const { return !coords_.empty(); }

  /// Coordinate of `u`. Requires HasCoordinates().
  const Point& Coord(VertexId u) const {
    FANNR_DCHECK(HasCoordinates() && u < NumVertices());
    return coords_[u];
  }

  /// All coordinates (empty if none).
  std::span<const Point> Coords() const { return coords_; }

  /// Euclidean distance between two vertices. Requires HasCoordinates().
  double EuclideanDistance(VertexId u, VertexId v) const {
    return fannr::EuclideanDistance(Coord(u), Coord(v));
  }

  /// True if every edge satisfies euclid(u, v) <= w(u, v) (so Euclidean
  /// distance is an admissible lower bound on network distance). Always
  /// true for graphs without coordinates is NOT assumed — returns false.
  bool EuclideanConsistent() const;

  /// Scales all coordinates by the largest factor <= 1 that makes the
  /// graph Euclidean-consistent (no-op if already consistent). Real map
  /// data with travel-time weights typically needs this. Requires
  /// HasCoordinates() and at least one edge.
  void MakeEuclideanConsistent();

  /// Approximate heap memory used by the CSR arrays, in bytes.
  size_t MemoryBytes() const;

  /// Serializes the CSR arrays (binary cache format; see
  /// common/serialize.h). Much faster to reload than regenerating or
  /// re-parsing DIMACS for large networks. Returns false on I/O failure.
  bool Save(std::ostream& out) const;

  /// Reloads a graph written by Save. Returns nullopt on corrupt input.
  static std::optional<Graph> Load(std::istream& in);

 private:
  Graph() = default;
  std::vector<size_t> offsets_;  // size NumVertices() + 1
  std::vector<Arc> arcs_;        // grouped by source vertex
  std::vector<Point> coords_;    // empty or size NumVertices()
};

}  // namespace fannr

#endif  // FANNR_GRAPH_GRAPH_H_
