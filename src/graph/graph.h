// Road-network graph in compressed sparse row (CSR) form.
//
// A road network is an undirected weighted graph G = (V, E, W) with
// strictly positive edge weights (paper Section II-A). Vertices optionally
// carry planar coordinates; when present and Euclidean-consistent
// (EuclideanDistance(coord(u), coord(v)) <= w(u, v) for every edge), the
// Euclidean distance between any two vertices lower-bounds their network
// distance, which the A* engine and the IER pruning rules rely on.
//
// The topology (vertices, edges) is immutable after construction, but
// edge WEIGHTS may be updated in place through ApplyWeightUpdates — the
// paper's motivating scenario for the index-free algorithms is road
// networks whose travel times change frequently (Section IV). Every
// weight change bumps a monotonically increasing epoch; caches and
// prebuilt indexes record the epoch they were computed at and treat a
// mismatch as staleness (see src/dynamic/ and DESIGN.md §2.8).

#ifndef FANNR_GRAPH_GRAPH_H_
#define FANNR_GRAPH_GRAPH_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/column.h"
#include "geo/point.h"
#include "graph/fingerprint.h"
#include "graph/index_io.h"

namespace fannr {

/// Vertex identifier; dense in [0, NumVertices()).
using VertexId = uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// Edge weight / path distance.
using Weight = double;

/// Sentinel for "unreachable".
inline constexpr Weight kInfWeight = std::numeric_limits<Weight>::infinity();

/// A half-edge in an adjacency list.
struct Arc {
  VertexId to = kInvalidVertex;
  Weight weight = 0.0;
};

/// Monotonically increasing per-Graph version. Epoch 0 is the freshly
/// constructed (or loaded) graph; every applied weight-update batch
/// increments it by one.
using GraphEpoch = uint64_t;

/// One edge-weight change: sets w(u, v) (both arc directions) to
/// `new_weight`. The edge must already exist — topology never changes.
struct EdgeWeightUpdate {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;
  Weight new_weight = 0.0;
};

/// Undirected weighted graph with optional vertex coordinates and
/// immutable topology. Construct via GraphBuilder (graph/builder.h), a
/// loader (graph/io.h), or a generator (graph/generator.h). Every
/// accessor is const with no internal scratch, so one Graph may be read
/// concurrently from any number of threads (the batch engine relies on
/// this). ApplyWeightUpdates is the only mutating operation; it must not
/// run concurrently with readers (updates happen between query batches —
/// the batch engine detects and rejects mid-batch epoch changes).
class Graph {
 public:
  /// Builds the CSR representation from per-vertex adjacency lists.
  /// `adjacency[u]` must contain an arc to v iff `adjacency[v]` contains an
  /// arc of equal weight back to u (the graph is undirected). `coords` is
  /// either empty or has one entry per vertex.
  Graph(std::vector<std::vector<Arc>> adjacency, std::vector<Point> coords);

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  // Manual moves: the epoch counter is atomic (readers may poll it from
  // worker threads) and atomics are not movable by default.
  Graph(Graph&& other) noexcept;
  Graph& operator=(Graph&& other) noexcept;

  /// Number of vertices |V|.
  size_t NumVertices() const { return offsets_.size() - 1; }

  /// Number of undirected edges |E| (each stored as two arcs).
  size_t NumEdges() const { return arcs_.size() / 2; }

  /// Number of stored arcs (2|E|). Upper-bounds the entries a
  /// lazy-delete Dijkstra can ever push, so scratch heaps reserved to
  /// NumArcs() + 1 run allocation-free (see DijkstraSearch).
  size_t NumArcs() const { return arcs_.size(); }

  /// Outgoing arcs of `u`.
  std::span<const Arc> Neighbors(VertexId u) const {
    FANNR_DCHECK(u < NumVertices());
    return {arcs_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }

  /// Degree of `u`.
  size_t Degree(VertexId u) const {
    FANNR_DCHECK(u < NumVertices());
    return offsets_[u + 1] - offsets_[u];
  }

  /// Current weight of edge (u, v), or nullopt when no such edge exists.
  std::optional<Weight> EdgeWeight(VertexId u, VertexId v) const;

  // --- live weight updates (src/dynamic/, DESIGN.md §2.8) ---------------

  /// The graph's version: 0 at construction/load, +1 per applied update
  /// batch. Safe to read from any thread (relaxed atomic); prebuilt
  /// indexes and the source-distance cache compare epochs to detect
  /// staleness in O(1).
  GraphEpoch epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Applies edge-weight changes in place and bumps the epoch (once per
  /// call, iff at least one update applied). Updates addressing a
  /// non-existent edge are skipped and counted in the return value's
  /// second member. Every applied update must carry a positive finite
  /// weight and distinct in-range endpoints (checked). NOT safe to run
  /// concurrently with readers: callers serialize updates against query
  /// execution (see the class comment).
  struct ApplyStats {
    size_t applied = 0;
    size_t missing = 0;  ///< updates whose edge does not exist
  };
  ApplyStats ApplyWeightUpdates(std::span<const EdgeWeightUpdate> updates);

  /// The graph's structural identity (vertex/edge counts + weight
  /// checksum). O(1): the checksum is maintained incrementally across
  /// weight updates.
  GraphFingerprint Fingerprint() const {
    return {NumVertices(), NumEdges(), weight_checksum_};
  }

  /// True if vertices carry planar coordinates.
  bool HasCoordinates() const { return !coords_.empty(); }

  /// Coordinate of `u`. Requires HasCoordinates().
  const Point& Coord(VertexId u) const {
    FANNR_DCHECK(HasCoordinates() && u < NumVertices());
    return coords_[u];
  }

  /// All coordinates (empty if none).
  std::span<const Point> Coords() const {
    return {coords_.data(), coords_.size()};
  }

  /// Euclidean distance between two vertices. Requires HasCoordinates().
  double EuclideanDistance(VertexId u, VertexId v) const {
    return fannr::EuclideanDistance(Coord(u), Coord(v));
  }

  /// True if every edge satisfies euclid(u, v) <= w(u, v) (so Euclidean
  /// distance is an admissible lower bound on network distance). Always
  /// true for graphs without coordinates is NOT assumed — returns false.
  bool EuclideanConsistent() const;

  /// Scales all coordinates by the largest factor <= 1 that makes the
  /// graph Euclidean-consistent (no-op if already consistent). Real map
  /// data with travel-time weights typically needs this. Requires
  /// HasCoordinates() and at least one edge.
  void MakeEuclideanConsistent();

  /// Approximate heap memory used by the CSR arrays, in bytes.
  size_t MemoryBytes() const;

  /// Serializes the CSR arrays (binary cache format; see
  /// common/serialize.h). Much faster to reload than regenerating or
  /// re-parsing DIMACS for large networks. Returns false on I/O failure.
  bool Save(std::ostream& out) const;

  /// Reloads a graph written by Save. Returns nullopt on corrupt input.
  static std::optional<Graph> Load(std::istream& in);

  /// Writes the arena (format v3, graph/index_io.h) cache file: the CSR
  /// arrays as 64-byte-aligned sections behind the shared header, with
  /// arc padding bytes zeroed so the file is bit-deterministic. Returns
  /// false on I/O failure.
  bool SaveV3(const std::string& path) const;

  /// Opens a SaveV3 file by mmap: the returned graph's CSR arrays point
  /// into the (copy-on-write private) mapping, so load cost is the map
  /// plus one structural scan — no copy, no per-arc checksum. The weight
  /// checksum is taken from the stored fingerprint; kFull additionally
  /// verifies the arena payload checksum over every byte. Returns
  /// nullopt on unreadable/corrupt/structurally invalid input.
  static std::optional<Graph> LoadMmap(
      const std::string& path,
      ArenaValidation validation = ArenaValidation::kHeaderOnly);

  /// True when the CSR arrays live in an mmap-ed index file rather than
  /// heap vectors.
  bool MemoryMapped() const { return arena_ != nullptr; }

 private:
  Graph() = default;

  /// Recomputes weight_checksum_ from scratch (construction and Load).
  void RecomputeWeightChecksum();

  Column<size_t> offsets_;  // size NumVertices() + 1
  Column<Arc> arcs_;        // grouped by source vertex
  Column<Point> coords_;    // empty or size NumVertices()
  uint64_t weight_checksum_ = 0;
  std::atomic<GraphEpoch> epoch_{0};
  // Keeps the mapping alive when the columns above are borrowed views
  // into a v3 index file (type-erased to keep this header light).
  std::shared_ptr<void> arena_;
};

namespace internal_graph {

/// Order-independent per-arc checksum contribution; summed (wrapping)
/// over all arcs so a weight update adjusts the total in O(1).
uint64_t ArcChecksum(VertexId from, VertexId to, Weight weight);

}  // namespace internal_graph

}  // namespace fannr

#endif  // FANNR_GRAPH_GRAPH_H_
