// Incremental construction of Graph objects from edge lists.

#ifndef FANNR_GRAPH_BUILDER_H_
#define FANNR_GRAPH_BUILDER_H_

#include <vector>

#include "graph/graph.h"

namespace fannr {

/// Collects vertices and undirected edges, cleans them up (drops
/// self-loops, keeps the minimum weight among parallel edges — the paper
/// notes the raw DIMACS data needs exactly this kind of cleanup), and
/// produces an immutable Graph.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-declares `n` vertices (ids 0..n-1) without coordinates.
  explicit GraphBuilder(size_t n) { Resize(n); }

  /// Seeds the builder with a copy of an existing graph (vertices,
  /// coordinates and edges), so callers can apply road-network changes —
  /// add/modify edges — and Build() an updated graph. This supports the
  /// paper's motivating scenario for the index-free algorithms
  /// (Section IV): when the network changes frequently, rebuilding the
  /// graph is cheap while rebuilding a PHL/G-tree index is not. Note that
  /// AddEdge on an existing vertex pair only *lowers* the weight (the
  /// builder keeps the minimum among parallel edges); to raise a weight,
  /// rebuild from an edge list instead.
  static GraphBuilder FromGraph(const Graph& graph);

  /// Ensures vertices 0..n-1 exist.
  void Resize(size_t n);

  /// Adds a vertex with a coordinate; returns its id.
  VertexId AddVertex(Point coord);

  /// Adds a vertex without a coordinate; returns its id. Mixing
  /// coordinate-carrying and coordinate-free vertices drops all
  /// coordinates at Build() time.
  VertexId AddVertex();

  /// Adds an undirected edge. Requires u != v is NOT required here —
  /// self-loops are silently dropped at Build(). Requires weight > 0.
  void AddEdge(VertexId u, VertexId v, Weight weight);

  /// Number of vertices added so far.
  size_t NumVertices() const { return num_vertices_; }

  /// Finalizes and returns the graph. The builder is left empty.
  Graph Build();

 private:
  struct Edge {
    VertexId u;
    VertexId v;
    Weight weight;
  };

  size_t num_vertices_ = 0;
  std::vector<Edge> edges_;
  std::vector<Point> coords_;
  bool has_uncoordinated_vertex_ = false;
};

}  // namespace fannr

#endif  // FANNR_GRAPH_BUILDER_H_
