// Shared on-disk header for persisted index files (hub labels, G-tree,
// CH): magic number, format version, and the fingerprint of the graph
// the index was built against.
//
// The fingerprint (vertex count + edge count + weight checksum, see
// graph/graph.h) is the load-time identity check: an index file saved
// against a different road network — or against this network before a
// weight update — is rejected by Load instead of silently serving
// distances from the wrong graph. Format history: v1 files had no
// version or fingerprint after the magic; they are rejected (the next
// word never matches a small version number), never misread. v2 is the
// stream format below (WriteIndexHeader + per-index body). v3 is the
// arena format (ArenaWriter/ArenaFile): the same magic/version/
// fingerprint words at the same byte offsets, followed by a section
// table of 64-byte-aligned flat POD arrays, designed to be opened via
// mmap with O(header) validation. A v2 loader opening a v3 file fails
// on the version word, and vice versa — never a misparse.

#ifndef FANNR_GRAPH_INDEX_IO_H_
#define FANNR_GRAPH_INDEX_IO_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/column.h"
#include "common/mmap_file.h"
#include "common/serialize.h"
#include "graph/fingerprint.h"

namespace fannr {

/// Current version of every index cache file (bumped in lockstep; a
/// per-index split is not worth the bookkeeping while the header layout
/// is shared).
inline constexpr uint32_t kIndexFormatVersion = 2;

/// Version word written by the arena (mmap) format.
inline constexpr uint32_t kArenaFormatVersion = 3;

/// Writes `magic`, kIndexFormatVersion, and `fingerprint`.
void WriteIndexHeader(BinaryWriter& writer, uint64_t magic,
                      const GraphFingerprint& fingerprint);

/// Reads and validates a header written by WriteIndexHeader: the magic
/// and version must match exactly and the stored fingerprint must equal
/// `expected` (the graph the caller wants the index to serve). Returns
/// false on any mismatch or stream failure.
bool ReadIndexHeader(BinaryReader& reader, uint64_t magic,
                     const GraphFingerprint& expected);

// ---------------------------------------------------------------------------
// Format v3: relocatable arena files.
//
// Layout (all fields little-endian native, offsets in bytes):
//
//   0   u64  magic                 (same per-index magics as v2)
//   8   u32  version               (= kArenaFormatVersion)
//   12  u64  fingerprint.vertices         (same offsets as v2)
//   20  u64  fingerprint.edges            (same offsets as v2)
//   28  u64  fingerprint.weight_checksum  (same offsets as v2)
//   36  u32  section_count
//   40  u64  flags                 (bit 0: payload checksum present)
//   48  u64  payload_checksum      (over bytes [64, file_bytes))
//   56  u64  file_bytes            (total file size; must match the map)
//   64  {u64 offset, u64 bytes} x section_count   (the section table)
//   ... sections, each offset 64-byte aligned, zero padding between
//
// Opening is O(header): map the file, check magic/version/fingerprint,
// check the section table is monotone, aligned, and in bounds. The
// payload checksum over every byte past the header is verified only
// under ArenaValidation::kFull — the explicit trade of the v3 format is
// that a default open trusts the payload bytes structurally validated
// by the per-index Load and defers whole-file integrity to the caller.
// ---------------------------------------------------------------------------

/// How much of an arena file Open verifies before handing out views.
enum class ArenaValidation {
  kHeaderOnly,  // magic/version/fingerprint + section-table bounds
  kFull,        // kHeaderOnly + payload checksum over [64, file_bytes)
};

/// Order-dependent 64-bit checksum used for the v3 payload, streamable
/// in arbitrary chunk sizes.
class ArenaChecksum {
 public:
  void Absorb(const void* data, size_t bytes);
  uint64_t Finish() const;

 private:
  uint64_t state_ = 0xFA22A81A00000003ULL;
  uint64_t total_ = 0;
  unsigned char pending_[8] = {};
  size_t pending_len_ = 0;
};

/// Collects flat POD sections and writes one v3 arena file. Sections
/// added by pointer/vector/Column are NOT copied — they must stay alive
/// until Write returns. AddScalar copies its argument.
class ArenaWriter {
 public:
  template <typename T>
  void Add(const T* data, size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    sections_.push_back(
        {reinterpret_cast<const void*>(data), count * sizeof(T), SIZE_MAX});
  }
  template <typename T>
  void Add(const std::vector<T>& values) {
    Add(values.data(), values.size());
  }
  template <typename T>
  void Add(const Column<T>& values) {
    Add(values.data(), values.size());
  }
  /// Copies `value` into writer-owned storage and adds it as a
  /// one-element section.
  template <typename T>
  void AddScalar(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    owned_.emplace_back(reinterpret_cast<const char*>(&value),
                        reinterpret_cast<const char*>(&value) + sizeof(T));
    sections_.push_back({nullptr, sizeof(T), owned_.size() - 1});
  }

  /// Writes header + section table + aligned sections + checksum to
  /// `path` (truncating). Returns false on any I/O failure.
  bool Write(const std::string& path, uint64_t magic,
             const GraphFingerprint& fingerprint) const;

 private:
  struct Section {
    const void* data;    // null when owned_index is set
    uint64_t bytes;
    size_t owned_index;  // SIZE_MAX when external
  };
  std::vector<Section> sections_;
  std::vector<std::string> owned_;
};

/// An opened v3 arena file: the mapping plus the validated section
/// table. Views returned by SectionArray point into the mapping and are
/// valid for the lifetime of this object (indexes keep the ArenaFile as
/// a member next to their borrowed Columns).
class ArenaFile {
 public:
  /// Maps `path` and validates per `validation`. Returns nullopt on any
  /// failure: unreadable file, bad magic/version, malformed section
  /// table, or (under kFull) checksum mismatch / checksum absent.
  /// The caller checks fingerprint() against its own expectation.
  static std::optional<ArenaFile> Open(const std::string& path,
                                       uint64_t magic,
                                       ArenaValidation validation);

  const GraphFingerprint& fingerprint() const { return fingerprint_; }
  size_t NumSections() const { return sections_.size(); }
  uint64_t SectionBytes(size_t i) const { return sections_[i].bytes; }

  /// Typed view of section `i`. Returns nullptr (count = 0) if the
  /// section's byte size is not a multiple of sizeof(T). An empty
  /// section yields a non-null placeholder pointer with count = 0 so
  /// Column::Borrow on the result is well-defined.
  template <typename T>
  T* SectionArray(size_t i, size_t& count) const {
    static_assert(std::is_trivially_copyable_v<T>);
    count = 0;
    if (i >= sections_.size()) return nullptr;
    const auto& s = sections_[i];
    if (s.bytes % sizeof(T) != 0) return nullptr;
    count = static_cast<size_t>(s.bytes / sizeof(T));
    return reinterpret_cast<T*>(map_.data() + s.offset);
  }

  /// Borrow section `i` as a Column<T>; aborts on a malformed section
  /// (callers validate with SectionArray first when the file is
  /// untrusted).
  template <typename T>
  Column<T> BorrowColumn(size_t i) const {
    size_t count = 0;
    T* p = SectionArray<T>(i, count);
    FANNR_CHECK(p != nullptr);
    return Column<T>::Borrow(p, count);
  }

  /// Reads the one-element section `i` written by AddScalar into `out`.
  /// Returns false on size mismatch.
  template <typename T>
  bool ReadScalar(size_t i, T& out) const {
    size_t count = 0;
    const T* p = SectionArray<T>(i, count);
    if (p == nullptr || count != 1) return false;
    std::memcpy(&out, p, sizeof(T));
    return true;
  }

 private:
  struct Section {
    uint64_t offset;
    uint64_t bytes;
  };

  MmapFile map_;
  GraphFingerprint fingerprint_;
  std::vector<Section> sections_;
};

/// Reads just the stored fingerprint of a v2 or v3 index file without
/// validating the body. Returns nullopt when the file cannot be read or
/// the magic/version is unrecognized. Used by tooling to report what a
/// cache file was built against.
std::optional<GraphFingerprint> PeekIndexFingerprint(const std::string& path,
                                                     uint64_t magic);

}  // namespace fannr

#endif  // FANNR_GRAPH_INDEX_IO_H_
