// Shared on-disk header for persisted index files (hub labels, G-tree,
// CH): magic number, format version, and the fingerprint of the graph
// the index was built against.
//
// The fingerprint (vertex count + edge count + weight checksum, see
// graph/graph.h) is the load-time identity check: an index file saved
// against a different road network — or against this network before a
// weight update — is rejected by Load instead of silently serving
// distances from the wrong graph. Format history: v1 files had no
// version or fingerprint after the magic; they are rejected (the next
// word never matches a small version number), never misread.

#ifndef FANNR_GRAPH_INDEX_IO_H_
#define FANNR_GRAPH_INDEX_IO_H_

#include <cstdint>

#include "common/serialize.h"
#include "graph/graph.h"

namespace fannr {

/// Current version of every index cache file (bumped in lockstep; a
/// per-index split is not worth the bookkeeping while the header layout
/// is shared).
inline constexpr uint32_t kIndexFormatVersion = 2;

/// Writes `magic`, kIndexFormatVersion, and `fingerprint`.
void WriteIndexHeader(BinaryWriter& writer, uint64_t magic,
                      const GraphFingerprint& fingerprint);

/// Reads and validates a header written by WriteIndexHeader: the magic
/// and version must match exactly and the stored fingerprint must equal
/// `expected` (the graph the caller wants the index to serve). Returns
/// false on any mismatch or stream failure.
bool ReadIndexHeader(BinaryReader& reader, uint64_t magic,
                     const GraphFingerprint& expected);

}  // namespace fannr

#endif  // FANNR_GRAPH_INDEX_IO_H_
