#include "graph/components.h"

#include <algorithm>
#include <queue>

#include "graph/builder.h"

namespace fannr {

ComponentLabeling ConnectedComponents(const Graph& graph) {
  const size_t n = graph.NumVertices();
  ComponentLabeling result;
  result.label.assign(n, kInvalidVertex);
  std::vector<VertexId> stack;
  for (VertexId start = 0; start < n; ++start) {
    if (result.label[start] != kInvalidVertex) continue;
    const uint32_t id = static_cast<uint32_t>(result.num_components++);
    result.label[start] = id;
    stack.push_back(start);
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      for (const Arc& a : graph.Neighbors(u)) {
        if (result.label[a.to] == kInvalidVertex) {
          result.label[a.to] = id;
          stack.push_back(a.to);
        }
      }
    }
  }
  return result;
}

LargestComponent ExtractLargestComponent(const Graph& graph) {
  const ComponentLabeling cc = ConnectedComponents(graph);
  std::vector<size_t> sizes(cc.num_components, 0);
  for (uint32_t l : cc.label) ++sizes[l];
  const uint32_t best = static_cast<uint32_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());

  std::vector<VertexId> old_to_new(graph.NumVertices(), kInvalidVertex);
  std::vector<VertexId> new_to_old;
  new_to_old.reserve(sizes[best]);
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    if (cc.label[u] == best) {
      old_to_new[u] = static_cast<VertexId>(new_to_old.size());
      new_to_old.push_back(u);
    }
  }

  GraphBuilder builder;
  if (graph.HasCoordinates()) {
    for (VertexId old_id : new_to_old) builder.AddVertex(graph.Coord(old_id));
  } else {
    builder.Resize(new_to_old.size());
  }
  for (VertexId old_u : new_to_old) {
    for (const Arc& a : graph.Neighbors(old_u)) {
      if (old_u < a.to && cc.label[a.to] == best) {
        builder.AddEdge(old_to_new[old_u], old_to_new[a.to], a.weight);
      }
    }
  }
  return LargestComponent{builder.Build(), std::move(new_to_old)};
}

bool IsConnected(const Graph& graph) {
  if (graph.NumVertices() == 0) return true;
  return ConnectedComponents(graph).num_components == 1;
}

}  // namespace fannr
