// Named dataset presets mirroring the paper's Table III at laptop scale.
//
// The paper's datasets (DIMACS USA road graphs) are unavailable offline;
// each preset generates a synthetic road network whose vertex count matches
// the corresponding real dataset (DESIGN.md §4). Presets are deterministic:
// the same name always produces the same graph.

#ifndef FANNR_GRAPH_PRESETS_H_
#define FANNR_GRAPH_PRESETS_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace fannr {

/// A named synthetic stand-in for one of the paper's road networks.
struct DatasetPreset {
  std::string name;         // e.g. "DE"
  std::string description;  // e.g. "Delaware-scale synthetic"
  size_t target_vertices;   // vertex count of the real dataset
};

/// The preset ladder: DE (48,812), ME (187,315), COL (435,666),
/// NW (1,089,933), plus the sub-scale "TEST" (2,500) used by unit tests
/// and quick runs. The paper's E/CTR/USA (3.6M-23.9M vertices) are outside
/// the single-core budget and intentionally absent (see DESIGN.md §4).
std::vector<DatasetPreset> AllPresets();

/// Generates the synthetic network for `name` ("TEST", "DE", "ME", "COL",
/// "NW"; case-sensitive). Aborts on unknown names — call IsPresetName
/// first for user input.
Graph BuildPreset(const std::string& name);

/// True if `name` is a known preset.
bool IsPresetName(const std::string& name);

}  // namespace fannr

#endif  // FANNR_GRAPH_PRESETS_H_
