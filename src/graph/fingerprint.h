// Structural identity of a graph, split into its own header so the
// index-file layer (graph/index_io.h) can name it without pulling in
// the full Graph definition.

#ifndef FANNR_GRAPH_FINGERPRINT_H_
#define FANNR_GRAPH_FINGERPRINT_H_

#include <cstdint>

namespace fannr {

/// Structural identity of a graph: vertex count, edge count, and an
/// order-independent checksum over every arc's (endpoints, weight). Two
/// graphs with equal fingerprints hold the same weighted edge set with
/// overwhelming probability; a single weight update changes the
/// checksum. Persisted index files store the fingerprint of the graph
/// they were built against so Load can reject files saved against a
/// different (or since-updated) network instead of serving wrong
/// distances.
struct GraphFingerprint {
  uint64_t vertices = 0;
  uint64_t edges = 0;
  uint64_t weight_checksum = 0;

  friend bool operator==(const GraphFingerprint&,
                         const GraphFingerprint&) = default;
};

}  // namespace fannr

#endif  // FANNR_GRAPH_FINGERPRINT_H_
