#include "graph/generator.h"

#include <cmath>
#include <vector>

#include "graph/builder.h"
#include "graph/components.h"

namespace fannr {

Graph GenerateGridNetwork(const GridNetworkOptions& options, Rng& rng) {
  FANNR_CHECK(options.rows >= 2 && options.cols >= 2);
  FANNR_CHECK(options.jitter >= 0.0 && options.jitter < 0.5);
  FANNR_CHECK(options.detour >= 0.0);
  const size_t rows = options.rows;
  const size_t cols = options.cols;
  // rows * cols must fit VertexId before the id() lambda casts — checked
  // by division so the product itself cannot overflow size_t either.
  FANNR_CHECK(rows <= static_cast<size_t>(kInvalidVertex) / cols);
  const double cell = options.cell_size;

  GraphBuilder builder;
  std::vector<Point> coords;
  coords.reserve(rows * cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      const double jx = rng.NextDouble(-options.jitter, options.jitter);
      const double jy = rng.NextDouble(-options.jitter, options.jitter);
      Point p{(static_cast<double>(c) + jx) * cell,
              (static_cast<double>(r) + jy) * cell};
      coords.push_back(p);
      builder.AddVertex(p);
    }
  }

  auto id = [cols](size_t r, size_t c) {
    return static_cast<VertexId>(r * cols + c);
  };
  auto weight_of = [&](VertexId u, VertexId v) {
    const double euclid = EuclideanDistance(coords[u], coords[v]);
    return euclid * rng.NextDouble(1.0, 1.0 + options.detour) + 1e-9;
  };
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      const VertexId u = id(r, c);
      if (c + 1 < cols && rng.NextBool(options.keep_probability)) {
        builder.AddEdge(u, id(r, c + 1), weight_of(u, id(r, c + 1)));
      }
      if (r + 1 < rows && rng.NextBool(options.keep_probability)) {
        builder.AddEdge(u, id(r + 1, c), weight_of(u, id(r + 1, c)));
      }
      if (r + 1 < rows && c + 1 < cols &&
          rng.NextBool(options.diagonal_probability)) {
        builder.AddEdge(u, id(r + 1, c + 1), weight_of(u, id(r + 1, c + 1)));
      }
    }
  }
  Graph raw = builder.Build();
  return ExtractLargestComponent(raw).graph;
}

Graph GenerateGeometricNetwork(const GeometricNetworkOptions& options,
                               Rng& rng) {
  FANNR_CHECK(options.num_vertices >= 2);
  FANNR_CHECK(options.radius > 0.0 && options.extent > 0.0);
  const size_t n = options.num_vertices;
  // The `VertexId i < n` loops below would never terminate (and the
  // builder would wrap ids) past the VertexId range.
  FANNR_CHECK(n <= static_cast<size_t>(kInvalidVertex));
  std::vector<Point> coords;
  coords.reserve(n);
  GraphBuilder builder;
  for (size_t i = 0; i < n; ++i) {
    Point p{rng.NextDouble(0.0, options.extent),
            rng.NextDouble(0.0, options.extent)};
    coords.push_back(p);
    builder.AddVertex(p);
  }

  // Spatial hashing: bucket side = radius, check the 3x3 neighborhood.
  const double r = options.radius;
  const size_t grid_dim =
      static_cast<size_t>(std::ceil(options.extent / r)) + 1;
  std::vector<std::vector<VertexId>> buckets(grid_dim * grid_dim);
  auto bucket_of = [&](const Point& p) {
    const size_t bx = static_cast<size_t>(p.x / r);
    const size_t by = static_cast<size_t>(p.y / r);
    return by * grid_dim + bx;
  };
  for (VertexId i = 0; i < n; ++i) buckets[bucket_of(coords[i])].push_back(i);

  for (VertexId i = 0; i < n; ++i) {
    const size_t bx = static_cast<size_t>(coords[i].x / r);
    const size_t by = static_cast<size_t>(coords[i].y / r);
    for (size_t gy = (by == 0 ? 0 : by - 1); gy <= by + 1 && gy < grid_dim;
         ++gy) {
      for (size_t gx = (bx == 0 ? 0 : bx - 1); gx <= bx + 1 && gx < grid_dim;
           ++gx) {
        for (VertexId j : buckets[gy * grid_dim + gx]) {
          if (j <= i) continue;
          const double euclid = EuclideanDistance(coords[i], coords[j]);
          if (euclid <= r && euclid > 0.0) {
            const double w =
                euclid * rng.NextDouble(1.0, 1.0 + options.detour) + 1e-9;
            builder.AddEdge(i, j, w);
          }
        }
      }
    }
  }
  Graph raw = builder.Build();
  return ExtractLargestComponent(raw).graph;
}

}  // namespace fannr
