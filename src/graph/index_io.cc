#include "graph/index_io.h"

#include <cstring>
#include <fstream>

namespace fannr {
namespace {

constexpr uint64_t kArenaHeaderBytes = 64;
constexpr uint64_t kArenaAlignment = 64;
constexpr uint64_t kArenaFlagHasChecksum = 1;
// A section table larger than this is corrupt, not big: every real
// index writes a fixed, small number of sections.
constexpr uint64_t kMaxSections = 1 << 20;

uint64_t AlignUp(uint64_t x) {
  return (x + (kArenaAlignment - 1)) & ~(kArenaAlignment - 1);
}

uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

template <typename T>
T LoadPod(const std::byte* base, uint64_t offset) {
  T value;
  std::memcpy(&value, base + offset, sizeof(T));
  return value;
}

}  // namespace

void WriteIndexHeader(BinaryWriter& writer, uint64_t magic,
                      const GraphFingerprint& fingerprint) {
  writer.Pod(magic);
  writer.Pod(kIndexFormatVersion);
  writer.Pod(fingerprint.vertices);
  writer.Pod(fingerprint.edges);
  writer.Pod(fingerprint.weight_checksum);
}

bool ReadIndexHeader(BinaryReader& reader, uint64_t magic,
                     const GraphFingerprint& expected) {
  uint64_t got_magic = 0;
  uint32_t version = 0;
  GraphFingerprint stored;
  if (!reader.Pod(got_magic) || got_magic != magic) return false;
  if (!reader.Pod(version) || version != kIndexFormatVersion) return false;
  if (!reader.Pod(stored.vertices) || !reader.Pod(stored.edges) ||
      !reader.Pod(stored.weight_checksum)) {
    return false;
  }
  return stored == expected;
}

void ArenaChecksum::Absorb(const void* data, size_t bytes) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  total_ += bytes;
  if (pending_len_ > 0) {
    while (pending_len_ < sizeof(pending_) && bytes > 0) {
      pending_[pending_len_++] = *p++;
      --bytes;
    }
    if (pending_len_ < sizeof(pending_)) return;
    uint64_t word;
    std::memcpy(&word, pending_, sizeof(word));
    state_ = Mix64(state_ ^ word);
    pending_len_ = 0;
  }
  while (bytes >= sizeof(uint64_t)) {
    uint64_t word;
    std::memcpy(&word, p, sizeof(word));
    state_ = Mix64(state_ ^ word);
    p += sizeof(uint64_t);
    bytes -= sizeof(uint64_t);
  }
  while (bytes > 0) {
    pending_[pending_len_++] = *p++;
    --bytes;
  }
}

uint64_t ArenaChecksum::Finish() const {
  uint64_t state = state_;
  if (pending_len_ > 0) {
    unsigned char tail[8] = {};
    std::memcpy(tail, pending_, pending_len_);
    uint64_t word;
    std::memcpy(&word, tail, sizeof(word));
    state = Mix64(state ^ word);
  }
  // Folding in the length distinguishes trailing zero bytes from EOF.
  return Mix64(state ^ Mix64(total_));
}

bool ArenaWriter::Write(const std::string& path, uint64_t magic,
                        const GraphFingerprint& fingerprint) const {
  const uint64_t table_bytes = sections_.size() * 16;
  const uint64_t table_end = kArenaHeaderBytes + table_bytes;

  std::vector<uint64_t> offsets(sections_.size());
  uint64_t cursor = table_end;
  for (size_t i = 0; i < sections_.size(); ++i) {
    cursor = AlignUp(cursor);
    offsets[i] = cursor;
    cursor += sections_[i].bytes;
  }
  const uint64_t file_bytes = cursor;

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;

  ArenaChecksum checksum;
  const auto emit = [&out, &checksum](const void* data, uint64_t bytes) {
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(bytes));
    checksum.Absorb(data, static_cast<size_t>(bytes));
  };

  // Header. The checksum slot is patched after the payload streams out.
  const uint32_t version = kArenaFormatVersion;
  const uint32_t section_count = static_cast<uint32_t>(sections_.size());
  const uint64_t flags = kArenaFlagHasChecksum;
  const uint64_t checksum_placeholder = 0;
  out.write(reinterpret_cast<const char*>(&magic), 8);
  out.write(reinterpret_cast<const char*>(&version), 4);
  out.write(reinterpret_cast<const char*>(&fingerprint.vertices), 8);
  out.write(reinterpret_cast<const char*>(&fingerprint.edges), 8);
  out.write(reinterpret_cast<const char*>(&fingerprint.weight_checksum), 8);
  out.write(reinterpret_cast<const char*>(&section_count), 4);
  out.write(reinterpret_cast<const char*>(&flags), 8);
  out.write(reinterpret_cast<const char*>(&checksum_placeholder), 8);
  out.write(reinterpret_cast<const char*>(&file_bytes), 8);

  // Section table, then payload with zeroed alignment padding — both
  // inside the checksum's coverage, [kArenaHeaderBytes, file_bytes).
  for (size_t i = 0; i < sections_.size(); ++i) {
    emit(&offsets[i], 8);
    emit(&sections_[i].bytes, 8);
  }
  static constexpr char kZeros[kArenaAlignment] = {};
  cursor = table_end;
  for (size_t i = 0; i < sections_.size(); ++i) {
    const uint64_t pad = offsets[i] - cursor;
    if (pad > 0) emit(kZeros, pad);
    const Section& s = sections_[i];
    const void* data =
        s.owned_index == SIZE_MAX ? s.data : owned_[s.owned_index].data();
    if (s.bytes > 0) emit(data, s.bytes);
    cursor = offsets[i] + s.bytes;
  }

  const uint64_t final_checksum = checksum.Finish();
  out.seekp(48);
  out.write(reinterpret_cast<const char*>(&final_checksum), 8);
  out.flush();
  return static_cast<bool>(out);
}

std::optional<ArenaFile> ArenaFile::Open(const std::string& path,
                                         uint64_t magic,
                                         ArenaValidation validation) {
  std::optional<MmapFile> map = MmapFile::Open(path);
  if (!map.has_value() || map->size() < kArenaHeaderBytes) return std::nullopt;
  const std::byte* base = map->data();

  if (LoadPod<uint64_t>(base, 0) != magic) return std::nullopt;
  if (LoadPod<uint32_t>(base, 8) != kArenaFormatVersion) return std::nullopt;

  ArenaFile result;
  result.fingerprint_.vertices = LoadPod<uint64_t>(base, 12);
  result.fingerprint_.edges = LoadPod<uint64_t>(base, 20);
  result.fingerprint_.weight_checksum = LoadPod<uint64_t>(base, 28);
  const uint32_t section_count = LoadPod<uint32_t>(base, 36);
  const uint64_t flags = LoadPod<uint64_t>(base, 40);
  const uint64_t stored_checksum = LoadPod<uint64_t>(base, 48);
  const uint64_t file_bytes = LoadPod<uint64_t>(base, 56);

  if (file_bytes != map->size()) return std::nullopt;
  if (section_count > kMaxSections) return std::nullopt;
  const uint64_t table_end = kArenaHeaderBytes + uint64_t{section_count} * 16;
  if (table_end > file_bytes) return std::nullopt;

  result.sections_.reserve(section_count);
  uint64_t prev_end = table_end;
  for (uint32_t i = 0; i < section_count; ++i) {
    const uint64_t offset = LoadPod<uint64_t>(base, kArenaHeaderBytes + i * 16);
    const uint64_t bytes =
        LoadPod<uint64_t>(base, kArenaHeaderBytes + i * 16 + 8);
    if (offset % kArenaAlignment != 0) return std::nullopt;
    if (offset < prev_end) return std::nullopt;
    if (bytes > file_bytes || offset > file_bytes - bytes) return std::nullopt;
    prev_end = offset + bytes;
    result.sections_.push_back({offset, bytes});
  }

  if (validation == ArenaValidation::kFull) {
    // The checksum covers the table, the padding, and every section —
    // everything past the header — so a kFull open certifies the same
    // bytes a v2 read-everything load would have checked.
    if ((flags & kArenaFlagHasChecksum) == 0) return std::nullopt;
    ArenaChecksum checksum;
    checksum.Absorb(base + kArenaHeaderBytes,
                    static_cast<size_t>(file_bytes - kArenaHeaderBytes));
    if (checksum.Finish() != stored_checksum) return std::nullopt;
  }

  result.map_ = std::move(*map);
  return result;
}

std::optional<GraphFingerprint> PeekIndexFingerprint(const std::string& path,
                                                     uint64_t magic) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  uint64_t got_magic = 0;
  uint32_t version = 0;
  GraphFingerprint fp;
  BinaryReader reader(in);
  if (!reader.Pod(got_magic) || got_magic != magic) return std::nullopt;
  if (!reader.Pod(version) ||
      (version != kIndexFormatVersion && version != kArenaFormatVersion)) {
    return std::nullopt;
  }
  if (!reader.Pod(fp.vertices) || !reader.Pod(fp.edges) ||
      !reader.Pod(fp.weight_checksum)) {
    return std::nullopt;
  }
  return fp;
}

}  // namespace fannr
