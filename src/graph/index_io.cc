#include "graph/index_io.h"

namespace fannr {

void WriteIndexHeader(BinaryWriter& writer, uint64_t magic,
                      const GraphFingerprint& fingerprint) {
  writer.Pod(magic);
  writer.Pod(kIndexFormatVersion);
  writer.Pod(fingerprint.vertices);
  writer.Pod(fingerprint.edges);
  writer.Pod(fingerprint.weight_checksum);
}

bool ReadIndexHeader(BinaryReader& reader, uint64_t magic,
                     const GraphFingerprint& expected) {
  uint64_t got_magic = 0;
  uint32_t version = 0;
  GraphFingerprint stored;
  if (!reader.Pod(got_magic) || got_magic != magic) return false;
  if (!reader.Pod(version) || version != kIndexFormatVersion) return false;
  if (!reader.Pod(stored.vertices) || !reader.Pod(stored.edges) ||
      !reader.Pod(stored.weight_checksum)) {
    return false;
  }
  return stored == expected;
}

}  // namespace fannr
