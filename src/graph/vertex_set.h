// A set of vertices with O(1) membership tests and member indexing.
//
// FANN_R queries work with two vertex sets — the data points P and the
// query points Q. Algorithms need both iteration over members and constant
// time "is v in P?" / "which member of Q is v?" lookups; this class
// provides both.

#ifndef FANNR_GRAPH_VERTEX_SET_H_
#define FANNR_GRAPH_VERTEX_SET_H_

#include <span>
#include <vector>

#include "common/check.h"
#include "graph/graph.h"

namespace fannr {

/// An immutable set of distinct vertices of one graph. Construction is
/// O(|V|); membership and index lookups are O(1).
class IndexedVertexSet {
 public:
  /// Builds the set. `members` must be distinct vertices < num_vertices.
  IndexedVertexSet(size_t num_vertices, std::vector<VertexId> members)
      : members_(std::move(members)),
        index_(num_vertices, kNotMember) {
    for (size_t i = 0; i < members_.size(); ++i) {
      FANNR_CHECK(members_[i] < num_vertices);
      FANNR_CHECK(index_[members_[i]] == kNotMember &&
                  "duplicate vertex in set");
      index_[members_[i]] = static_cast<uint32_t>(i);
    }
  }

  /// Number of members.
  size_t size() const { return members_.size(); }

  bool empty() const { return members_.empty(); }

  /// Members in insertion order.
  std::span<const VertexId> members() const { return members_; }

  /// The i-th member.
  VertexId operator[](size_t i) const {
    FANNR_DCHECK(i < members_.size());
    return members_[i];
  }

  /// True if `v` is in the set.
  bool Contains(VertexId v) const {
    FANNR_DCHECK(v < index_.size());
    return index_[v] != kNotMember;
  }

  /// Position of `v` in members(), or kNotMember if absent.
  uint32_t IndexOf(VertexId v) const {
    FANNR_DCHECK(v < index_.size());
    return index_[v];
  }

  static constexpr uint32_t kNotMember = 0xFFFFFFFFu;

 private:
  std::vector<VertexId> members_;
  std::vector<uint32_t> index_;
};

}  // namespace fannr

#endif  // FANNR_GRAPH_VERTEX_SET_H_
