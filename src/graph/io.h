// DIMACS road-network file I/O.
//
// The 9th DIMACS Implementation Challenge format is what the paper's
// datasets (Table III) ship in: a `.gr` file with `a u v w` arc lines and
// a `.co` file with `v id x y` coordinate lines (1-based vertex ids).

#ifndef FANNR_GRAPH_IO_H_
#define FANNR_GRAPH_IO_H_

#include <optional>
#include <string>

#include "graph/graph.h"

namespace fannr {

class ThreadPool;

/// Result of a load attempt; `error` is non-empty iff loading failed.
struct LoadResult {
  std::optional<Graph> graph;
  std::string error;

  bool ok() const { return graph.has_value(); }
};

/// Loads a DIMACS `.gr` graph, optionally joined with a `.co` coordinate
/// file (pass an empty string to skip coordinates). Duplicate arcs and
/// self-loops are cleaned up; the reverse arc implied by the undirected
/// road network is added automatically.
///
/// With a non-null `pool`, the line parse (the dominant cost on
/// continent-scale inputs) is fanned over newline-aligned chunks; the
/// resulting graph is identical to the sequential load (chunks feed the
/// builder in file order), and so is the error contract — every parse
/// error still reads "<path>:<line>: <message>: '<line text>'" with the
/// earliest offending line winning.
LoadResult LoadDimacs(const std::string& gr_path, const std::string& co_path,
                      ThreadPool* pool = nullptr);

/// Writes `graph` in DIMACS format. Returns false on I/O failure. When the
/// graph has coordinates and `co_path` is non-empty, also writes the
/// coordinate file (coordinates are rounded to integers after scaling by
/// `coord_scale`, matching the DIMACS integer convention).
bool SaveDimacs(const Graph& graph, const std::string& gr_path,
                const std::string& co_path, double coord_scale = 1.0);

}  // namespace fannr

#endif  // FANNR_GRAPH_IO_H_
