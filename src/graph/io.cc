#include "graph/io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "graph/builder.h"

namespace fannr {

namespace {

LoadResult Fail(std::string message) {
  LoadResult r;
  r.error = std::move(message);
  return r;
}

}  // namespace

LoadResult LoadDimacs(const std::string& gr_path,
                      const std::string& co_path) {
  std::ifstream gr(gr_path);
  if (!gr) return Fail("cannot open graph file: " + gr_path);

  GraphBuilder builder;
  size_t declared_vertices = 0;
  std::string line;
  while (std::getline(gr, line)) {
    if (line.empty()) continue;
    switch (line[0]) {
      case 'c':  // comment
        break;
      case 'p': {
        // "p sp <n> <m>"
        char tag[16];
        size_t n = 0, m = 0;
        if (std::sscanf(line.c_str(), "p %15s %zu %zu", tag, &n, &m) != 3) {
          return Fail("malformed problem line: " + line);
        }
        declared_vertices = n;
        builder.Resize(n);
        break;
      }
      case 'a': {
        size_t u = 0, v = 0;
        double w = 0.0;
        if (std::sscanf(line.c_str(), "a %zu %zu %lf", &u, &v, &w) != 3) {
          return Fail("malformed arc line: " + line);
        }
        if (u == 0 || v == 0 || u > declared_vertices ||
            v > declared_vertices) {
          return Fail("arc references undeclared vertex: " + line);
        }
        if (w <= 0.0) return Fail("non-positive weight: " + line);
        // DIMACS ids are 1-based.
        builder.AddEdge(static_cast<VertexId>(u - 1),
                        static_cast<VertexId>(v - 1), w);
        break;
      }
      default:
        return Fail("unrecognized line: " + line);
    }
  }
  if (declared_vertices == 0) return Fail("no problem line in " + gr_path);

  Graph graph = builder.Build();

  if (!co_path.empty()) {
    std::ifstream co(co_path);
    if (!co) return Fail("cannot open coordinate file: " + co_path);
    std::vector<Point> coords(graph.NumVertices());
    std::vector<bool> seen(graph.NumVertices(), false);
    while (std::getline(co, line)) {
      if (line.empty() || line[0] == 'c' || line[0] == 'p') continue;
      if (line[0] == 'v') {
        size_t id = 0;
        double x = 0.0, y = 0.0;
        if (std::sscanf(line.c_str(), "v %zu %lf %lf", &id, &x, &y) != 3) {
          return Fail("malformed coordinate line: " + line);
        }
        if (id == 0 || id > coords.size()) {
          return Fail("coordinate for undeclared vertex: " + line);
        }
        coords[id - 1] = Point{x, y};
        seen[id - 1] = true;
      } else {
        return Fail("unrecognized coordinate line: " + line);
      }
    }
    for (size_t i = 0; i < seen.size(); ++i) {
      if (!seen[i]) {
        return Fail("missing coordinate for vertex " + std::to_string(i + 1));
      }
    }
    // Rebuild with coordinates attached.
    GraphBuilder with_coords;
    for (const Point& p : coords) with_coords.AddVertex(p);
    for (VertexId u = 0; u < graph.NumVertices(); ++u) {
      for (const Arc& a : graph.Neighbors(u)) {
        if (u < a.to) with_coords.AddEdge(u, a.to, a.weight);
      }
    }
    LoadResult r;
    r.graph = with_coords.Build();
    return r;
  }

  LoadResult r;
  r.graph = std::move(graph);
  return r;
}

bool SaveDimacs(const Graph& graph, const std::string& gr_path,
                const std::string& co_path, double coord_scale) {
  std::ofstream gr(gr_path);
  if (!gr) return false;
  gr << "c fannr road network\n";
  gr << "p sp " << graph.NumVertices() << ' ' << graph.NumEdges() * 2 << '\n';
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (const Arc& a : graph.Neighbors(u)) {
      gr << "a " << (u + 1) << ' ' << (a.to + 1) << ' ' << a.weight << '\n';
    }
  }
  if (!gr) return false;

  if (!co_path.empty() && graph.HasCoordinates()) {
    std::ofstream co(co_path);
    if (!co) return false;
    co << "c fannr coordinates\n";
    for (VertexId u = 0; u < graph.NumVertices(); ++u) {
      const Point& p = graph.Coord(u);
      co << "v " << (u + 1) << ' '
         << static_cast<long long>(p.x * coord_scale) << ' '
         << static_cast<long long>(p.y * coord_scale) << '\n';
    }
    if (!co) return false;
  }
  return true;
}

}  // namespace fannr
