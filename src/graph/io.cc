#include "graph/io.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <vector>

#include "graph/builder.h"

namespace fannr {

namespace {

LoadResult Fail(std::string message) {
  LoadResult r;
  r.error = std::move(message);
  return r;
}

/// "<path>:<line>: <message>: '<line text>'" — every parse error names
/// its exact source line so corrupt multi-gigabyte inputs are debuggable.
LoadResult FailAt(const std::string& path, size_t line_number,
                  const std::string& message, const std::string& line) {
  return Fail(path + ":" + std::to_string(line_number) + ": " + message +
              ": '" + line + "'");
}

/// Splits on runs of spaces/tabs (DIMACS is whitespace-delimited).
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    const size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

/// Strict unsigned parse: the whole token must be a decimal number.
/// Unlike sscanf("%zu"), a leading '-' is rejected instead of silently
/// wrapping around, and trailing junk ("12x") is an error.
bool ParseSize(const std::string& token, size_t* out) {
  if (token.empty()) return false;
  const char* begin = token.data();
  const char* end = begin + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

/// Strict double parse: whole token consumed, and the value is finite
/// (NaN/inf tokens parse under strtod but are meaningless as weights or
/// coordinates).
bool ParseFiniteDouble(const std::string& token, double* out) {
  if (token.empty() ||
      std::isspace(static_cast<unsigned char>(token.front()))) {
    return false;
  }
  char* parse_end = nullptr;
  *out = std::strtod(token.c_str(), &parse_end);
  return parse_end == token.c_str() + token.size() && std::isfinite(*out);
}

}  // namespace

LoadResult LoadDimacs(const std::string& gr_path,
                      const std::string& co_path) {
  std::ifstream gr(gr_path);
  if (!gr) return Fail("cannot open graph file: " + gr_path);

  GraphBuilder builder;
  bool have_problem_line = false;
  size_t declared_vertices = 0;
  size_t line_number = 0;
  std::string line;
  while (std::getline(gr, line)) {
    ++line_number;
    if (line.empty()) continue;
    switch (line[0]) {
      case 'c':  // comment
        break;
      case 'p': {
        // "p sp <n> <m>"
        if (have_problem_line) {
          return FailAt(gr_path, line_number, "duplicate problem line", line);
        }
        const auto tokens = Tokenize(line);
        size_t n = 0, m = 0;
        if (tokens.size() != 4 || tokens[1] != "sp" ||
            !ParseSize(tokens[2], &n) || !ParseSize(tokens[3], &m)) {
          return FailAt(gr_path, line_number, "malformed problem line", line);
        }
        if (n == 0) {
          return FailAt(gr_path, line_number,
                        "problem line declares zero vertices", line);
        }
        have_problem_line = true;
        declared_vertices = n;
        builder.Resize(n);
        break;
      }
      case 'a': {
        if (!have_problem_line) {
          return FailAt(gr_path, line_number,
                        "arc line before the problem line", line);
        }
        const auto tokens = Tokenize(line);
        size_t u = 0, v = 0;
        double w = 0.0;
        if (tokens.size() != 4 || !ParseSize(tokens[1], &u) ||
            !ParseSize(tokens[2], &v)) {
          return FailAt(gr_path, line_number, "malformed arc line", line);
        }
        if (u == 0 || v == 0 || u > declared_vertices ||
            v > declared_vertices) {
          return FailAt(gr_path, line_number,
                        "arc references undeclared vertex (ids are 1.." +
                            std::to_string(declared_vertices) + ")",
                        line);
        }
        if (!ParseFiniteDouble(tokens[3], &w)) {
          return FailAt(gr_path, line_number,
                        "arc weight is not a finite number", line);
        }
        if (w <= 0.0) {
          return FailAt(gr_path, line_number, "non-positive arc weight", line);
        }
        // DIMACS ids are 1-based.
        builder.AddEdge(static_cast<VertexId>(u - 1),
                        static_cast<VertexId>(v - 1), w);
        break;
      }
      default:
        return FailAt(gr_path, line_number, "unrecognized line", line);
    }
  }
  if (!have_problem_line) return Fail("no problem line in " + gr_path);

  Graph graph = builder.Build();

  if (!co_path.empty()) {
    std::ifstream co(co_path);
    if (!co) return Fail("cannot open coordinate file: " + co_path);
    std::vector<Point> coords(graph.NumVertices());
    std::vector<bool> seen(graph.NumVertices(), false);
    line_number = 0;
    while (std::getline(co, line)) {
      ++line_number;
      if (line.empty() || line[0] == 'c' || line[0] == 'p') continue;
      if (line[0] == 'v') {
        const auto tokens = Tokenize(line);
        size_t id = 0;
        double x = 0.0, y = 0.0;
        if (tokens.size() != 4 || !ParseSize(tokens[1], &id)) {
          return FailAt(co_path, line_number, "malformed coordinate line",
                        line);
        }
        if (id == 0 || id > coords.size()) {
          return FailAt(co_path, line_number,
                        "coordinate for undeclared vertex (ids are 1.." +
                            std::to_string(coords.size()) + ")",
                        line);
        }
        if (!ParseFiniteDouble(tokens[2], &x) ||
            !ParseFiniteDouble(tokens[3], &y)) {
          return FailAt(co_path, line_number,
                        "coordinate is not a finite number", line);
        }
        if (seen[id - 1]) {
          return FailAt(co_path, line_number,
                        "duplicate coordinate for vertex " +
                            std::to_string(id),
                        line);
        }
        coords[id - 1] = Point{x, y};
        seen[id - 1] = true;
      } else {
        return FailAt(co_path, line_number, "unrecognized coordinate line",
                      line);
      }
    }
    for (size_t i = 0; i < seen.size(); ++i) {
      if (!seen[i]) {
        return Fail("missing coordinate for vertex " + std::to_string(i + 1) +
                    " in " + co_path);
      }
    }
    // Rebuild with coordinates attached.
    GraphBuilder with_coords;
    for (const Point& p : coords) with_coords.AddVertex(p);
    for (VertexId u = 0; u < graph.NumVertices(); ++u) {
      for (const Arc& a : graph.Neighbors(u)) {
        if (u < a.to) with_coords.AddEdge(u, a.to, a.weight);
      }
    }
    LoadResult r;
    r.graph = with_coords.Build();
    return r;
  }

  LoadResult r;
  r.graph = std::move(graph);
  return r;
}

bool SaveDimacs(const Graph& graph, const std::string& gr_path,
                const std::string& co_path, double coord_scale) {
  std::ofstream gr(gr_path);
  if (!gr) return false;
  gr << "c fannr road network\n";
  gr << "p sp " << graph.NumVertices() << ' ' << graph.NumEdges() * 2 << '\n';
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (const Arc& a : graph.Neighbors(u)) {
      gr << "a " << (u + 1) << ' ' << (a.to + 1) << ' ' << a.weight << '\n';
    }
  }
  if (!gr) return false;

  if (!co_path.empty() && graph.HasCoordinates()) {
    std::ofstream co(co_path);
    if (!co) return false;
    co << "c fannr coordinates\n";
    for (VertexId u = 0; u < graph.NumVertices(); ++u) {
      const Point& p = graph.Coord(u);
      co << "v " << (u + 1) << ' '
         << static_cast<long long>(p.x * coord_scale) << ' '
         << static_cast<long long>(p.y * coord_scale) << '\n';
    }
    if (!co) return false;
  }
  return true;
}

}  // namespace fannr
