#include "graph/io.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string_view>
#include <vector>

#include "common/mmap_file.h"
#include "engine/thread_pool.h"
#include "graph/builder.h"

namespace fannr {

namespace {

LoadResult Fail(std::string message) {
  LoadResult r;
  r.error = std::move(message);
  return r;
}

/// "<path>:<line>: <message>: '<line text>'" — every parse error names
/// its exact source line so corrupt multi-gigabyte inputs are debuggable.
LoadResult FailAt(const std::string& path, size_t line_number,
                  const std::string& message, std::string_view line) {
  return Fail(path + ":" + std::to_string(line_number) + ": " + message +
              ": '" + std::string(line) + "'");
}

/// Splits on runs of spaces/tabs (DIMACS is whitespace-delimited) into
/// `out`, stopping early once more than `max_tokens` exist (every valid
/// DIMACS line has at most 4; callers only need "too many" to reject).
size_t TokenizeView(std::string_view line, std::string_view* out,
                    size_t max_tokens) {
  size_t count = 0;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    const size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i > start) {
      if (count == max_tokens) return count + 1;  // "too many" marker
      out[count++] = line.substr(start, i - start);
    }
  }
  return count;
}

/// Strict unsigned parse: the whole token must be a decimal number.
/// Unlike sscanf("%zu"), a leading '-' is rejected instead of silently
/// wrapping around, and trailing junk ("12x") is an error.
bool ParseSize(std::string_view token, size_t* out) {
  if (token.empty()) return false;
  const char* begin = token.data();
  const char* end = begin + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

/// Strict double parse: whole token consumed, and the value is finite
/// (NaN/inf tokens parse under strtod but are meaningless as weights or
/// coordinates). strtod needs a NUL terminator, so the token is copied
/// to a small stack buffer — tokens are views into the file mapping.
bool ParseFiniteDouble(std::string_view token, double* out) {
  if (token.empty() ||
      std::isspace(static_cast<unsigned char>(token.front()))) {
    return false;
  }
  char stack_buf[64];
  std::string heap_buf;
  const char* cstr;
  if (token.size() < sizeof(stack_buf)) {
    std::memcpy(stack_buf, token.data(), token.size());
    stack_buf[token.size()] = '\0';
    cstr = stack_buf;
  } else {
    heap_buf.assign(token);
    cstr = heap_buf.c_str();
  }
  char* parse_end = nullptr;
  *out = std::strtod(cstr, &parse_end);
  return parse_end == cstr + token.size() && std::isfinite(*out);
}

// ---------------------------------------------------------------------------
// Shared per-line classifiers. The sequential prefix scan and every
// parallel chunk worker go through the same functions, so the two modes
// cannot drift: same accepted lines, same error messages.
// ---------------------------------------------------------------------------

struct EdgeRec {
  VertexId u;  // 0-based
  VertexId v;
  Weight w;
};

enum class GrLine { kSkip, kProblem, kEdge, kError };

/// Classifies one `.gr` line. On kEdge fills `edge` (already validated
/// and 0-based); on kError fills `message`. `have_problem_line` is true
/// once the problem line was consumed by the prefix scan — any further
/// 'p' line is a duplicate.
GrLine ClassifyGrLine(std::string_view line, bool have_problem_line,
                      size_t declared_vertices, EdgeRec* edge,
                      std::string* message) {
  if (line.empty()) return GrLine::kSkip;
  switch (line[0]) {
    case 'c':  // comment
      return GrLine::kSkip;
    case 'p':
      if (have_problem_line) {
        *message = "duplicate problem line";
        return GrLine::kError;
      }
      return GrLine::kProblem;
    case 'a': {
      if (!have_problem_line) {
        *message = "arc line before the problem line";
        return GrLine::kError;
      }
      std::string_view tokens[4];
      size_t u = 0, v = 0;
      double w = 0.0;
      if (TokenizeView(line, tokens, 4) != 4 || !ParseSize(tokens[1], &u) ||
          !ParseSize(tokens[2], &v)) {
        *message = "malformed arc line";
        return GrLine::kError;
      }
      if (u == 0 || v == 0 || u > declared_vertices ||
          v > declared_vertices) {
        *message = "arc references undeclared vertex (ids are 1.." +
                   std::to_string(declared_vertices) + ")";
        return GrLine::kError;
      }
      if (!ParseFiniteDouble(tokens[3], &w)) {
        *message = "arc weight is not a finite number";
        return GrLine::kError;
      }
      if (w <= 0.0) {
        *message = "non-positive arc weight";
        return GrLine::kError;
      }
      // DIMACS ids are 1-based.
      edge->u = static_cast<VertexId>(u - 1);
      edge->v = static_cast<VertexId>(v - 1);
      edge->w = w;
      return GrLine::kEdge;
    }
    default:
      *message = "unrecognized line";
      return GrLine::kError;
  }
}

/// Parses "p sp <n> <m>". Fills `n` or `message`.
bool ParseProblemLine(std::string_view line, size_t* n, std::string* message) {
  std::string_view tokens[4];
  size_t m = 0;
  if (TokenizeView(line, tokens, 4) != 4 || tokens[1] != "sp" ||
      !ParseSize(tokens[2], n) || !ParseSize(tokens[3], &m)) {
    *message = "malformed problem line";
    return false;
  }
  if (*n == 0) {
    *message = "problem line declares zero vertices";
    return false;
  }
  // Vertex ids are VertexId (uint32_t) with kInvalidVertex reserved as a
  // sentinel; a declared count beyond that would silently truncate in
  // the 1-based -> 0-based cast below, so it is rejected here with the
  // line that declared it.
  if (*n > static_cast<size_t>(kInvalidVertex)) {
    *message = "problem line declares more vertices than supported (max " +
               std::to_string(kInvalidVertex) + ")";
    return false;
  }
  return true;
}

struct CoordRec {
  size_t id = 0;  // 1-based, validated in range
  Point p;
  size_t local_line = 0;    // 1-based within the chunk
  std::string_view text;    // the source line, for apply-time errors
};

enum class CoLine { kSkip, kCoord, kError };

/// Classifies one `.co` line. On kCoord fills id/p of `rec`; on kError
/// fills `message`. Duplicate detection is stateful and happens at
/// apply time, in file order.
CoLine ClassifyCoLine(std::string_view line, size_t num_vertices,
                      CoordRec* rec, std::string* message) {
  if (line.empty() || line[0] == 'c' || line[0] == 'p') return CoLine::kSkip;
  if (line[0] != 'v') {
    *message = "unrecognized coordinate line";
    return CoLine::kError;
  }
  std::string_view tokens[4];
  size_t id = 0;
  double x = 0.0, y = 0.0;
  if (TokenizeView(line, tokens, 4) != 4 || !ParseSize(tokens[1], &id)) {
    *message = "malformed coordinate line";
    return CoLine::kError;
  }
  if (id == 0 || id > num_vertices) {
    *message = "coordinate for undeclared vertex (ids are 1.." +
               std::to_string(num_vertices) + ")";
    return CoLine::kError;
  }
  if (!ParseFiniteDouble(tokens[2], &x) || !ParseFiniteDouble(tokens[3], &y)) {
    *message = "coordinate is not a finite number";
    return CoLine::kError;
  }
  rec->id = id;
  rec->p = Point{x, y};
  return CoLine::kCoord;
}

// ---------------------------------------------------------------------------
// Chunked parallel parse.
// ---------------------------------------------------------------------------

/// Splits `text` into about `target_chunks` newline-aligned pieces (each
/// at least 1 MiB so tiny files stay single-chunk). Every byte of `text`
/// lands in exactly one chunk and no line straddles a boundary.
std::vector<std::string_view> SplitChunks(std::string_view text,
                                          size_t target_chunks) {
  std::vector<std::string_view> chunks;
  if (text.empty()) return chunks;
  constexpr size_t kMinChunkBytes = size_t{1} << 20;
  const size_t per = std::max(
      kMinChunkBytes, text.size() / std::max<size_t>(1, target_chunks) + 1);
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = std::min(text.size(), pos + per);
    if (end < text.size()) {
      const size_t nl = text.find('\n', end);
      end = (nl == std::string_view::npos) ? text.size() : nl + 1;
    }
    chunks.push_back(text.substr(pos, end - pos));
    pos = end;
  }
  return chunks;
}

/// Per-chunk parse output. `num_lines` counts every line in the chunk
/// (getline framing: a trailing '\n' does not start an empty extra
/// line) so global line numbers prefix-sum across chunks. A worker
/// stops at its first error; chunks are in file order, so the first
/// errored chunk holds the earliest offending line of the whole file.
template <typename Rec>
struct ChunkResult {
  std::vector<Rec> recs;
  size_t num_lines = 0;
  bool has_error = false;
  size_t error_line = 0;  // 1-based within the chunk
  std::string error_message;
  std::string error_text;
};

/// Runs `parse_line(line, chunk_result)` (returning false on error) for
/// each line of each chunk, inline when `pool` is null.
template <typename Rec, typename ParseLine>
std::vector<ChunkResult<Rec>> ParseChunks(
    const std::vector<std::string_view>& chunks, ThreadPool* pool,
    const ParseLine& parse_line) {
  std::vector<ChunkResult<Rec>> results(chunks.size());
  auto parse_chunk = [&](size_t ci) {
    std::string_view text = chunks[ci];
    ChunkResult<Rec>& out = results[ci];
    size_t pos = 0;
    while (pos < text.size()) {
      const size_t eol = text.find('\n', pos);
      const size_t end = (eol == std::string_view::npos) ? text.size() : eol;
      const std::string_view line = text.substr(pos, end - pos);
      pos = (eol == std::string_view::npos) ? text.size() : eol + 1;
      ++out.num_lines;
      std::string message;
      if (!parse_line(line, &out, &message)) {
        out.has_error = true;
        out.error_line = out.num_lines;
        out.error_message = std::move(message);
        out.error_text = std::string(line);
        // Keep counting lines? Not needed: later chunks' line counts
        // are independent, and the earliest error is in an earlier
        // chunk or this line.
        break;
      }
    }
    return;
  };
  if (pool == nullptr || chunks.size() <= 1) {
    for (size_t ci = 0; ci < chunks.size(); ++ci) parse_chunk(ci);
  } else {
    pool->ParallelFor(chunks.size(),
                      [&](size_t ci, size_t /*worker*/) { parse_chunk(ci); });
  }
  return results;
}

}  // namespace

LoadResult LoadDimacs(const std::string& gr_path, const std::string& co_path,
                      ThreadPool* pool) {
  auto gr_map = MmapFile::Open(gr_path);
  if (!gr_map) return Fail("cannot open graph file: " + gr_path);
  const std::string_view gr_text(reinterpret_cast<const char*>(gr_map->data()),
                                 gr_map->size());

  // Sequential prefix: comments up to and including the problem line.
  // Everything before the 'p' line is cheap to scan inline, and doing so
  // keeps the "arc line before the problem line" / "no problem line"
  // contract trivially identical to the v1 loader.
  GraphBuilder builder;
  size_t declared_vertices = 0;
  size_t prefix_lines = 0;  // lines consumed, including the 'p' line
  size_t body_offset = std::string_view::npos;
  {
    size_t pos = 0;
    bool found_problem = false;
    while (pos < gr_text.size()) {
      const size_t eol = gr_text.find('\n', pos);
      const size_t end = (eol == std::string_view::npos) ? gr_text.size() : eol;
      const std::string_view line = gr_text.substr(pos, end - pos);
      pos = (eol == std::string_view::npos) ? gr_text.size() : eol + 1;
      ++prefix_lines;
      EdgeRec edge;
      std::string message;
      switch (ClassifyGrLine(line, /*have_problem_line=*/false,
                             declared_vertices, &edge, &message)) {
        case GrLine::kSkip:
          break;
        case GrLine::kProblem: {
          if (!ParseProblemLine(line, &declared_vertices, &message)) {
            return FailAt(gr_path, prefix_lines, message, line);
          }
          builder.Resize(declared_vertices);
          found_problem = true;
          body_offset = pos;
          break;
        }
        case GrLine::kEdge:  // unreachable before the problem line
        case GrLine::kError:
          return FailAt(gr_path, prefix_lines, message, line);
      }
      if (found_problem) break;
    }
    if (!found_problem) return Fail("no problem line in " + gr_path);
  }

  // Body: newline-aligned chunks parsed independently, fed to the
  // builder in file order (bitwise-identical graph to a sequential
  // parse; the builder sees the exact same edge sequence).
  {
    const std::string_view body = gr_text.substr(body_offset);
    const size_t target = pool ? pool->num_workers() * 4 : 1;
    const std::vector<std::string_view> chunks = SplitChunks(body, target);
    auto results = ParseChunks<EdgeRec>(
        chunks, pool,
        [&](std::string_view line, ChunkResult<EdgeRec>* out,
            std::string* message) {
          EdgeRec edge;
          switch (ClassifyGrLine(line, /*have_problem_line=*/true,
                                 declared_vertices, &edge, message)) {
            case GrLine::kSkip:
              return true;
            case GrLine::kEdge:
              out->recs.push_back(edge);
              return true;
            default:
              return false;
          }
        });
    size_t line_base = prefix_lines;
    for (const auto& cr : results) {
      if (cr.has_error) {
        return FailAt(gr_path, line_base + cr.error_line, cr.error_message,
                      cr.error_text);
      }
      line_base += cr.num_lines;
    }
    for (const auto& cr : results) {
      for (const EdgeRec& e : cr.recs) builder.AddEdge(e.u, e.v, e.w);
    }
  }

  Graph graph = builder.Build();
  gr_map.reset();  // drop the mapping before the (optional) .co pass

  if (!co_path.empty()) {
    auto co_map = MmapFile::Open(co_path);
    if (!co_map) return Fail("cannot open coordinate file: " + co_path);
    const std::string_view co_text(
        reinterpret_cast<const char*>(co_map->data()), co_map->size());

    const size_t target = pool ? pool->num_workers() * 4 : 1;
    const std::vector<std::string_view> chunks = SplitChunks(co_text, target);
    auto results = ParseChunks<CoordRec>(
        chunks, pool,
        [&](std::string_view line, ChunkResult<CoordRec>* out,
            std::string* message) {
          CoordRec rec;
          switch (ClassifyCoLine(line, graph.NumVertices(), &rec, message)) {
            case CoLine::kSkip:
              return true;
            case CoLine::kCoord:
              rec.local_line = out->num_lines;
              rec.text = line;
              out->recs.push_back(rec);
              return true;
            default:
              return false;
          }
        });

    // Apply in file order: duplicate detection is stateful, and running
    // it here (instead of inside the workers) reports the same
    // second-occurrence line a sequential scan would.
    std::vector<Point> coords(graph.NumVertices());
    std::vector<bool> seen(graph.NumVertices(), false);
    size_t line_base = 0;
    for (const auto& cr : results) {
      if (cr.has_error) {
        return FailAt(co_path, line_base + cr.error_line, cr.error_message,
                      cr.error_text);
      }
      for (const CoordRec& rec : cr.recs) {
        if (seen[rec.id - 1]) {
          return FailAt(
              co_path, line_base + rec.local_line,
              "duplicate coordinate for vertex " + std::to_string(rec.id),
              rec.text);
        }
        coords[rec.id - 1] = rec.p;
        seen[rec.id - 1] = true;
      }
      line_base += cr.num_lines;
    }
    for (size_t i = 0; i < seen.size(); ++i) {
      if (!seen[i]) {
        return Fail("missing coordinate for vertex " + std::to_string(i + 1) +
                    " in " + co_path);
      }
    }
    // Rebuild with coordinates attached.
    GraphBuilder with_coords;
    for (const Point& p : coords) with_coords.AddVertex(p);
    for (VertexId u = 0; u < graph.NumVertices(); ++u) {
      for (const Arc& a : graph.Neighbors(u)) {
        if (u < a.to) with_coords.AddEdge(u, a.to, a.weight);
      }
    }
    LoadResult r;
    r.graph = with_coords.Build();
    return r;
  }

  LoadResult r;
  r.graph = std::move(graph);
  return r;
}

bool SaveDimacs(const Graph& graph, const std::string& gr_path,
                const std::string& co_path, double coord_scale) {
  std::ofstream gr(gr_path);
  if (!gr) return false;
  gr << "c fannr road network\n";
  gr << "p sp " << graph.NumVertices() << ' ' << graph.NumEdges() * 2 << '\n';
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (const Arc& a : graph.Neighbors(u)) {
      gr << "a " << (u + 1) << ' ' << (a.to + 1) << ' ' << a.weight << '\n';
    }
  }
  if (!gr) return false;

  if (!co_path.empty() && graph.HasCoordinates()) {
    std::ofstream co(co_path);
    if (!co) return false;
    co << "c fannr coordinates\n";
    for (VertexId u = 0; u < graph.NumVertices(); ++u) {
      const Point& p = graph.Coord(u);
      co << "v " << (u + 1) << ' '
         << static_cast<long long>(p.x * coord_scale) << ' '
         << static_cast<long long>(p.y * coord_scale) << '\n';
    }
    if (!co) return false;
  }
  return true;
}

}  // namespace fannr
