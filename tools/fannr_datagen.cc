// fannr_datagen — generate synthetic road networks in DIMACS format.
//
//   fannr_datagen preset <TEST|DE|ME|COL|NW> <out.gr> <out.co>
//   fannr_datagen grid <rows> <cols> <seed> <out.gr> <out.co>
//   fannr_datagen geometric <n> <seed> <out.gr> <out.co>
//
// The .co coordinates are scaled to integers (x1000), matching the DIMACS
// convention; reload with LoadDimacs + MakeEuclideanConsistent.

#include <cstdio>
#include <cmath>
#include <cstdlib>
#include <string>

#include "common/rng.h"
#include "graph/generator.h"
#include "graph/io.h"
#include "graph/presets.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  fannr_datagen preset <TEST|DE|ME|COL|NW> <out.gr> <out.co>\n"
      "  fannr_datagen grid <rows> <cols> <seed> <out.gr> <out.co>\n"
      "  fannr_datagen geometric <n> <seed> <out.gr> <out.co>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fannr;
  if (argc < 2) return Usage();
  const std::string mode = argv[1];

  Graph graph({}, {});
  std::string gr_path, co_path;
  if (mode == "preset" && argc == 5) {
    if (!IsPresetName(argv[2])) {
      std::fprintf(stderr, "unknown preset: %s\n", argv[2]);
      return 2;
    }
    graph = BuildPreset(argv[2]);
    gr_path = argv[3];
    co_path = argv[4];
  } else if (mode == "grid" && argc == 7) {
    GridNetworkOptions options;
    options.rows = std::strtoul(argv[2], nullptr, 10);
    options.cols = std::strtoul(argv[3], nullptr, 10);
    Rng rng(std::strtoull(argv[4], nullptr, 10));
    graph = GenerateGridNetwork(options, rng);
    gr_path = argv[5];
    co_path = argv[6];
  } else if (mode == "geometric" && argc == 6) {
    GeometricNetworkOptions options;
    options.num_vertices = std::strtoul(argv[2], nullptr, 10);
    options.extent = 1000.0 * std::sqrt(static_cast<double>(
                                  options.num_vertices));
    options.radius = options.extent /
                     std::sqrt(static_cast<double>(options.num_vertices)) *
                     1.7;
    Rng rng(std::strtoull(argv[3], nullptr, 10));
    graph = GenerateGeometricNetwork(options, rng);
    gr_path = argv[4];
    co_path = argv[5];
  } else {
    return Usage();
  }

  if (!SaveDimacs(graph, gr_path, co_path, /*coord_scale=*/1000.0)) {
    std::fprintf(stderr, "failed to write %s / %s\n", gr_path.c_str(),
                 co_path.c_str());
    return 1;
  }
  std::printf("wrote %zu vertices, %zu edges to %s (+%s)\n",
              graph.NumVertices(), graph.NumEdges(), gr_path.c_str(),
              co_path.c_str());
  return 0;
}
