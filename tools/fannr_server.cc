// fannr_server — serve FANN_R queries over the binary wire protocol.
//
//   fannr_server [options]
//
// Graph source (pick one):
//   --preset NAME            synthetic preset (TEST | DE | ME | COL | NW)
//   --graph FILE.gr          DIMACS graph (largest component is used)
//   --coords FILE.co         DIMACS coordinates (with --graph)
//
// Serving:
//   --host ADDR              bind address            (default 127.0.0.1)
//   --port N                 bind port; 0 = ephemeral (default 0)
//   --threads N              engine worker threads   (default 1)
//   --engine ENGINE          worker g_phi oracle: cached | ine | astar |
//                            gtree | phl | ier-astar | ier-gtree |
//                            ier-phl | ch        (default cached)
//   --max-connections N      live connection cap     (default 64)
//   --max-queue-depth N      admission queue bound   (default 128)
//   --default-deadline-ms F  server-wide e2e deadline; 0 = none
//   --drain-deadline-ms F    drain budget on shutdown (default 10000)
//
// Continuous queries (DESIGN.md §2.14):
//   --max-subscriptions-per-connection N   (default 8; 0 = unlimited)
//   --max-subscriptions-total N            (default 1024; 0 = unlimited)
//
// Multi-node (DESIGN.md §2.13):
//   --wal FILE               durable update log: replayed onto the
//                            freshly loaded graph at startup, then
//                            appended to for every applied batch
//   --shard-plan FILE        refuse to serve unless the plan was built
//                            for this exact graph (fingerprint check,
//                            made at epoch 0 — before the WAL replay)
//
// Prints "listening on HOST:PORT" once ready (scripts parse this line),
// then blocks until SIGTERM/SIGINT or a SHUTDOWN frame, drains, prints
// the drain accounting, and exits 0 iff the drain met its deadline.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/timer.h"
#include "dynamic/wal.h"
#include "fann/fannr.h"
#include "graph/components.h"
#include "net/server.h"
#include "net/shard_plan.h"
#include "sp/ch/contraction_hierarchy.h"
#include "sp/gtree/gtree.h"
#include "sp/label/hub_labels.h"

namespace {

using namespace fannr;

net::FannServer* g_server = nullptr;

void HandleSignal(int) {
  // RequestShutdown is async-signal-safe by contract (one write(2) to
  // the wakeup pipe plus a relaxed store).
  if (g_server != nullptr) g_server->RequestShutdown();
}

struct Args {
  std::map<std::string, std::string> values;

  bool Has(const std::string& key) const { return values.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values.find(key);
    return it != values.end() ? it->second : fallback;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values.find(key);
    return it != values.end() ? std::strtod(it->second.c_str(), nullptr)
                              : fallback;
  }
  size_t GetSize(const std::string& key, size_t fallback) const {
    auto it = values.find(key);
    return it != values.end()
               ? std::strtoull(it->second.c_str(), nullptr, 10)
               : fallback;
  }
};

std::optional<GphiKind> ParseEngine(const std::string& name) {
  if (name == "ine") return GphiKind::kIne;
  if (name == "astar") return GphiKind::kAStar;
  if (name == "gtree") return GphiKind::kGTree;
  if (name == "phl") return GphiKind::kPhl;
  if (name == "ier-astar") return GphiKind::kIerAStar;
  if (name == "ier-gtree") return GphiKind::kIerGTree;
  if (name == "ier-phl") return GphiKind::kIerPhl;
  if (name == "ch") return GphiKind::kCh;
  return std::nullopt;
}

int Fail(const char* message) {
  std::fprintf(stderr, "fannr_server: %s (run with --help)\n", message);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("see the header of tools/fannr_server.cc for usage\n");
      return 0;
    }
    if (std::strncmp(argv[i], "--", 2) == 0 && i + 1 < argc) {
      args.values[argv[i] + 2] = argv[i + 1];
      ++i;
    } else {
      return Fail("malformed arguments");
    }
  }

  // --- graph ---------------------------------------------------------------
  Timer load_timer;
  std::optional<Graph> graph;
  if (args.Has("preset")) {
    const std::string name = args.Get("preset", "TEST");
    if (!IsPresetName(name)) return Fail("unknown preset");
    graph = BuildPreset(name);
  } else if (args.Has("graph")) {
    LoadResult r = LoadDimacs(args.Get("graph", ""), args.Get("coords", ""));
    if (!r.ok()) {
      std::fprintf(stderr, "load failed: %s\n", r.error.c_str());
      return 1;
    }
    LargestComponent lc = ExtractLargestComponent(*r.graph);
    graph = std::move(lc.graph);
    if (graph->HasCoordinates()) graph->MakeEuclideanConsistent();
  } else {
    graph = BuildPreset("TEST");
  }
  std::printf("graph: %zu vertices, %zu edges (loaded in %.2fs)\n",
              graph->NumVertices(), graph->NumEdges(), load_timer.Seconds());

  // --- multi-node: shard-plan agreement, then WAL catch-up -----------------
  // Both checks run against the epoch-0 fingerprint: the plan was built
  // from the pristine graph, and the WAL's own header is stamped with
  // it — replaying first would break both comparisons.
  if (args.Has("shard-plan")) {
    std::string plan_error;
    const std::optional<net::ShardPlan> plan =
        net::ShardPlan::Load(args.Get("shard-plan", ""), &plan_error);
    if (!plan.has_value()) {
      std::fprintf(stderr, "fannr_server: shard plan: %s\n",
                   plan_error.c_str());
      return 1;
    }
    if (!(plan->fingerprint() == graph->Fingerprint())) {
      std::fprintf(stderr,
                   "fannr_server: shard plan was built for a different graph "
                   "(fingerprint mismatch) — refusing to serve\n");
      return 1;
    }
    std::printf("shard plan: %u shards, fingerprint ok\n",
                plan->num_shards());
  }
  std::unique_ptr<dynamic::UpdateWal> wal;
  if (args.Has("wal")) {
    std::string wal_error;
    wal = dynamic::UpdateWal::Open(args.Get("wal", ""), graph->Fingerprint(),
                                   &wal_error);
    if (wal == nullptr) {
      std::fprintf(stderr, "fannr_server: wal: %s\n", wal_error.c_str());
      return 1;
    }
    const size_t replayed = wal->ReplayInto(*graph, &wal_error);
    if (!wal_error.empty()) {
      std::fprintf(stderr, "fannr_server: wal replay: %s\n",
                   wal_error.c_str());
      return 1;
    }
    std::printf("wal: replayed %zu record%s, graph at epoch %llu\n", replayed,
                replayed == 1 ? "" : "s",
                static_cast<unsigned long long>(graph->epoch()));
  }

  // --- engine resources ----------------------------------------------------
  const std::string engine_name = args.Get("engine", "cached");
  std::optional<GphiKind> kind;
  if (engine_name != "cached") {
    kind = ParseEngine(engine_name);
    if (!kind.has_value()) return Fail("unknown engine");
  }
  GphiResources resources;
  resources.graph = &*graph;
  std::optional<HubLabels> labels;
  std::optional<GTree> gtree;
  std::optional<ContractionHierarchy> ch;
  Timer index_timer;
  if (kind == GphiKind::kPhl || kind == GphiKind::kIerPhl) {
    labels = HubLabels::Build(*graph);
    resources.labels = &*labels;
  }
  if (kind == GphiKind::kGTree || kind == GphiKind::kIerGTree) {
    gtree = GTree::Build(*graph);
    resources.gtree = &*gtree;
  }
  if (kind == GphiKind::kCh) {
    ch = ContractionHierarchy::Build(*graph);
    resources.ch = &*ch;
  }
  if (index_timer.Seconds() > 0.01) {
    std::printf("index build: %.2fs\n", index_timer.Seconds());
  }

  // --- server --------------------------------------------------------------
  net::ServerConfig config;
  config.host = args.Get("host", "127.0.0.1");
  config.port = static_cast<uint16_t>(args.GetSize("port", 0));
  config.max_connections = args.GetSize("max-connections", 64);
  config.max_queue_depth = args.GetSize("max-queue-depth", 128);
  config.default_deadline_ms = args.GetDouble("default-deadline-ms", 0.0);
  config.drain_deadline_ms = args.GetDouble("drain-deadline-ms", 10'000.0);
  config.max_subscriptions_per_connection =
      args.GetSize("max-subscriptions-per-connection", 8);
  config.max_subscriptions_total =
      args.GetSize("max-subscriptions-total", 1024);
  config.engine_options.num_threads = args.GetSize("threads", 1);
  config.engine_options.gphi_kind = kind;
  config.wal = wal.get();

  net::FannServer server(&*graph, resources, std::move(config));
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "fannr_server: start failed: %s\n", error.c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  std::printf("listening on %s:%u\n", args.Get("host", "127.0.0.1").c_str(),
              server.port());
  std::fflush(stdout);

  const net::DrainStats stats = server.Wait();
  g_server = nullptr;
  std::printf(
      "drained in %.1f ms (%zu item%s executed, %zu aborted, %s deadline)\n",
      stats.drain_ms, stats.drained_items,
      stats.drained_items == 1 ? "" : "s", stats.aborted_items,
      stats.within_deadline ? "within" : "PAST");
  std::printf("final stats:\n%s\n", stats.final_stats_json.c_str());
  return stats.within_deadline ? 0 : 1;
}
