// fannr_shardplan — build (or inspect) the vertex->shard assignment a
// sharded deployment agrees on.
//
//   fannr_shardplan --preset NAME --shards N --out FILE.plan
//   fannr_shardplan --graph FILE.gr [--coords FILE.co] --shards N --out F
//   fannr_shardplan --describe FILE.plan
//
// The plan is derived from the G-tree multiway partitioner, so shards
// receive spatially coherent vertex sets, and is stamped with the
// epoch-0 graph fingerprint. Router and every shard server load the
// same file and refuse to serve on a fingerprint mismatch — see
// DESIGN.md §2.13 and tools/fannr_router.cc.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>

#include "fann/fannr.h"
#include "graph/components.h"
#include "net/shard_plan.h"

namespace {

using namespace fannr;

struct Args {
  std::map<std::string, std::string> values;

  bool Has(const std::string& key) const { return values.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values.find(key);
    return it != values.end() ? it->second : fallback;
  }
  size_t GetSize(const std::string& key, size_t fallback) const {
    auto it = values.find(key);
    return it != values.end()
               ? std::strtoull(it->second.c_str(), nullptr, 10)
               : fallback;
  }
};

int Fail(const char* message) {
  std::fprintf(stderr, "fannr_shardplan: %s (run with --help)\n", message);
  return 2;
}

void Describe(const net::ShardPlan& plan) {
  std::printf("shards: %u\n", plan.num_shards());
  std::printf("vertices: %zu\n", plan.num_vertices());
  std::printf("fingerprint: {vertices: %llu, edges: %llu, weights: %llu}\n",
              static_cast<unsigned long long>(plan.fingerprint().vertices),
              static_cast<unsigned long long>(plan.fingerprint().edges),
              static_cast<unsigned long long>(
                  plan.fingerprint().weight_checksum));
  const std::vector<size_t> sizes = plan.ShardSizes();
  for (size_t s = 0; s < sizes.size(); ++s) {
    std::printf("shard %zu: %zu vertices\n", s, sizes[s]);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("see the header of tools/fannr_shardplan.cc for usage\n");
      return 0;
    }
    if (std::strncmp(argv[i], "--", 2) == 0 && i + 1 < argc) {
      args.values[argv[i] + 2] = argv[i + 1];
      ++i;
    } else {
      return Fail("malformed arguments");
    }
  }

  if (args.Has("describe")) {
    std::string error;
    const std::optional<net::ShardPlan> plan =
        net::ShardPlan::Load(args.Get("describe", ""), &error);
    if (!plan.has_value()) {
      std::fprintf(stderr, "fannr_shardplan: %s\n", error.c_str());
      return 1;
    }
    Describe(*plan);
    return 0;
  }

  std::optional<Graph> graph;
  if (args.Has("preset")) {
    const std::string name = args.Get("preset", "TEST");
    if (!IsPresetName(name)) return Fail("unknown preset");
    graph = BuildPreset(name);
  } else if (args.Has("graph")) {
    LoadResult r = LoadDimacs(args.Get("graph", ""), args.Get("coords", ""));
    if (!r.ok()) {
      std::fprintf(stderr, "fannr_shardplan: load failed: %s\n",
                   r.error.c_str());
      return 1;
    }
    LargestComponent lc = ExtractLargestComponent(*r.graph);
    graph = std::move(lc.graph);
    if (graph->HasCoordinates()) graph->MakeEuclideanConsistent();
  } else {
    return Fail("pick a graph: --preset, --graph, or --describe a plan");
  }

  const size_t shards = args.GetSize("shards", 0);
  if (shards < 2 || (shards & (shards - 1)) != 0) {
    return Fail("--shards must be a power of two >= 2");
  }
  const std::string out = args.Get("out", "");
  if (out.empty()) return Fail("--out FILE.plan is required");

  const net::ShardPlan plan =
      net::ShardPlan::Build(*graph, static_cast<uint32_t>(shards));
  std::string error;
  if (!plan.Save(out, &error)) {
    std::fprintf(stderr, "fannr_shardplan: %s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  Describe(plan);
  return 0;
}
