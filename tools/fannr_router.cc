// fannr_router — fan FANN_R queries out to a sharded fleet and merge
// the answers; replicate weight updates with epoch positioning.
//
//   fannr_router --plan FILE.plan --shard HOST:PORT --shard HOST:PORT...
//                [options]
//
// Options:
//   --host ADDR    bind address                       (default 127.0.0.1)
//   --port N       bind port; 0 = ephemeral           (default 0)
//   --wal FILE     durable replication history — lets a restarted router
//                  keep catching restarted replicas up (DESIGN.md §2.13)
//
// --shard is repeated once per shard, in shard-id order: the i-th flag
// is shard i of the plan. Their count must equal the plan's shard
// count. Every shard must be reachable at start.
//
// Prints "listening on HOST:PORT" once ready (scripts parse this line),
// then blocks until SIGTERM/SIGINT or a client SHUTDOWN frame. Shards
// are NOT shut down — they belong to the operator.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dynamic/wal.h"
#include "net/router.h"
#include "net/shard_plan.h"

namespace {

using namespace fannr;

net::FannRouter* g_router = nullptr;

void HandleSignal(int) {
  // Safe by the same contract as the server: one write(2) to an eventfd
  // plus a relaxed store.
  if (g_router != nullptr) g_router->RequestShutdown();
}

int Fail(const char* message) {
  std::fprintf(stderr, "fannr_router: %s (run with --help)\n", message);
  return 2;
}

std::optional<net::ShardAddress> ParseShard(const std::string& spec) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    return std::nullopt;
  }
  const unsigned long port = std::strtoul(spec.c_str() + colon + 1, nullptr, 10);
  if (port == 0 || port > 65535) return std::nullopt;
  net::ShardAddress address;
  address.host = spec.substr(0, colon);
  address.port = static_cast<uint16_t>(port);
  return address;
}

}  // namespace

int main(int argc, char** argv) {
  std::string plan_path;
  std::string wal_path;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::vector<net::ShardAddress> shards;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help") {
      std::printf("see the header of tools/fannr_router.cc for usage\n");
      return 0;
    }
    if (i + 1 >= argc) return Fail("malformed arguments");
    const std::string value = argv[++i];
    if (flag == "--plan") {
      plan_path = value;
    } else if (flag == "--shard") {
      const std::optional<net::ShardAddress> address = ParseShard(value);
      if (!address.has_value()) return Fail("--shard wants HOST:PORT");
      shards.push_back(*address);
    } else if (flag == "--host") {
      host = value;
    } else if (flag == "--port") {
      port = static_cast<uint16_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (flag == "--wal") {
      wal_path = value;
    } else {
      return Fail("unknown flag");
    }
  }
  if (plan_path.empty()) return Fail("--plan FILE.plan is required");
  if (shards.empty()) return Fail("at least one --shard HOST:PORT is required");

  std::string error;
  const std::optional<net::ShardPlan> plan =
      net::ShardPlan::Load(plan_path, &error);
  if (!plan.has_value()) {
    std::fprintf(stderr, "fannr_router: plan: %s\n", error.c_str());
    return 1;
  }
  if (shards.size() != plan->num_shards()) {
    std::fprintf(stderr,
                 "fannr_router: plan has %u shards but %zu --shard flags "
                 "were given\n",
                 plan->num_shards(), shards.size());
    return 1;
  }
  std::printf("plan: %u shards over %zu vertices\n", plan->num_shards(),
              plan->num_vertices());

  std::unique_ptr<dynamic::UpdateWal> wal;
  if (!wal_path.empty()) {
    wal = dynamic::UpdateWal::Open(wal_path, plan->fingerprint(), &error);
    if (wal == nullptr) {
      std::fprintf(stderr, "fannr_router: wal: %s\n", error.c_str());
      return 1;
    }
    std::printf("wal: %zu record%s on hand, history ends at epoch %llu\n",
                wal->records().size(), wal->records().size() == 1 ? "" : "s",
                static_cast<unsigned long long>(wal->end_epoch()));
  }

  net::RouterConfig config;
  config.host = host;
  config.port = port;
  config.shards = std::move(shards);
  config.wal = wal.get();

  net::FannRouter router(*plan, std::move(config));
  if (!router.Start(&error)) {
    std::fprintf(stderr, "fannr_router: start failed: %s\n", error.c_str());
    return 1;
  }
  g_router = &router;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  std::printf("replication position: epoch %llu\n",
              static_cast<unsigned long long>(router.repl_epoch()));
  std::printf("listening on %s:%u\n", host.c_str(), router.port());
  std::fflush(stdout);

  router.Wait();
  g_router = nullptr;
  std::printf("final stats:\n%s\n", router.StatsJson().c_str());
  return 0;
}
