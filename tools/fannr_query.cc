// fannr_query — run FANN_R queries from the command line.
//
//   fannr_query [options]
//
// Graph source (pick one):
//   --preset NAME          synthetic preset (TEST | DE | ME | COL | NW)
//   --graph FILE.gr        DIMACS graph (largest component is used)
//   --coords FILE.co       DIMACS coordinates (with --graph)
//
// Query:
//   --algorithm ALGO       gd | rlist | ier | exactmax | apxsum | ann | omp
//                          (default rlist)
//   --engine ENGINE        ine | astar | gtree | phl | ier-astar |
//                          ier-gtree | ier-phl | ch | cached
//                          (default ine; "cached" = Cached-SSSP oracle)
//   --agg max|sum          aggregate (default sum)
//   --phi F                flexibility in (0,1]          (default 0.5)
//   --k N                  top-k (k-FANN_R; 1 = plain)   (default 1)
//
// Workload:
//   --p-density F          data point density d          (default 0.001)
//   --q-size N             |Q|                           (default 128)
//   --q-coverage F         coverage ratio A              (default 0.10)
//   --q-clusters N         clusters C (1 = uniform)      (default 1)
//   --seed N               workload seed                 (default 1)
//
// Observability:
//   --stats                route the query through the batch engine with
//                          metrics enabled and print its execution trace
//                          (worker, phase timings, cache activity) and the
//                          batch report (k = 1, dispatchable algorithms
//                          only: gd | rlist | ier | exactmax | apxsum)
//   --slow-log FILE        with --stats: after the run, dump the engine's
//                          slow-query log ring as JSON to FILE ("-" =
//                          stdout). The threshold is 0 here, so the ring
//                          retains the query regardless of its solve time.
//
// Prints the answer triple, the flexible subset, and wall-clock timings.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/timer.h"
#include "engine/batch_engine.h"
#include "fann/fannr.h"
#include "graph/components.h"
#include "sp/ch/contraction_hierarchy.h"
#include "sp/gtree/gtree.h"
#include "sp/label/hub_labels.h"

namespace {

using namespace fannr;

struct Args {
  std::map<std::string, std::string> values;

  bool Has(const std::string& key) const { return values.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values.find(key);
    return it != values.end() ? it->second : fallback;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values.find(key);
    return it != values.end() ? std::strtod(it->second.c_str(), nullptr)
                              : fallback;
  }
  size_t GetSize(const std::string& key, size_t fallback) const {
    auto it = values.find(key);
    return it != values.end()
               ? std::strtoull(it->second.c_str(), nullptr, 10)
               : fallback;
  }
};

std::optional<GphiKind> ParseEngine(const std::string& name) {
  if (name == "ine") return GphiKind::kIne;
  if (name == "astar") return GphiKind::kAStar;
  if (name == "gtree") return GphiKind::kGTree;
  if (name == "phl") return GphiKind::kPhl;
  if (name == "ier-astar") return GphiKind::kIerAStar;
  if (name == "ier-gtree") return GphiKind::kIerGTree;
  if (name == "ier-phl") return GphiKind::kIerPhl;
  if (name == "ch") return GphiKind::kCh;
  return std::nullopt;
}

int Fail(const char* message) {
  std::fprintf(stderr, "fannr_query: %s (run with --help)\n", message);
  return 2;
}

void PrintResultLine(VertexId best, Weight distance,
                     const std::vector<VertexId>& subset) {
  std::printf("p* = v%u   d* = %.3f   |Q*_phi| = %zu\n", best, distance,
              subset.size());
  std::printf("Q*_phi = {");
  for (size_t i = 0; i < subset.size(); ++i) {
    std::printf("%sv%u", i ? ", " : "", subset[i]);
    if (i == 15 && subset.size() > 17) {
      std::printf(", ... (%zu more)", subset.size() - 16);
      break;
    }
  }
  std::printf("}\n");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("see the header of tools/fannr_query.cc for usage\n");
      return 0;
    }
    if (std::strcmp(argv[i], "--stats") == 0) {  // bare flag, no value
      args.values["stats"] = "1";
    } else if (std::strncmp(argv[i], "--", 2) == 0 && i + 1 < argc) {
      args.values[argv[i] + 2] = argv[i + 1];
      ++i;
    } else {
      return Fail("malformed arguments");
    }
  }

  // --- graph ---------------------------------------------------------------
  Timer load_timer;
  std::optional<Graph> graph;
  if (args.Has("preset")) {
    const std::string name = args.Get("preset", "TEST");
    if (!IsPresetName(name)) return Fail("unknown preset");
    graph = BuildPreset(name);
  } else if (args.Has("graph")) {
    LoadResult r = LoadDimacs(args.Get("graph", ""), args.Get("coords", ""));
    if (!r.ok()) {
      std::fprintf(stderr, "load failed: %s\n", r.error.c_str());
      return 1;
    }
    LargestComponent lc = ExtractLargestComponent(*r.graph);
    graph = std::move(lc.graph);
    if (graph->HasCoordinates()) graph->MakeEuclideanConsistent();
  } else {
    graph = BuildPreset("TEST");
  }
  std::printf("graph: %zu vertices, %zu edges (loaded in %.2fs)\n",
              graph->NumVertices(), graph->NumEdges(),
              load_timer.Seconds());

  // --- workload --------------------------------------------------------
  Rng rng(args.GetSize("seed", 1));
  const double density = args.GetDouble("p-density", 0.001);
  const size_t q_size = args.GetSize("q-size", 128);
  const double coverage = args.GetDouble("q-coverage", 0.10);
  const size_t clusters = args.GetSize("q-clusters", 1);
  IndexedVertexSet p(graph->NumVertices(),
                     GenerateDataPoints(*graph, density, rng));
  IndexedVertexSet q(
      graph->NumVertices(),
      clusters <= 1
          ? GenerateUniformQueryPoints(*graph, coverage, q_size, rng)
          : GenerateClusteredQueryPoints(*graph, coverage, q_size, clusters,
                                         rng));
  std::printf("workload: |P| = %zu (d = %g), |Q| = %zu (A = %g, C = %zu)\n",
              p.size(), density, q.size(), coverage, clusters);

  // --- engine ------------------------------------------------------------
  const std::string engine_name = args.Get("engine", "ine");
  // "cached" selects the batch engine's Cached-SSSP oracle (kind stays
  // nullopt); everything else is a Table I GphiKind.
  std::optional<GphiKind> kind;
  if (engine_name != "cached") {
    kind = ParseEngine(engine_name);
    if (!kind.has_value()) return Fail("unknown engine");
  }

  GphiResources resources;
  resources.graph = &*graph;
  std::optional<HubLabels> labels;
  std::optional<GTree> gtree;
  std::optional<ContractionHierarchy> ch;
  Timer index_timer;
  const std::string algorithm = args.Get("algorithm", "rlist");
  if (kind == GphiKind::kPhl || kind == GphiKind::kIerPhl) {
    labels = HubLabels::Build(*graph);
    resources.labels = &*labels;
  }
  if (kind == GphiKind::kGTree || kind == GphiKind::kIerGTree) {
    gtree = GTree::Build(*graph);
    resources.gtree = &*gtree;
  }
  if (kind == GphiKind::kCh) {
    ch = ContractionHierarchy::Build(*graph);
    resources.ch = &*ch;
  }
  if (index_timer.Seconds() > 0.01) {
    std::printf("index build: %.2fs\n", index_timer.Seconds());
  }
  auto engine = kind.has_value() ? MakeGphiEngine(*kind, resources)
                                 : MakeCachedSsspEngine(*graph, nullptr);

  // --- query ---------------------------------------------------------------
  const double phi = args.GetDouble("phi", 0.5);
  const Aggregate aggregate =
      args.Get("agg", "sum") == "max" ? Aggregate::kMax : Aggregate::kSum;
  const size_t top_k = args.GetSize("k", 1);
  FannQuery query{&*graph, &p, &q, phi, aggregate};
  std::printf("query: %s-FANN_R, phi = %g, algorithm = %s, engine = %s\n\n",
              AggregateName(aggregate).data(), phi, algorithm.c_str(),
              std::string(engine->name()).c_str());

  Timer solve_timer;
  if (args.Has("stats") && top_k > 1) {
    return Fail("--stats supports single queries only (k = 1)");
  }
  if (args.Has("stats")) {
    // Route through the batch engine so the observability layer (trace,
    // metrics registry, report) sees exactly one query.
    FannAlgorithm fann_algorithm;
    if (algorithm == "gd") {
      fann_algorithm = FannAlgorithm::kGd;
    } else if (algorithm == "rlist") {
      fann_algorithm = FannAlgorithm::kRList;
    } else if (algorithm == "ier") {
      fann_algorithm = FannAlgorithm::kIer;
    } else if (algorithm == "exactmax") {
      fann_algorithm = FannAlgorithm::kExactMax;
    } else if (algorithm == "apxsum") {
      fann_algorithm = FannAlgorithm::kApxSum;
    } else {
      return Fail("--stats requires gd | rlist | ier | exactmax | apxsum");
    }

    BatchOptions options;
    options.num_threads = 1;
    options.gphi_kind = kind;  // nullopt (= "cached") uses the shared cache
    options.enable_metrics = true;
    options.slow_query_threshold_ms = 0.0;
    BatchQueryEngine batch_engine(resources, options);
    FannrQuery job;
    job.query = query;
    job.algorithm = fann_algorithm;
    const auto results = batch_engine.Run({job});
    const FannResult& result = results[0];
    if (result.status == QueryStatus::kRejected) {
      std::fprintf(stderr, "query rejected: %s\n", result.error.c_str());
      return 1;
    }
    if (result.best == kInvalidVertex) {
      std::printf("no feasible answer (disconnected workload)\n");
    } else {
      PrintResultLine(result.best, result.distance, result.subset);
      std::printf("g_phi evaluations: %zu\n", result.gphi_evaluations);
    }
    std::printf("\n--- trace ---\n%s",
                obs::FormatTrace(batch_engine.last_traces()[0]).c_str());
    std::printf("--- report ---\n%s",
                batch_engine.last_report().ToText().c_str());
    if (args.Has("slow-log")) {
      const std::string path = args.Get("slow-log", "-");
      const std::string json = batch_engine.slow_query_log()->DumpJson();
      if (path == "-") {
        std::printf("--- slow-query log ---\n%s\n", json.c_str());
      } else {
        std::FILE* f = std::fopen(path.c_str(), "w");
        if (f == nullptr) {
          std::fprintf(stderr, "cannot write slow-query log to %s\n",
                       path.c_str());
          return 1;
        }
        std::fprintf(f, "%s\n", json.c_str());
        std::fclose(f);
        std::printf("slow-query log written to %s\n", path.c_str());
      }
    }
    std::printf("\nsolve time: %.2f ms\n", solve_timer.Millis());
    return 0;
  }
  if (args.Has("slow-log")) {
    return Fail("--slow-log requires --stats");
  }
  if (top_k > 1) {
    std::vector<KFannEntry> entries;
    if (algorithm == "gd") {
      entries = SolveKGd(query, top_k, *engine);
    } else if (algorithm == "rlist") {
      entries = SolveKRList(query, top_k, *engine);
    } else if (algorithm == "ier") {
      const RTree p_tree = BuildDataPointRTree(*graph, p);
      entries = SolveKIer(query, top_k, *engine, p_tree);
    } else if (algorithm == "exactmax") {
      entries = SolveKExactMax(query, top_k);
    } else {
      return Fail("algorithm does not support --k > 1");
    }
    for (size_t i = 0; i < entries.size(); ++i) {
      std::printf("#%zu  ", i + 1);
      PrintResultLine(entries[i].vertex, entries[i].distance,
                      entries[i].subset);
    }
  } else {
    FannResult result;
    if (algorithm == "gd") {
      result = SolveGd(query, *engine);
    } else if (algorithm == "rlist") {
      result = SolveRList(query, *engine);
    } else if (algorithm == "ier") {
      const RTree p_tree = BuildDataPointRTree(*graph, p);
      result = SolveIer(query, *engine, p_tree);
    } else if (algorithm == "exactmax") {
      if (aggregate != Aggregate::kMax) return Fail("exactmax needs --agg max");
      result = SolveExactMax(query);
    } else if (algorithm == "apxsum") {
      if (aggregate != Aggregate::kSum) return Fail("apxsum needs --agg sum");
      result = SolveApxSum(query, *engine);
    } else if (algorithm == "ann") {
      result = SolveAnn(*graph, p, q, aggregate, *engine);
    } else if (algorithm == "omp") {
      result = SolveOmp(*graph, q, phi, aggregate);
    } else {
      return Fail("unknown algorithm");
    }
    if (result.best == kInvalidVertex) {
      std::printf("no feasible answer (disconnected workload)\n");
    } else {
      PrintResultLine(result.best, result.distance, result.subset);
      std::printf("g_phi evaluations: %zu\n", result.gphi_evaluations);
    }
  }
  std::printf("\nsolve time: %.2f ms\n", solve_timer.Millis());
  return 0;
}
