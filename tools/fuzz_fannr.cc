// Differential fuzzer for the FANN_R solvers.
//
// Generates seeded adversarial scenarios (src/testing/scenario.h), runs
// every solver through the differential + invariant checker
// (src/testing/differential.h), and on violation writes a minimized
// self-contained reproducer to the corpus directory. Reproducers are
// replayed by tests/corpus_replay_test.cc, so every bug the fuzzer ever
// finds stays fixed.
//
// Usage:
//   fuzz_fannr [--seed-start N] [--num-seeds N] [--budget-seconds S]
//              [--corpus-dir DIR] [--no-minimize] [--stop-on-first]
//              [--dynamic]
//   fuzz_fannr --replay FILE...
//
// --dynamic switches to the update-interleaved checker
// (src/testing/dynamic_check.h): each scenario's graph is mutated by
// seeded congestion waves between solves, auditing the epoch-versioned
// cache, the stale-index fallback, and the persistent batch engines
// against a fresh oracle after every wave. Update waves derive from the
// scenario seed, so a violating seed reproduces by itself (reproducer
// files record the base scenario; replay with --dynamic).
//
// Exit code 0 = all scenarios clean; 1 = at least one violation;
// 2 = usage or I/O error.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "testing/differential.h"
#include "testing/dynamic_check.h"
#include "testing/scenario.h"

namespace {

using fannr::testing::DescribeScenario;
using fannr::testing::DifferentialOptions;
using fannr::testing::DynamicCheckOptions;
using fannr::testing::MinimizeScenario;
using fannr::testing::ReadScenarioFile;
using fannr::testing::RunDifferentialChecks;
using fannr::testing::RunDynamicUpdateChecks;
using fannr::testing::Scenario;
using fannr::testing::WriteScenarioFile;

struct Args {
  uint64_t seed_start = 1;
  uint64_t num_seeds = 100;
  double budget_seconds = 0.0;  // 0 = unlimited
  std::string corpus_dir;
  bool minimize = true;
  bool stop_on_first = false;
  bool dynamic = false;
  std::vector<std::string> replay_files;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: fuzz_fannr [--seed-start N] [--num-seeds N]\n"
      "                  [--budget-seconds S] [--corpus-dir DIR]\n"
      "                  [--no-minimize] [--stop-on-first] [--dynamic]\n"
      "       fuzz_fannr [--dynamic] --replay FILE...\n");
}

bool ParseArgs(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fuzz_fannr: %s needs a value\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--seed-start") {
      const char* v = next("--seed-start");
      if (v == nullptr) return false;
      args.seed_start = std::strtoull(v, nullptr, 10);
    } else if (flag == "--num-seeds") {
      const char* v = next("--num-seeds");
      if (v == nullptr) return false;
      args.num_seeds = std::strtoull(v, nullptr, 10);
    } else if (flag == "--budget-seconds") {
      const char* v = next("--budget-seconds");
      if (v == nullptr) return false;
      args.budget_seconds = std::strtod(v, nullptr);
    } else if (flag == "--corpus-dir") {
      const char* v = next("--corpus-dir");
      if (v == nullptr) return false;
      args.corpus_dir = v;
    } else if (flag == "--no-minimize") {
      args.minimize = false;
    } else if (flag == "--dynamic") {
      args.dynamic = true;
    } else if (flag == "--stop-on-first") {
      args.stop_on_first = true;
    } else if (flag == "--replay") {
      while (i + 1 < argc) args.replay_files.push_back(argv[++i]);
      if (args.replay_files.empty()) {
        std::fprintf(stderr, "fuzz_fannr: --replay needs files\n");
        return false;
      }
    } else {
      std::fprintf(stderr, "fuzz_fannr: unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

// Reports a failing scenario: prints the violations, optionally
// minimizes, and writes the reproducer to the corpus directory.
void ReportFailure(const Args& args, const Scenario& scenario,
                   const std::vector<std::string>& violations,
                   const DifferentialOptions& options) {
  std::fprintf(stderr, "VIOLATION %s\n", DescribeScenario(scenario).c_str());
  for (const std::string& v : violations) {
    std::fprintf(stderr, "  %s\n", v.c_str());
  }
  if (args.corpus_dir.empty()) return;

  Scenario repro = scenario;
  // The minimizer shrinks against the static checker; a dynamic failure
  // depends on the update waves too, so keep the scenario whole.
  if (args.minimize && !args.dynamic) {
    repro = MinimizeScenario(scenario, options);
    std::fprintf(stderr, "  minimized to %s\n",
                 DescribeScenario(repro).c_str());
  }
  std::error_code ec;
  std::filesystem::create_directories(args.corpus_dir, ec);
  const std::string path = args.corpus_dir + "/repro_seed" +
                           std::to_string(scenario.seed) + ".scenario";
  if (WriteScenarioFile(repro, path)) {
    std::fprintf(stderr, "  reproducer written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "  FAILED to write reproducer %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, args)) {
    PrintUsage();
    return 2;
  }
  DifferentialOptions options;
  auto run_checks = [&](const Scenario& scenario) {
    return args.dynamic ? RunDynamicUpdateChecks(scenario)
                        : RunDifferentialChecks(scenario, options);
  };

  if (!args.replay_files.empty()) {
    int failures = 0;
    for (const std::string& path : args.replay_files) {
      std::string error;
      auto scenario = ReadScenarioFile(path, &error);
      if (!scenario.has_value()) {
        std::fprintf(stderr, "fuzz_fannr: %s: %s\n", path.c_str(),
                     error.c_str());
        return 2;
      }
      const auto violations = run_checks(*scenario);
      if (violations.empty()) {
        std::printf("PASS %s (%s)\n", path.c_str(),
                    DescribeScenario(*scenario).c_str());
      } else {
        ++failures;
        std::printf("FAIL %s\n", path.c_str());
        for (const std::string& v : violations) {
          std::printf("  %s\n", v.c_str());
        }
      }
    }
    return failures == 0 ? 0 : 1;
  }

  const auto start = std::chrono::steady_clock::now();
  auto out_of_budget = [&]() {
    if (args.budget_seconds <= 0.0) return false;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count() >= args.budget_seconds;
  };

  uint64_t ran = 0;
  uint64_t failed = 0;
  for (uint64_t seed = args.seed_start;
       seed < args.seed_start + args.num_seeds; ++seed) {
    if (out_of_budget()) {
      std::fprintf(stderr, "fuzz_fannr: budget exhausted after %llu seeds\n",
                   static_cast<unsigned long long>(ran));
      break;
    }
    const Scenario scenario = fannr::testing::GenerateScenario(seed);
    const auto violations = run_checks(scenario);
    ++ran;
    if (!violations.empty()) {
      ++failed;
      ReportFailure(args, scenario, violations, options);
      if (args.stop_on_first) break;
    }
    if (ran % 50 == 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      std::fprintf(stderr,
                   "fuzz_fannr: %llu scenarios, %llu violations, %.1fs\n",
                   static_cast<unsigned long long>(ran),
                   static_cast<unsigned long long>(failed), elapsed.count());
    }
  }
  std::printf("fuzz_fannr: %llu scenarios run, %llu with violations\n",
              static_cast<unsigned long long>(ran),
              static_cast<unsigned long long>(failed));
  return failed == 0 ? 0 : 1;
}
