// fannr_client — drive a running fannr_server from the command line.
//
//   fannr_client --port N [options] MODE
//
// Connection:
//   --host ADDR        server address               (default 127.0.0.1)
//   --port N           server port                  (required)
//
// Modes (pick one):
//   --ping N           round-trip N PING frames
//   --stats            fetch and print the server's stats JSON
//   --shutdown         request a graceful drain
//   --smoke            the CI smoke workload: generate a query stream
//                      against the server's preset and interleave
//                      UPDATE_WEIGHTS congestion waves; prints a summary
//                      and exits nonzero unless every frame round-tripped
//                      and at least one query succeeded
//   --waves N          apply N UPDATE_WEIGHTS congestion waves and
//                      nothing else — the multi-node smoke uses this to
//                      advance the fleet epoch while a replica is down
//                      (a query stream would need every shard alive)
//   --subscribe N      register one standing query, print the initial
//                      answer, then block for N pushed re-evaluations
//                      (each printed with the epoch it was solved at;
//                      pushed epochs must be strictly increasing), then
//                      re-ask the same query as a one-shot and require
//                      it to match the last pushed answer before
//                      unsubscribing; with --force-push the server
//                      pushes every re-evaluation even when the answer
//                      did not change
//
// Smoke workload shape (client-side generation must match the graph the
// server loaded — pass the same --preset):
//   --preset NAME      preset the server was started with (default TEST)
//   --queries N        queries to send               (default 60)
//   --update-waves N   congestion waves interleaved  (default 2)
//   --algorithm ALGO   gd | rlist | ier | exactmax | apxsum (default rlist)
//   --agg max|sum      aggregate                     (default sum)
//   --phi F            flexibility                   (default 0.5)
//   --seed N           workload seed                 (default 1)
//
// A query rejected for a stale admission epoch (an update landed between
// admission and execution) is re-submitted once — exactly the re-submit
// contract the protocol documents.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dynamic/update.h"
#include "fann/fannr.h"
#include "net/client.h"

namespace {

using namespace fannr;

struct Args {
  std::map<std::string, std::string> values;

  bool Has(const std::string& key) const { return values.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values.find(key);
    return it != values.end() ? it->second : fallback;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values.find(key);
    return it != values.end() ? std::strtod(it->second.c_str(), nullptr)
                              : fallback;
  }
  size_t GetSize(const std::string& key, size_t fallback) const {
    auto it = values.find(key);
    return it != values.end()
               ? std::strtoull(it->second.c_str(), nullptr, 10)
               : fallback;
  }
};

int Fail(const char* message) {
  std::fprintf(stderr, "fannr_client: %s (run with --help)\n", message);
  return 2;
}

std::optional<uint8_t> ParseAlgorithm(const std::string& name) {
  if (name == "naive") return static_cast<uint8_t>(FannAlgorithm::kNaive);
  if (name == "gd") return static_cast<uint8_t>(FannAlgorithm::kGd);
  if (name == "rlist") return static_cast<uint8_t>(FannAlgorithm::kRList);
  if (name == "ier") return static_cast<uint8_t>(FannAlgorithm::kIer);
  if (name == "exactmax") {
    return static_cast<uint8_t>(FannAlgorithm::kExactMax);
  }
  if (name == "apxsum") return static_cast<uint8_t>(FannAlgorithm::kApxSum);
  return std::nullopt;
}

int RunSmoke(net::FannClient& client, const Args& args) {
  const std::string preset = args.Get("preset", "TEST");
  if (!IsPresetName(preset)) return Fail("unknown preset");
  // The local copy exists only to generate valid vertex ids and edge
  // endpoints; all answers come from the server.
  const Graph graph = BuildPreset(preset);

  const size_t num_queries = args.GetSize("queries", 60);
  const size_t num_waves = args.GetSize("update-waves", 2);
  const double phi = args.GetDouble("phi", 0.5);
  const std::optional<uint8_t> algorithm =
      ParseAlgorithm(args.Get("algorithm", "rlist"));
  if (!algorithm.has_value()) return Fail("unknown algorithm");
  const uint8_t aggregate =
      args.Get("agg", "sum") == "max"
          ? static_cast<uint8_t>(Aggregate::kMax)
          : static_cast<uint8_t>(Aggregate::kSum);

  Rng rng(args.GetSize("seed", 1));
  const std::vector<VertexId> p_ids = GenerateDataPoints(graph, 0.01, rng);

  size_t ok = 0, rejected = 0, timed_out = 0, resubmitted = 0;
  size_t waves_applied = 0;
  uint64_t last_epoch = 0;
  const size_t wave_stride =
      num_waves > 0 ? std::max<size_t>(1, num_queries / (num_waves + 1)) : 0;

  for (size_t i = 0; i < num_queries; ++i) {
    if (num_waves > 0 && waves_applied < num_waves && i > 0 &&
        i % wave_stride == 0) {
      const dynamic::UpdateBatch wave =
          dynamic::MakeCongestionWave(graph, 0.05, 0.5, 3.0, rng);
      net::UpdateWeightsRequest update;
      for (const EdgeWeightUpdate& u : wave.updates()) {
        update.entries.push_back({u.u, u.v, u.new_weight});
      }
      net::UpdateWeightsResponse applied;
      if (!client.UpdateWeights(update, applied)) {
        std::fprintf(stderr, "UPDATE_WEIGHTS failed: %s\n",
                     client.last_error().c_str());
        return 1;
      }
      if (applied.status != 0) {
        std::fprintf(stderr, "UPDATE_WEIGHTS rejected: %s\n",
                     applied.error.c_str());
        return 1;
      }
      ++waves_applied;
      std::printf("wave %zu: %" PRIu64 " edges updated, epoch %" PRIu64
                  " -> %" PRIu64 "\n",
                  waves_applied, applied.applied, applied.old_epoch,
                  applied.new_epoch);
    }

    net::WireQuery query;
    query.algorithm = *algorithm;
    query.aggregate = aggregate;
    query.phi = phi;
    query.p = std::vector<uint32_t>(p_ids.begin(), p_ids.end());
    const std::vector<VertexId> q_ids =
        GenerateUniformQueryPoints(graph, 0.25, 16, rng);
    query.q = std::vector<uint32_t>(q_ids.begin(), q_ids.end());

    net::QueryResponse response;
    if (!client.Query(query, response)) {
      std::fprintf(stderr, "QUERY failed: %s\n", client.last_error().c_str());
      return 1;
    }
    if (response.result.status ==
        static_cast<uint8_t>(QueryStatus::kRejected)) {
      // Stale-admission rejection: re-submit once per the contract.
      ++rejected;
      ++resubmitted;
      if (!client.Query(query, response)) {
        std::fprintf(stderr, "re-submitted QUERY failed: %s\n",
                     client.last_error().c_str());
        return 1;
      }
    }
    switch (static_cast<QueryStatus>(response.result.status)) {
      case QueryStatus::kOk:
        ++ok;
        break;
      case QueryStatus::kRejected:
        ++rejected;
        std::fprintf(stderr, "query %zu rejected: %s\n", i,
                     response.result.error.c_str());
        break;
      case QueryStatus::kTimedOut:
        ++timed_out;
        break;
    }
    last_epoch = response.graph_epoch;
  }

  std::string stats_json;
  if (!client.Stats(stats_json)) {
    std::fprintf(stderr, "STATS failed: %s\n", client.last_error().c_str());
    return 1;
  }
  std::printf(
      "smoke: %zu queries (%zu ok, %zu rejected, %zu timed out, "
      "%zu re-submitted), %zu/%zu waves, final epoch %" PRIu64 "\n",
      num_queries, ok, rejected, timed_out, resubmitted, waves_applied,
      num_waves, last_epoch);
  std::printf("server stats:\n%s\n", stats_json.c_str());

  if (ok == 0) {
    std::fprintf(stderr, "smoke failed: no query succeeded\n");
    return 1;
  }
  if (num_waves > 0 && waves_applied != num_waves) {
    std::fprintf(stderr, "smoke failed: only %zu/%zu waves applied\n",
                 waves_applied, num_waves);
    return 1;
  }
  return 0;
}

void PrintResult(const char* label, uint64_t epoch,
                 const net::WireResult& result) {
  if (static_cast<QueryStatus>(result.status) == QueryStatus::kOk) {
    std::printf("%s @epoch %" PRIu64 ": best=%u dist=%.6f |subset|=%zu "
                "(%" PRIu64 " g_phi evals)\n",
                label, epoch, result.best, result.distance,
                result.subset.size(), result.gphi_evaluations);
  } else {
    std::printf("%s @epoch %" PRIu64 ": status=%u error=%s\n", label, epoch,
                result.status, result.error.c_str());
  }
}

int RunSubscribe(net::FannClient& client, const Args& args) {
  const std::string preset = args.Get("preset", "TEST");
  if (!IsPresetName(preset)) return Fail("unknown preset");
  // Local copy only to generate valid vertex ids — pass the server's
  // own --preset or the query points will not exist over there.
  const Graph graph = BuildPreset(preset);

  const size_t num_pushes = args.GetSize("subscribe", 1);
  const double phi = args.GetDouble("phi", 0.5);
  const std::optional<uint8_t> algorithm =
      ParseAlgorithm(args.Get("algorithm", "rlist"));
  if (!algorithm.has_value()) return Fail("unknown algorithm");

  Rng rng(args.GetSize("seed", 1));
  const std::vector<VertexId> p_ids = GenerateDataPoints(graph, 0.01, rng);
  net::WireQuery query;
  query.algorithm = *algorithm;
  query.aggregate = args.Get("agg", "sum") == "max"
                        ? static_cast<uint8_t>(Aggregate::kMax)
                        : static_cast<uint8_t>(Aggregate::kSum);
  query.phi = phi;
  query.p = std::vector<uint32_t>(p_ids.begin(), p_ids.end());
  const std::vector<VertexId> q_ids =
      GenerateUniformQueryPoints(graph, 0.25, 16, rng);
  query.q = std::vector<uint32_t>(q_ids.begin(), q_ids.end());

  uint64_t subscription_id = 0;
  net::SubscribeResponse initial;
  if (!client.Subscribe(query, args.Has("force-push"), &subscription_id,
                        initial)) {
    std::fprintf(stderr, "SUBSCRIBE failed: %s\n",
                 client.last_error().c_str());
    return 1;
  }
  if (static_cast<QueryStatus>(initial.result.status) != QueryStatus::kOk) {
    std::fprintf(stderr, "subscription refused: %s\n",
                 initial.result.error.c_str());
    return 1;
  }
  std::printf("subscribed: id %" PRIu64 "\n", subscription_id);
  PrintResult("initial", initial.graph_epoch, initial.result);
  std::fflush(stdout);

  uint64_t last_epoch = initial.graph_epoch;
  net::WireResult last_result = initial.result;
  for (size_t i = 0; i < num_pushes; ++i) {
    net::ReceivedPush push;
    if (!client.WaitPush(push)) {
      std::fprintf(stderr, "push wait failed: %s\n",
                   client.last_error().c_str());
      return 1;
    }
    PrintResult("push", push.answer.graph_epoch, push.answer.result);
    std::fflush(stdout);
    if (push.answer.graph_epoch <= last_epoch) {
      std::fprintf(stderr,
                   "pushed epoch %" PRIu64 " is not past %" PRIu64 "\n",
                   push.answer.graph_epoch, last_epoch);
      return 1;
    }
    last_epoch = push.answer.graph_epoch;
    last_result = push.answer.result;
  }

  // The push path and the request path must agree once the graph is
  // quiet: re-ask the standing query as a one-shot and compare it with
  // the last delivered answer.
  net::QueryResponse oneshot;
  if (!client.Query(query, oneshot)) {
    std::fprintf(stderr, "final one-shot failed: %s\n",
                 client.last_error().c_str());
    return 1;
  }
  if (oneshot.graph_epoch != last_epoch ||
      !net::SameVisibleAnswer(oneshot.result, last_result)) {
    PrintResult("one-shot", oneshot.graph_epoch, oneshot.result);
    std::fprintf(stderr,
                 "final one-shot diverges from the last pushed answer\n");
    return 1;
  }
  std::printf("final one-shot matches @epoch %" PRIu64 "\n",
              oneshot.graph_epoch);

  net::UnsubscribeResponse done;
  if (!client.Unsubscribe(subscription_id, done) || done.status != 0) {
    std::fprintf(stderr, "UNSUBSCRIBE failed: %s\n",
                 client.last_error().c_str());
    return 1;
  }
  std::printf("unsubscribed after %" PRIu64 " push%s\n", done.pushes_sent,
              done.pushes_sent == 1 ? "" : "es");
  return 0;
}

int RunWaves(net::FannClient& client, const Args& args) {
  const std::string preset = args.Get("preset", "TEST");
  if (!IsPresetName(preset)) return Fail("unknown preset");
  const Graph graph = BuildPreset(preset);
  const size_t num_waves = std::max<size_t>(1, args.GetSize("waves", 1));

  Rng rng(args.GetSize("seed", 1));
  for (size_t i = 0; i < num_waves; ++i) {
    const dynamic::UpdateBatch wave =
        dynamic::MakeCongestionWave(graph, 0.05, 0.5, 3.0, rng);
    net::UpdateWeightsRequest update;
    for (const EdgeWeightUpdate& u : wave.updates()) {
      update.entries.push_back({u.u, u.v, u.new_weight});
    }
    net::UpdateWeightsResponse applied;
    if (!client.UpdateWeights(update, applied)) {
      std::fprintf(stderr, "UPDATE_WEIGHTS failed: %s\n",
                   client.last_error().c_str());
      return 1;
    }
    if (applied.status != 0) {
      std::fprintf(stderr, "UPDATE_WEIGHTS rejected: %s\n",
                   applied.error.c_str());
      return 1;
    }
    std::printf("wave %zu: %" PRIu64 " edges updated, epoch %" PRIu64
                " -> %" PRIu64 "\n",
                i + 1, applied.applied, applied.old_epoch, applied.new_epoch);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("see the header of tools/fannr_client.cc for usage\n");
      return 0;
    }
    if (std::strcmp(argv[i], "--stats") == 0 ||
        std::strcmp(argv[i], "--shutdown") == 0 ||
        std::strcmp(argv[i], "--smoke") == 0 ||
        std::strcmp(argv[i], "--force-push") == 0) {
      args.values[argv[i] + 2] = "1";
    } else if (std::strncmp(argv[i], "--", 2) == 0 && i + 1 < argc) {
      args.values[argv[i] + 2] = argv[i + 1];
      ++i;
    } else {
      return Fail("malformed arguments");
    }
  }
  if (!args.Has("port")) return Fail("--port is required");

  net::FannClient client;
  if (!client.Connect(args.Get("host", "127.0.0.1"),
                      static_cast<uint16_t>(args.GetSize("port", 0)))) {
    std::fprintf(stderr, "connect failed: %s\n", client.last_error().c_str());
    return 1;
  }

  if (args.Has("ping")) {
    const size_t count = args.GetSize("ping", 1);
    for (size_t i = 0; i < count; ++i) {
      if (!client.Ping()) {
        std::fprintf(stderr, "ping failed: %s\n",
                     client.last_error().c_str());
        return 1;
      }
    }
    std::printf("%zu ping%s ok\n", count, count == 1 ? "" : "s");
    return 0;
  }
  if (args.Has("stats")) {
    std::string json;
    if (!client.Stats(json)) {
      std::fprintf(stderr, "stats failed: %s\n", client.last_error().c_str());
      return 1;
    }
    std::printf("%s\n", json.c_str());
    return 0;
  }
  if (args.Has("shutdown")) {
    if (!client.Shutdown()) {
      std::fprintf(stderr, "shutdown failed: %s\n",
                   client.last_error().c_str());
      return 1;
    }
    std::printf("shutdown acknowledged\n");
    return 0;
  }
  if (args.Has("smoke")) return RunSmoke(client, args);
  if (args.Has("waves")) return RunWaves(client, args);
  if (args.Has("subscribe")) return RunSubscribe(client, args);
  return Fail(
      "pick a mode: --ping N | --stats | --shutdown | --smoke | --waves N | "
      "--subscribe N");
}
