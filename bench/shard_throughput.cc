// Sharded serving benchmark: the 2-shard fleet (two FannServers behind a
// FannRouter, net/router.h) versus a single-node FannServer over loopback
// TCP, all in one process.
//
// Measurements:
//   * steady cells — C synchronous clients (C in {1, 4}) stream queries
//     at either the single server or the router; qps is ok-answers per
//     wall second, latency is per-request end-to-end p50/p95/p99. The
//     routed cells price the fan-out hop: the router decodes, splits P
//     by the shard plan, pipelines sub-batches to both shards, merges.
//   * wave cells — the same, with an updater connection applying
//     congestion waves concurrently. Against the router a wave is
//     replicated (REPL_APPLY positioned at the fleet epoch) rather than
//     applied once, so these cells also exercise the epoch machinery
//     under load; stale-admission rejections are re-submitted once per
//     the protocol contract.
//   * a routed differential — router answers compared bitwise (status,
//     vertex id, distance bits, subset, error text; work counters are
//     summed across shards, so they are excluded) against an in-process
//     BatchQueryEngine run of the same queries, before and after a
//     replicated weight wave (gated: zero mismatches);
//   * a catch-up cell — shard 1 is stopped, a wave lands via the router
//     (replicated to shard 0 only, journaled in the router's WAL), then
//     shard 1 restarts from a fresh epoch-0 graph plus its own WAL; the
//     next spanning query triggers the router's history catch-up, and
//     the cell records how many WAL records were replayed and whether
//     the fleet answered at the live epoch (gated: recovered == true).
//
// Output: a table on stdout plus BENCH_shard.json (FANNR_OUT_DIR or the
// working directory), gated in CI by scripts/check_shard_json.py.
//
// Environment: FANNR_DATASET (preset name, default TEST),
// FANNR_SHARD_QUERIES (queries per connection per cell, default 30),
// FANNR_SHARD_THREADS (engine worker threads per server, default 2).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "dynamic/update.h"
#include "dynamic/wal.h"
#include "engine/batch_engine.h"
#include "fann/fannr.h"
#include "net/client.h"
#include "net/router.h"
#include "net/server.h"
#include "net/shard_plan.h"

namespace fannr::bench {
namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr
             ? static_cast<size_t>(std::strtoull(value, nullptr, 10))
             : fallback;
}

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t rank =
      static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/fannr_bench_shard_" +
         name;
}

/// One shard server (or the single-node baseline) with its own mutable
/// graph copy — UPDATE/REPL_APPLY mutates it, so servers cannot share.
struct ServerNode {
  explicit ServerNode(const std::string& dataset)
      : graph(BuildPreset(dataset)) {}

  bool Start(size_t threads, uint16_t port, dynamic::UpdateWal* wal,
             std::string* error) {
    resources = GphiResources{};
    resources.graph = &graph;
    net::ServerConfig config;
    config.port = port;
    config.engine_options.num_threads = threads;
    config.wal = wal;
    server = std::make_unique<net::FannServer>(&graph, resources,
                                               std::move(config));
    return server->Start(error);
  }

  void Stop() {
    if (server == nullptr) return;
    server->RequestShutdown();
    server->Wait();
    server.reset();
  }

  Graph graph;
  GphiResources resources;
  std::unique_ptr<net::FannServer> server;
};

/// The kGd/kSum serving-path query every cell draws (4 query points:
/// small on purpose — the cells measure dispatch, fan-out, and merge,
/// not solver asymptotics, which the solver benches own).
net::WireQuery MakeQuery(const Graph& graph,
                         const std::vector<uint32_t>& p_ids, Rng& rng) {
  net::WireQuery query;
  query.algorithm = static_cast<uint8_t>(FannAlgorithm::kGd);
  query.aggregate = static_cast<uint8_t>(Aggregate::kSum);
  query.phi = 0.5;
  query.p = p_ids;
  const std::vector<VertexId> q_ids =
      GenerateUniformQueryPoints(graph, 0.10, 4, rng);
  query.q = std::vector<uint32_t>(q_ids.begin(), q_ids.end());
  return query;
}

std::vector<std::vector<net::WireQuery>> MakeWorkload(
    const Graph& graph, const std::vector<uint32_t>& p_ids,
    size_t connections, size_t queries_per_conn) {
  std::vector<std::vector<net::WireQuery>> workload(connections);
  for (size_t c = 0; c < connections; ++c) {
    Rng rng(0x5AAD0000u + c);
    workload[c].reserve(queries_per_conn);
    for (size_t i = 0; i < queries_per_conn; ++i) {
      workload[c].push_back(MakeQuery(graph, p_ids, rng));
    }
  }
  return workload;
}

struct ClientOutcome {
  std::vector<double> latencies_ms;
  size_t ok = 0, rejected = 0, timed_out = 0, resubmitted = 0;
  uint64_t last_epoch = 0;
  bool transport_error = false;
};

ClientOutcome DriveClient(uint16_t port,
                          const std::vector<net::WireQuery>& queries) {
  ClientOutcome outcome;
  net::FannClient client;
  if (!client.Connect("127.0.0.1", port)) {
    outcome.transport_error = true;
    return outcome;
  }
  for (const net::WireQuery& query : queries) {
    Timer t;
    net::QueryResponse response;
    if (!client.Query(query, response)) {
      outcome.transport_error = true;
      return outcome;
    }
    if (response.result.status ==
        static_cast<uint8_t>(QueryStatus::kRejected)) {
      // Stale admission epoch (a wave landed in between; against the
      // router this is the mid-fan-out epoch rejection): re-submit
      // once, keeping the original timer, per the protocol contract.
      ++outcome.rejected;
      ++outcome.resubmitted;
      if (!client.Query(query, response)) {
        outcome.transport_error = true;
        return outcome;
      }
    }
    outcome.latencies_ms.push_back(t.Millis());
    switch (static_cast<QueryStatus>(response.result.status)) {
      case QueryStatus::kOk:
        ++outcome.ok;
        break;
      case QueryStatus::kRejected:
        ++outcome.rejected;
        break;
      case QueryStatus::kTimedOut:
        ++outcome.timed_out;
        break;
    }
    outcome.last_epoch = response.graph_epoch;
  }
  return outcome;
}

std::thread StartWaveThread(const Graph& client_graph, uint16_t port,
                            std::atomic<bool>& stop,
                            std::atomic<size_t>& applied) {
  return std::thread([&client_graph, port, &stop, &applied] {
    net::FannClient updater;
    if (!updater.Connect("127.0.0.1", port)) return;
    Rng wave_rng(0xCA11AB1Eu);
    while (!stop.load(std::memory_order_relaxed)) {
      const dynamic::UpdateBatch wave = dynamic::MakeCongestionWave(
          client_graph, 0.02, 0.5, 3.0, wave_rng);
      net::UpdateWeightsRequest request;
      for (const EdgeWeightUpdate& u : wave.updates()) {
        request.entries.push_back({u.u, u.v, u.new_weight});
      }
      net::UpdateWeightsResponse response;
      if (!updater.UpdateWeights(request, response)) return;
      if (response.status == 0) {
        applied.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
    }
  });
}

struct Cell {
  std::string mode;  // "single" | "routed"
  size_t connections = 0;
  bool waves = false;
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  size_t ok = 0, rejected = 0, timed_out = 0, resubmitted = 0;
  size_t waves_applied = 0;
  uint64_t final_epoch = 0;
};

/// Drives one cell's client threads (and optional wave thread) at
/// whatever is listening on `port`, single server or router alike — the
/// point of the router is that clients cannot tell the difference.
Cell RunCellAt(const std::string& mode, uint16_t port,
               const Graph& client_graph,
               const std::vector<std::vector<net::WireQuery>>& workload,
               bool waves) {
  std::atomic<bool> stop_waves{false};
  std::atomic<size_t> waves_applied{0};
  std::thread wave_thread;
  if (waves) {
    wave_thread =
        StartWaveThread(client_graph, port, stop_waves, waves_applied);
  }

  std::vector<ClientOutcome> outcomes(workload.size());
  Timer wall;
  {
    std::vector<std::thread> drivers;
    for (size_t c = 0; c < workload.size(); ++c) {
      drivers.emplace_back(
          [&, c] { outcomes[c] = DriveClient(port, workload[c]); });
    }
    for (std::thread& t : drivers) t.join();
  }
  const double wall_ms = wall.Millis();
  if (waves) {
    stop_waves.store(true, std::memory_order_relaxed);
    wave_thread.join();
  }

  Cell cell;
  cell.mode = mode;
  cell.connections = workload.size();
  cell.waves = waves;
  cell.wall_ms = wall_ms;
  cell.waves_applied = waves_applied.load(std::memory_order_relaxed);
  std::vector<double> latencies;
  for (const ClientOutcome& o : outcomes) {
    FANNR_CHECK(!o.transport_error);
    cell.ok += o.ok;
    cell.rejected += o.rejected;
    cell.timed_out += o.timed_out;
    cell.resubmitted += o.resubmitted;
    cell.final_epoch = std::max(cell.final_epoch, o.last_epoch);
    latencies.insert(latencies.end(), o.latencies_ms.begin(),
                     o.latencies_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());
  cell.p50_ms = Percentile(latencies, 0.50);
  cell.p95_ms = Percentile(latencies, 0.95);
  cell.p99_ms = Percentile(latencies, 0.99);
  cell.qps = 1000.0 * static_cast<double>(cell.ok) / wall_ms;
  return cell;
}

struct DifferentialOutcome {
  size_t queries = 0;
  size_t mismatches = 0;
};

struct CatchUpOutcome {
  size_t records = 0;
  bool recovered = false;
  uint64_t final_epoch = 0;
};

/// Pulls one counter out of the router's stats JSON. The bench owns the
/// counter names it asserts on, so a dumb substring scan is enough.
size_t CounterFromStats(const std::string& json, const std::string& name) {
  const std::string key = "\"" + name + "\": ";
  const size_t at = json.find(key);
  if (at == std::string::npos) return 0;
  return static_cast<size_t>(
      std::strtoull(json.c_str() + at + key.size(), nullptr, 10));
}

int Main() {
  const char* dataset_env = std::getenv("FANNR_DATASET");
  const std::string dataset = dataset_env != nullptr ? dataset_env : "TEST";
  FANNR_CHECK(IsPresetName(dataset));
  const size_t queries_per_conn =
      std::max<size_t>(1, EnvSize("FANNR_SHARD_QUERIES", 30));
  const size_t threads = std::max<size_t>(1, EnvSize("FANNR_SHARD_THREADS", 2));
  constexpr uint32_t kShards = 2;

  const Graph client_graph = BuildPreset(dataset);
  const net::ShardPlan plan = net::ShardPlan::Build(client_graph, kShards);

  Rng p_rng(0xBA5E0001u);
  const std::vector<VertexId> p_vertices =
      GenerateDataPoints(client_graph, 0.01, p_rng);
  const std::vector<uint32_t> p_ids(p_vertices.begin(), p_vertices.end());

  std::printf("Shard throughput — dataset %s, %u shards, %zu queries/conn, "
              "%zu engine threads\n",
              dataset.c_str(), kShards, queries_per_conn, threads);
  std::printf("%7s %5s %6s %10s %9s %9s %9s %6s %5s %7s\n", "mode", "conns",
              "waves", "qps", "p50 ms", "p95 ms", "p99 ms", "ok", "rej",
              "epochs");
  const auto print_cell = [](const Cell& cell) {
    std::printf("%7s %5zu %6s %10.1f %9.2f %9.2f %9.2f %6zu %5zu %7zu\n",
                cell.mode.c_str(), cell.connections, cell.waves ? "yes" : "no",
                cell.qps, cell.p50_ms, cell.p95_ms, cell.p99_ms, cell.ok,
                cell.rejected, static_cast<size_t>(cell.final_epoch));
  };

  std::vector<Cell> cells;
  for (const bool waves : {false, true}) {
    for (const size_t connections : {size_t{1}, size_t{4}}) {
      const std::vector<std::vector<net::WireQuery>> workload = MakeWorkload(
          client_graph, p_ids, connections, queries_per_conn);

      // Single-node baseline: a fresh server per cell so wave cells
      // never inherit a mutated graph.
      {
        ServerNode single(dataset);
        std::string error;
        FANNR_CHECK(single.Start(threads, 0, nullptr, &error));
        Cell cell = RunCellAt("single", single.server->port(), client_graph,
                              workload, waves);
        single.Stop();
        print_cell(cell);
        cells.push_back(std::move(cell));
      }

      // Routed: the identical workload through the 2-shard fleet.
      {
        ServerNode shard0(dataset);
        ServerNode shard1(dataset);
        std::string error;
        FANNR_CHECK(shard0.Start(threads, 0, nullptr, &error));
        FANNR_CHECK(shard1.Start(threads, 0, nullptr, &error));
        net::RouterConfig config;
        config.shards = {{"127.0.0.1", shard0.server->port()},
                         {"127.0.0.1", shard1.server->port()}};
        net::FannRouter router(plan, std::move(config));
        FANNR_CHECK(router.Start(&error));
        Cell cell =
            RunCellAt("routed", router.port(), client_graph, workload, waves);
        router.RequestShutdown();
        router.Wait();
        shard0.Stop();
        shard1.Stop();
        print_cell(cell);
        cells.push_back(std::move(cell));
      }
    }
  }

  // --- routed differential: the fleet vs the in-process engine ----------
  DifferentialOutcome differential;
  {
    ServerNode shard0(dataset);
    ServerNode shard1(dataset);
    std::string error;
    FANNR_CHECK(shard0.Start(threads, 0, nullptr, &error));
    FANNR_CHECK(shard1.Start(threads, 0, nullptr, &error));
    net::RouterConfig config;
    config.shards = {{"127.0.0.1", shard0.server->port()},
                     {"127.0.0.1", shard1.server->port()}};
    net::FannRouter router(plan, std::move(config));
    FANNR_CHECK(router.Start(&error));

    Graph ref_graph = BuildPreset(dataset);
    GphiResources ref_resources;
    ref_resources.graph = &ref_graph;
    BatchOptions ref_options;
    ref_options.num_threads = threads;
    BatchQueryEngine reference(ref_resources, ref_options);

    Rng q_rng(0xD1FF0002u);
    std::vector<net::WireQuery> jobs;
    for (size_t i = 0; i < 24; ++i) {
      jobs.push_back(MakeQuery(client_graph, p_ids, q_rng));
    }

    net::FannClient client;
    FANNR_CHECK(client.Connect("127.0.0.1", router.port()));

    const auto run_phase = [&](uint64_t expected_epoch) {
      std::vector<std::unique_ptr<IndexedVertexSet>> sets;
      std::vector<FannrQuery> batch;
      for (const net::WireQuery& wire : jobs) {
        auto p = std::make_unique<IndexedVertexSet>(
            ref_graph.NumVertices(),
            std::vector<VertexId>(wire.p.begin(), wire.p.end()));
        auto q = std::make_unique<IndexedVertexSet>(
            ref_graph.NumVertices(),
            std::vector<VertexId>(wire.q.begin(), wire.q.end()));
        FannrQuery job;
        job.query.graph = &ref_graph;
        job.query.data_points = p.get();
        job.query.query_points = q.get();
        job.query.phi = wire.phi;
        job.query.aggregate = static_cast<Aggregate>(wire.aggregate);
        job.algorithm = static_cast<FannAlgorithm>(wire.algorithm);
        sets.push_back(std::move(p));
        sets.push_back(std::move(q));
        batch.push_back(job);
      }
      const std::vector<FannResult> results = reference.Run(batch);
      for (size_t i = 0; i < jobs.size(); ++i) {
        ++differential.queries;
        net::QueryResponse response;
        if (!client.Query(jobs[i], response) ||
            response.graph_epoch != expected_epoch) {
          ++differential.mismatches;
          continue;
        }
        const net::WireResult want = net::ToWire(results[i]);
        const net::WireResult& got = response.result;
        // gphi_evaluations is summed across shards, hence excluded.
        const bool equal =
            got.status == want.status && got.best == want.best &&
            std::memcmp(&got.distance, &want.distance,
                        sizeof(got.distance)) == 0 &&
            got.subset == want.subset && got.error == want.error;
        if (!equal) ++differential.mismatches;
      }
    };

    run_phase(0);
    // The same wave on both sides: replicated through the router,
    // in-process to the reference graph.
    Rng wave_rng(0xCA11AB1Fu);
    const dynamic::UpdateBatch wave =
        dynamic::MakeCongestionWave(client_graph, 0.02, 0.5, 3.0, wave_rng);
    {
      net::UpdateWeightsRequest request;
      for (const EdgeWeightUpdate& u : wave.updates()) {
        request.entries.push_back({u.u, u.v, u.new_weight});
      }
      net::UpdateWeightsResponse applied;
      FANNR_CHECK(client.UpdateWeights(request, applied));
      FANNR_CHECK(applied.status == 0);
    }
    FANNR_CHECK(wave.Apply(ref_graph).new_epoch == 1);
    run_phase(1);

    router.RequestShutdown();
    router.Wait();
    shard0.Stop();
    shard1.Stop();
  }
  std::printf("\nrouted differential vs in-process engine: "
              "%zu queries, %zu mismatches\n",
              differential.queries, differential.mismatches);

  // --- catch-up: a killed replica rejoins by WAL replay -----------------
  CatchUpOutcome catch_up;
  {
    const std::string router_wal_path = TempPath("router.wal");
    const std::string shard1_wal_path = TempPath("shard1.wal");
    std::remove(router_wal_path.c_str());
    std::remove(shard1_wal_path.c_str());

    ServerNode shard0(dataset);
    auto shard1 = std::make_unique<ServerNode>(dataset);
    std::string error;
    std::unique_ptr<dynamic::UpdateWal> router_wal = dynamic::UpdateWal::Open(
        router_wal_path, client_graph.Fingerprint(), &error);
    FANNR_CHECK(router_wal != nullptr);
    std::unique_ptr<dynamic::UpdateWal> shard1_wal = dynamic::UpdateWal::Open(
        shard1_wal_path, client_graph.Fingerprint(), &error);
    FANNR_CHECK(shard1_wal != nullptr);

    FANNR_CHECK(shard0.Start(threads, 0, nullptr, &error));
    FANNR_CHECK(shard1->Start(threads, 0, shard1_wal.get(), &error));
    const uint16_t shard1_port = shard1->server->port();

    net::RouterConfig config;
    config.shards = {{"127.0.0.1", shard0.server->port()},
                     {"127.0.0.1", shard1_port}};
    config.wal = router_wal.get();
    net::FannRouter router(plan, std::move(config));
    FANNR_CHECK(router.Start(&error));
    net::FannClient client;
    FANNR_CHECK(client.Connect("127.0.0.1", router.port()));

    const auto send_wave = [&](uint64_t seed) {
      Rng rng(seed);
      const dynamic::UpdateBatch wave =
          dynamic::MakeCongestionWave(client_graph, 0.02, 0.5, 3.0, rng);
      net::UpdateWeightsRequest request;
      for (const EdgeWeightUpdate& u : wave.updates()) {
        request.entries.push_back({u.u, u.v, u.new_weight});
      }
      net::UpdateWeightsResponse response;
      FANNR_CHECK(client.UpdateWeights(request, response));
      FANNR_CHECK(response.status == 0);
    };

    // Wave 1 lands everywhere (and in shard 1's own WAL); then shard 1
    // dies and wave 2 is replicated to shard 0 only.
    send_wave(0xFEED0001u);
    shard1->Stop();
    shard1.reset();
    shard1_wal.reset();
    send_wave(0xFEED0002u);

    // Restart: fresh epoch-0 graph, own-WAL replay to epoch 1, same
    // port. The router's next spanning fan-out sees the epoch skew and
    // replays its history tail (wave 2) into the replica.
    shard1 = std::make_unique<ServerNode>(dataset);
    shard1_wal = dynamic::UpdateWal::Open(shard1_wal_path,
                                          shard1->graph.Fingerprint(), &error);
    FANNR_CHECK(shard1_wal != nullptr);
    FANNR_CHECK(shard1_wal->ReplayInto(shard1->graph, &error) == 1);
    FANNR_CHECK(shard1->Start(threads, shard1_port, shard1_wal.get(), &error));

    Rng q_rng(0x0CA7C4u);
    net::WireQuery probe = MakeQuery(client_graph, p_ids, q_rng);
    net::QueryResponse response;
    FANNR_CHECK(client.Query(probe, response));
    if (response.result.status ==
        static_cast<uint8_t>(QueryStatus::kRejected)) {
      // The mid-fan-out epoch rejection, if the retry raced: re-submit.
      FANNR_CHECK(client.Query(probe, response));
    }
    catch_up.final_epoch = response.graph_epoch;
    catch_up.recovered =
        response.result.status == static_cast<uint8_t>(QueryStatus::kOk) &&
        response.graph_epoch == 2;
    catch_up.records =
        CounterFromStats(router.StatsJson(), "router.catch_up.records");

    router.RequestShutdown();
    router.Wait();
    shard0.Stop();
    shard1->Stop();
    std::remove(router_wal_path.c_str());
    std::remove(shard1_wal_path.c_str());
  }
  std::printf("catch-up: %zu history record%s replayed, %s, fleet at "
              "epoch %zu\n",
              catch_up.records, catch_up.records == 1 ? "" : "s",
              catch_up.recovered ? "recovered" : "NOT RECOVERED",
              static_cast<size_t>(catch_up.final_epoch));

  // --- JSON ------------------------------------------------------------
  const std::string out_dir = [] {
    const char* dir = std::getenv("FANNR_OUT_DIR");
    return std::string(dir != nullptr ? dir : ".");
  }();
  const std::string out_path = out_dir + "/BENCH_shard.json";
  std::ofstream out(out_path);
  out << "{\n"
      << "  \"dataset\": \"" << dataset << "\",\n"
      << "  \"num_shards\": " << kShards << ",\n"
      << "  \"queries_per_connection\": " << queries_per_conn << ",\n"
      << "  \"engine_threads\": " << threads << ",\n"
      << "  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    out << "    {\"mode\": \"" << cell.mode << "\""
        << ", \"connections\": " << cell.connections
        << ", \"waves\": " << (cell.waves ? "true" : "false")
        << ", \"qps\": " << cell.qps << ", \"wall_ms\": " << cell.wall_ms
        << ", \"p50_ms\": " << cell.p50_ms << ", \"p95_ms\": " << cell.p95_ms
        << ", \"p99_ms\": " << cell.p99_ms << ", \"ok\": " << cell.ok
        << ", \"rejected\": " << cell.rejected
        << ", \"timed_out\": " << cell.timed_out
        << ", \"resubmitted\": " << cell.resubmitted
        << ", \"waves_applied\": " << cell.waves_applied
        << ", \"final_epoch\": " << cell.final_epoch << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"differential\": {\"queries\": " << differential.queries
      << ", \"mismatches\": " << differential.mismatches << "},\n"
      << "  \"catch_up\": {\"records\": " << catch_up.records
      << ", \"recovered\": " << (catch_up.recovered ? "true" : "false")
      << ", \"final_epoch\": " << catch_up.final_epoch << "}\n"
      << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace fannr::bench

int main() { return fannr::bench::Main(); }
