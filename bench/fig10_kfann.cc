// Fig. 10: k-FANN_R efficiency varying k.
//
// Paper's qualitative findings: query time grows with k for every
// algorithm except GD (which evaluates all of P regardless); Exact-max
// and R-List are the most k-sensitive (more expansion); GD is flat and
// typically second-best overall.

#include <cstdio>

#include "common/bench_common.h"

int main() {
  using namespace fannr;
  using namespace fannr::bench;

  Env env = Env::Load({.labels = true, .gtree = false, .ch = false});
  const Graph& graph = env.graph();
  const size_t ks[] = {1, 5, 10, 15, 20};

  auto phl = env.Engine(GphiKind::kPhl);
  Params params;  // defaults

  PrintHeader("Fig 10: k-FANN_R varying k (max aggregate)", env, "k",
              {"GD", "R-List", "IER-PHL", "Exact-max"});
  auto instances = MakeInstances(graph, params, env.num_queries(),
                                 /*build_p_tree=*/true, 101);
  for (size_t k : ks) {
    auto query_of = [&](size_t i) {
      return FannQuery{&graph, &instances[i].p, &instances[i].q, params.phi,
                       Aggregate::kMax};
    };
    std::vector<double> row;
    row.push_back(TimeCell(
        [&](size_t i) { SolveKGd(query_of(i), k, *phl); },
        instances.size(), env.cell_budget_ms()));
    row.push_back(TimeCell(
        [&](size_t i) { SolveKRList(query_of(i), k, *phl); },
        instances.size(), env.cell_budget_ms()));
    row.push_back(TimeCell(
        [&](size_t i) {
          SolveKIer(query_of(i), k, *phl, *instances[i].p_tree);
        },
        instances.size(), env.cell_budget_ms()));
    row.push_back(TimeCell(
        [&](size_t i) { SolveKExactMax(query_of(i), k); },
        instances.size(), env.cell_budget_ms()));
    PrintRow(std::to_string(k), row);
  }
  return 0;
}
