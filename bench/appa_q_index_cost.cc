// Appendix A analog: per-query index cost over Q — R-tree (used by the
// IER-* engines) vs the G-tree occurrence lists (Occ, used by the GTree
// engine) — varying M.
//
// Paper's qualitative finding: Occ costs somewhat more time and space
// than the R-tree over Q, but both are trivial next to query time, so
// the choice between GTree and IER-GTree is not driven by Q's index.

#include <cstdio>

#include "common/bench_common.h"
#include "common/timer.h"
#include "sp/gtree/gtree_knn.h"
#include "spatial/rtree.h"

int main() {
  using namespace fannr;
  using namespace fannr::bench;

  Env env = Env::Load({.labels = false, .gtree = true, .ch = false});
  const Graph& graph = env.graph();
  const GphiResources resources = env.Resources();
  const size_t sizes[] = {64, 128, 256, 512, 1024};

  std::printf("\n=== Appendix A: Q-index cost, R-tree vs Occ, varying M ==="
              "\n%-8s %14s %14s %14s %14s\n", "M", "RTree build",
              "Occ build", "RTree bytes", "Occ bytes");
  for (size_t m : sizes) {
    if (m > graph.NumVertices()) continue;
    Params params;
    params.m = m;
    auto instances = MakeInstances(graph, params, env.num_queries(),
                                   /*build_p_tree=*/false, 161);
    double rtree_ms = 0.0, occ_ms = 0.0;
    size_t rtree_bytes = 0, occ_bytes = 0;
    for (const Instance& inst : instances) {
      Timer t;
      std::vector<RTree::Item> items;
      for (VertexId q : inst.q.members()) {
        items.push_back({graph.Coord(q), q});
      }
      RTree q_tree = RTree::BulkLoad(std::move(items));
      rtree_ms += t.Millis();
      rtree_bytes += q_tree.MemoryBytes();

      t.Reset();
      GTreeKnn knn(*resources.gtree, inst.q);
      occ_ms += t.Millis();
      occ_bytes += knn.OccMemoryBytes();
    }
    const double n = static_cast<double>(instances.size());
    std::printf("%-8zu %12.3fms %12.3fms %13.1fK %13.1fK\n", m,
                rtree_ms / n, occ_ms / n,
                static_cast<double>(rtree_bytes) / n / 1e3,
                static_cast<double>(occ_bytes) / n / 1e3);
  }
  std::printf("\n(both costs are negligible next to query time, as the "
              "paper observes)\n");
  return 0;
}
