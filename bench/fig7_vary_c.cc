// Fig. 7: efficiency varying the number of clusters C of Q.
// (a) IER-kNN by g_phi engine; (b) all algorithms.
//
// Paper's qualitative findings: more clusters cost more, most severely
// for the expansion-based methods; R-List and Exact-max are the most
// affected algorithms; as C grows, timings approach the uniform-Q case.

#include <cstdio>

#include "common/bench_common.h"

int main() {
  using namespace fannr;
  using namespace fannr::bench;

  Env env = Env::Load({.labels = true, .gtree = true, .ch = false});
  const Graph& graph = env.graph();
  const size_t cluster_counts[] = {1, 2, 4, 6, 8};

  std::vector<std::unique_ptr<GphiEngine>> engines;
  std::vector<std::string> engine_names;
  for (GphiKind kind : TableOneKinds()) {
    engines.push_back(env.Engine(kind));
    engine_names.emplace_back(GphiKindName(kind));
  }
  auto phl = env.Engine(GphiKind::kPhl);

  PrintHeader("Fig 7(a): IER-kNN by g_phi engine, varying C (clustered Q)",
              env, "C", engine_names);
  for (size_t c : cluster_counts) {
    Params params;
    params.c = c;
    auto instances = MakeInstances(graph, params, env.num_queries(),
                                   /*build_p_tree=*/true, 71);
    PrintRow(std::to_string(c),
             TimeIerEngines(env, engines, instances, params));
  }

  PrintHeader("Fig 7(b): all algorithms, varying C (clustered Q)", env, "C",
              AllAlgorithmNames());
  for (size_t c : cluster_counts) {
    Params params;
    params.c = c;
    auto instances = MakeInstances(graph, params, env.num_queries(),
                                   /*build_p_tree=*/true, 72);
    PrintRow(std::to_string(c),
             TimeAllAlgorithms(env, *phl, instances, params));
  }
  return 0;
}
