// Continuous-subscription benchmark: push latency and delta-suppression
// behaviour of the standing-query subsystem (src/cont/) over loopback
// TCP, gated in CI by scripts/check_subs_json.py.
//
// Each cell registers S standing FANN_R queries across C connections
// (the last subscription on every connection opts into force_push, so
// its push doubles as the wave barrier: it is registered last, pushes
// are enqueued in registration order, and per-connection delivery is
// FIFO). An updater connection then applies W UPDATE_WEIGHTS waves,
// alternating fresh congestion waves with exact re-sends of the
// previous wave — a re-send still bumps the graph epoch but changes no
// answer, so it exercises pure suppression.
//
// Measurements per cell:
//   * push latency — wall time from the UPDATE_WEIGHTS send to each
//     PUSH_ANSWER's arrival at its subscriber (includes the merged
//     re-evaluation solve), reported as p50/p95;
//   * suppression rate — suppressed / (pushed + suppressed) across all
//     (wave, subscription) pairs, predicted client-side with the same
//     delta rule the server uses and cross-checked against the server's
//     own counters;
//   * a differential — every initial answer, every push, and a final
//     one-shot per subscription compared bitwise (status, vertex id,
//     distance bits, work counters, subset, error text) against an
//     in-process BatchQueryEngine solve at the same epoch (gated: zero
//     mismatches).
//
// Environment: FANNR_DATASET (preset name, default TEST),
// FANNR_SUBS_WAVES (waves per cell, default 12),
// FANNR_SUBS_THREADS (engine worker threads, default 2).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/timer.h"
#include "dynamic/update.h"
#include "engine/batch_engine.h"
#include "fann/fannr.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"

namespace fannr::bench {
namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr
             ? static_cast<size_t>(std::strtoull(value, nullptr, 10))
             : fallback;
}

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t rank =
      static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

uint64_t DistanceBits(double distance) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(distance));
  std::memcpy(&bits, &distance, sizeof(bits));
  return bits;
}

bool BitwiseEqual(const net::WireResult& a, const net::WireResult& b) {
  return a.status == b.status && a.best == b.best &&
         DistanceBits(a.distance) == DistanceBits(b.distance) &&
         a.gphi_evaluations == b.gphi_evaluations && a.subset == b.subset &&
         a.error == b.error;
}

/// Standing queries for one cell: conn-major registration order, the
/// last subscription of every connection force_push. Shapes rotate
/// through the weight-capable solvers, both aggregates, and (every
/// third) the weighted generalization with power-of-two weights.
std::vector<net::WireQuery> MakeStandingQueries(
    const Graph& graph, const std::vector<uint32_t>& p_ids, size_t count) {
  std::vector<net::WireQuery> jobs;
  jobs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Rng rng(0x5AB50000u + i);
    net::WireQuery job;
    job.algorithm = static_cast<uint8_t>(
        i % 2 == 0 ? FannAlgorithm::kGd : FannAlgorithm::kRList);
    job.aggregate = static_cast<uint8_t>(i % 4 < 2 ? Aggregate::kSum
                                                   : Aggregate::kMax);
    job.phi = i % 2 == 0 ? 0.5 : 0.3;
    job.p = p_ids;
    const std::vector<VertexId> q_ids =
        GenerateUniformQueryPoints(graph, 0.10, 4, rng);
    job.q = std::vector<uint32_t>(q_ids.begin(), q_ids.end());
    if (i % 3 == 2) job.weights = {0.5, 2.0, 1.0, 4.0};
    jobs.push_back(std::move(job));
  }
  return jobs;
}

/// Answers wire jobs in-process as ONE engine Run — mirroring the
/// server's merged re-evaluation batch — through the same lossless
/// ToWire mapping.
std::vector<net::WireResult> SolveWire(BatchQueryEngine& engine,
                                       const Graph& graph,
                                       std::span<const net::WireQuery> jobs) {
  std::vector<std::unique_ptr<IndexedVertexSet>> sets;
  std::vector<FannrQuery> batch;
  for (const net::WireQuery& wire : jobs) {
    auto p = std::make_unique<IndexedVertexSet>(
        graph.NumVertices(),
        std::vector<VertexId>(wire.p.begin(), wire.p.end()));
    auto q = std::make_unique<IndexedVertexSet>(
        graph.NumVertices(),
        std::vector<VertexId>(wire.q.begin(), wire.q.end()));
    FannrQuery job;
    job.query.graph = &graph;
    job.query.data_points = p.get();
    job.query.query_points = q.get();
    job.query.phi = wire.phi;
    job.query.aggregate = static_cast<Aggregate>(wire.aggregate);
    if (!wire.weights.empty()) job.query.weights = &wire.weights;
    job.algorithm = static_cast<FannAlgorithm>(wire.algorithm);
    sets.push_back(std::move(p));
    sets.push_back(std::move(q));
    batch.push_back(job);
  }
  const std::vector<FannResult> results = engine.Run(batch);
  std::vector<net::WireResult> wire_results;
  wire_results.reserve(results.size());
  for (const FannResult& r : results) wire_results.push_back(net::ToWire(r));
  return wire_results;
}

struct Cell {
  size_t connections = 0;
  size_t subscriptions = 0;
  size_t waves = 0;
  size_t pushes = 0;
  size_t suppressed = 0;
  double suppression_rate = 0.0;
  double push_p50_ms = 0.0, push_p95_ms = 0.0;
  uint64_t final_epoch = 0;
  size_t dropped_backpressure = 0;
  size_t differential_answers = 0;
  size_t differential_mismatches = 0;
};

/// One cell: C connections x S standing queries each, W alternating
/// fresh/re-sent waves, every answer checked bitwise against the
/// in-process reference.
Cell RunCell(const std::string& dataset, size_t connections,
             size_t subs_per_conn, size_t waves, size_t engine_threads) {
  Graph server_graph = BuildPreset(dataset);
  Graph ref_graph = BuildPreset(dataset);
  const Graph client_graph = BuildPreset(dataset);

  GphiResources resources;
  resources.graph = &server_graph;
  net::ServerConfig config;
  config.engine_options.num_threads = engine_threads;
  net::FannServer server(&server_graph, resources, std::move(config));
  std::string error;
  FANNR_CHECK(server.Start(&error));
  const uint16_t port = server.port();

  GphiResources ref_resources;
  ref_resources.graph = &ref_graph;
  BatchOptions ref_options;
  ref_options.num_threads = engine_threads;
  BatchQueryEngine reference(ref_resources, ref_options);

  Rng p_rng(0xBA5E0001u);
  const std::vector<VertexId> p_vertices =
      GenerateDataPoints(client_graph, 0.01, p_rng);
  const std::vector<uint32_t> p_ids(p_vertices.begin(), p_vertices.end());
  const size_t total_subs = connections * subs_per_conn;
  const std::vector<net::WireQuery> jobs =
      MakeStandingQueries(client_graph, p_ids, total_subs);

  Cell cell;
  cell.connections = connections;
  cell.subscriptions = total_subs;
  cell.waves = waves;

  // --- register: initial answers are single-job solves at epoch 0 ----
  std::vector<std::unique_ptr<net::FannClient>> subscribers;
  for (size_t c = 0; c < connections; ++c) {
    auto client = std::make_unique<net::FannClient>();
    FANNR_CHECK(client->Connect("127.0.0.1", port));
    subscribers.push_back(std::move(client));
  }
  std::vector<uint64_t> sub_ids(total_subs, 0);
  std::vector<net::WireResult> last(total_subs);
  std::vector<uint64_t> pushes_per_sub(total_subs, 0);
  const auto is_force_push = [&](size_t i) {
    return i % subs_per_conn == subs_per_conn - 1;
  };
  for (size_t i = 0; i < total_subs; ++i) {
    net::FannClient& owner = *subscribers[i / subs_per_conn];
    net::SubscribeResponse response;
    FANNR_CHECK(owner.Subscribe(jobs[i], is_force_push(i), &sub_ids[i],
                                response));
    FANNR_CHECK(response.graph_epoch == 0);
    FANNR_CHECK(response.result.status ==
                static_cast<uint8_t>(QueryStatus::kOk));
    const std::vector<net::WireResult> initial =
        SolveWire(reference, ref_graph, std::span(&jobs[i], 1));
    ++cell.differential_answers;
    if (!BitwiseEqual(response.result, initial[0])) {
      ++cell.differential_mismatches;
    }
    last[i] = response.result;
  }

  net::FannClient updater;
  FANNR_CHECK(updater.Connect("127.0.0.1", port));

  // --- waves: odd = fresh congestion wave, even = exact re-send (the
  // epoch still advances; every answer is unchanged, so everything but
  // the force_push subscriptions is suppressed) ----------------------
  Rng wave_rng(0xCA11AB1Eu);
  std::vector<double> latencies;
  std::unique_ptr<dynamic::UpdateBatch> current;
  for (size_t w = 1; w <= waves; ++w) {
    if (w % 2 == 1 || current == nullptr) {
      current = std::make_unique<dynamic::UpdateBatch>(
          dynamic::MakeCongestionWave(client_graph, 0.10, 0.5, 3.0,
                                      wave_rng));
    }
    const dynamic::ApplyResult applied_ref = current->Apply(ref_graph);
    FANNR_CHECK(applied_ref.new_epoch == w);
    const std::vector<net::WireResult> expected =
        SolveWire(reference, ref_graph, jobs);

    // The server's own delta rule, applied to the reference answers,
    // predicts exactly which subscriptions push this wave.
    std::vector<bool> expect_push(total_subs);
    for (size_t i = 0; i < total_subs; ++i) {
      expect_push[i] =
          is_force_push(i) || !net::SameVisibleAnswer(expected[i], last[i]);
    }

    net::UpdateWeightsRequest request;
    for (const EdgeWeightUpdate& u : current->updates()) {
      request.entries.push_back({u.u, u.v, u.new_weight});
    }
    Timer t;
    net::UpdateWeightsResponse ack;
    FANNR_CHECK(updater.UpdateWeights(request, ack));
    FANNR_CHECK(ack.status == 0 && ack.new_epoch == w);

    // Per-connection delivery is FIFO in registration order; collecting
    // conn-major matches exactly.
    for (size_t i = 0; i < total_subs; ++i) {
      if (!expect_push[i]) {
        ++cell.suppressed;
        continue;
      }
      net::ReceivedPush push;
      FANNR_CHECK(subscribers[i / subs_per_conn]->WaitPush(push));
      latencies.push_back(t.Millis());
      FANNR_CHECK(push.subscription_id == sub_ids[i]);
      FANNR_CHECK(push.answer.graph_epoch == w);
      ++cell.differential_answers;
      if (!BitwiseEqual(push.answer.result, expected[i])) {
        ++cell.differential_mismatches;
      }
      last[i] = push.answer.result;
      ++pushes_per_sub[i];
      ++cell.pushes;
    }
  }
  cell.final_epoch = waves;
  cell.suppression_rate =
      cell.pushes + cell.suppressed > 0
          ? static_cast<double>(cell.suppressed) /
                static_cast<double>(cell.pushes + cell.suppressed)
          : 0.0;

  // --- quiesced: a one-shot of every standing query must equal the
  // reference at the final epoch --------------------------------------
  const std::vector<net::WireResult> final_expected =
      SolveWire(reference, ref_graph, jobs);
  for (size_t i = 0; i < total_subs; ++i) {
    net::QueryResponse response;
    FANNR_CHECK(subscribers[i / subs_per_conn]->Query(jobs[i], response));
    FANNR_CHECK(response.graph_epoch == waves);
    ++cell.differential_answers;
    if (!BitwiseEqual(response.result, final_expected[i])) {
      ++cell.differential_mismatches;
    }
  }

  // --- teardown: per-subscription push counts and server counters
  // must agree with what the clients observed -------------------------
  for (size_t i = 0; i < total_subs; ++i) {
    net::UnsubscribeResponse done;
    FANNR_CHECK(subscribers[i / subs_per_conn]->Unsubscribe(sub_ids[i],
                                                            done));
    FANNR_CHECK(done.status == 0);
    FANNR_CHECK(done.pushes_sent == pushes_per_sub[i]);
  }
  const obs::MetricsSnapshot snapshot = server.metrics().Snapshot();
  FANNR_CHECK(snapshot.counter("server.pushes.sent") == cell.pushes);
  FANNR_CHECK(snapshot.counter("server.pushes.suppressed") ==
              cell.suppressed);
  cell.dropped_backpressure = static_cast<size_t>(
      snapshot.counter("server.pushes.dropped_backpressure"));

  for (std::unique_ptr<net::FannClient>& client : subscribers) {
    FANNR_CHECK(client->pushes_dropped() == 0);
  }
  FANNR_CHECK(updater.Shutdown());
  const net::DrainStats drain = server.Wait();
  FANNR_CHECK(drain.within_deadline);

  std::sort(latencies.begin(), latencies.end());
  cell.push_p50_ms = Percentile(latencies, 0.50);
  cell.push_p95_ms = Percentile(latencies, 0.95);
  return cell;
}

int Main() {
  const char* dataset_env = std::getenv("FANNR_DATASET");
  const std::string dataset = dataset_env != nullptr ? dataset_env : "TEST";
  FANNR_CHECK(IsPresetName(dataset));
  const size_t waves = std::max<size_t>(2, EnvSize("FANNR_SUBS_WAVES", 12));
  const size_t engine_threads =
      std::max<size_t>(1, EnvSize("FANNR_SUBS_THREADS", 2));

  std::printf("Subscription throughput — dataset %s, %zu waves/cell, "
              "%zu engine threads\n",
              dataset.c_str(), waves, engine_threads);
  std::printf("%5s %5s %6s %7s %6s %9s %9s %9s %5s\n", "conns", "subs",
              "waves", "pushes", "supp", "supp rate", "p50 ms", "p95 ms",
              "diff");

  struct Spec {
    size_t connections;
    size_t subs_per_conn;
  };
  const Spec specs[] = {{1, 4}, {4, 4}};
  std::vector<Cell> cells;
  size_t total_answers = 0;
  size_t total_mismatches = 0;
  for (const Spec& spec : specs) {
    Cell cell = RunCell(dataset, spec.connections, spec.subs_per_conn,
                        waves, engine_threads);
    std::printf("%5zu %5zu %6zu %7zu %6zu %9.3f %9.2f %9.2f %5zu\n",
                cell.connections, cell.subscriptions, cell.waves,
                cell.pushes, cell.suppressed, cell.suppression_rate,
                cell.push_p50_ms, cell.push_p95_ms,
                cell.differential_mismatches);
    total_answers += cell.differential_answers;
    total_mismatches += cell.differential_mismatches;
    cells.push_back(std::move(cell));
  }
  std::printf("\ndifferential vs in-process engine: %zu answers, "
              "%zu mismatches\n",
              total_answers, total_mismatches);

  const std::string out_dir = [] {
    const char* dir = std::getenv("FANNR_OUT_DIR");
    return std::string(dir != nullptr ? dir : ".");
  }();
  const std::string out_path = out_dir + "/BENCH_subs.json";
  std::ofstream out(out_path);
  out << "{\n"
      << "  \"dataset\": \"" << dataset << "\",\n"
      << "  \"waves_per_cell\": " << waves << ",\n"
      << "  \"engine_threads\": " << engine_threads << ",\n"
      << "  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    out << "    {\"connections\": " << cell.connections
        << ", \"subscriptions\": " << cell.subscriptions
        << ", \"waves\": " << cell.waves << ", \"pushes\": " << cell.pushes
        << ", \"suppressed\": " << cell.suppressed
        << ", \"suppression_rate\": " << cell.suppression_rate
        << ", \"push_p50_ms\": " << cell.push_p50_ms
        << ", \"push_p95_ms\": " << cell.push_p95_ms
        << ", \"final_epoch\": " << cell.final_epoch
        << ", \"dropped_backpressure\": " << cell.dropped_backpressure
        << ", \"differential_answers\": " << cell.differential_answers
        << ", \"differential_mismatches\": " << cell.differential_mismatches
        << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"differential\": {\"answers\": " << total_answers
      << ", \"mismatches\": " << total_mismatches << "}\n"
      << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return total_mismatches == 0 ? 0 : 1;
}

}  // namespace
}  // namespace fannr::bench

int main() { return fannr::bench::Main(); }
