// Fig. 5: efficiency varying the coverage ratio A of Q.
// (a) IER-kNN by g_phi engine; (b) all algorithms.
//
// Paper's qualitative findings: cost grows with A for everything;
// expansion-based engines (A*, IER-A*, INE) have the steepest slopes;
// APX-sum and GD are the most stable.

#include <cstdio>

#include "common/bench_common.h"

int main() {
  using namespace fannr;
  using namespace fannr::bench;

  Env env = Env::Load({.labels = true, .gtree = true, .ch = false});
  const Graph& graph = env.graph();
  const double coverages[] = {0.01, 0.05, 0.10, 0.15, 0.20};

  std::vector<std::unique_ptr<GphiEngine>> engines;
  std::vector<std::string> engine_names;
  for (GphiKind kind : TableOneKinds()) {
    engines.push_back(env.Engine(kind));
    engine_names.emplace_back(GphiKindName(kind));
  }
  auto phl = env.Engine(GphiKind::kPhl);

  PrintHeader("Fig 5(a): IER-kNN by g_phi engine, varying A", env, "A",
              engine_names);
  for (double a : coverages) {
    Params params;
    params.a = a;
    auto instances = MakeInstances(graph, params, env.num_queries(),
                                   /*build_p_tree=*/true, 51);
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f%%", a * 100);
    PrintRow(label, TimeIerEngines(env, engines, instances, params));
  }

  PrintHeader("Fig 5(b): all algorithms, varying A", env, "A",
              AllAlgorithmNames());
  for (double a : coverages) {
    Params params;
    params.a = a;
    auto instances = MakeInstances(graph, params, env.num_queries(),
                                   /*build_p_tree=*/true, 52);
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f%%", a * 100);
    PrintRow(label, TimeAllAlgorithms(env, *phl, instances, params));
  }
  return 0;
}
