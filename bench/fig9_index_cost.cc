// Fig. 9: index size (a) and construction time (b) of G-tree and PHL
// across road networks.
//
// Paper's qualitative findings: G-tree needs less storage than PHL;
// construction times are comparable; PHL fails to build on the largest
// datasets on one machine (mirrored here by a memory budget on the
// labeling, FANNR_PHL_MEM_GB, default 8).
//
// Datasets default to the laptop-scale ladder TEST,DE; override with
// FANNR_FIG9_DATASETS=TEST,DE,ME,COL,NW (expect minutes to tens of
// minutes per large dataset on one core — see EXPERIMENTS.md).

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "common/bench_common.h"
#include "common/timer.h"

int main() {
  using namespace fannr;
  using namespace fannr::bench;

  const char* datasets_env = std::getenv("FANNR_FIG9_DATASETS");
  const std::string datasets_csv =
      datasets_env != nullptr ? datasets_env : "TEST,DE";
  const char* mem_env = std::getenv("FANNR_PHL_MEM_GB");
  const double phl_mem_gb =
      mem_env != nullptr ? std::strtod(mem_env, nullptr) : 8.0;

  std::printf("\n=== Fig 9: index cost of G-tree vs PHL ===\n");
  std::printf("%-8s %12s %14s %14s %16s %16s\n", "dataset", "|V|",
              "GTree size", "PHL size", "GTree build(s)", "PHL build(s)");

  std::stringstream csv(datasets_csv);
  std::string name;
  while (std::getline(csv, name, ',')) {
    if (!IsPresetName(name)) {
      std::printf("%-8s unknown preset, skipped\n", name.c_str());
      continue;
    }
    Graph graph = BuildPreset(name);

    Timer gtree_timer;
    GTree::Options options;
    options.leaf_capacity = Env::LeafCapacityFor(name);
    GTree gtree = GTree::Build(graph, options);
    const double gtree_seconds = gtree_timer.Seconds();

    Timer phl_timer;
    HubLabels::Options label_options;
    label_options.max_memory_bytes =
        static_cast<size_t>(phl_mem_gb * 1e9);
    auto labels = HubLabels::Build(graph, label_options);
    const double phl_seconds = phl_timer.Seconds();

    char gtree_size[32], phl_size[32], phl_time[32];
    std::snprintf(gtree_size, sizeof(gtree_size), "%.1f MB",
                  static_cast<double>(gtree.MemoryBytes()) / 1e6);
    if (labels.has_value()) {
      std::snprintf(phl_size, sizeof(phl_size), "%.1f MB",
                    static_cast<double>(labels->MemoryBytes()) / 1e6);
      std::snprintf(phl_time, sizeof(phl_time), "%.1f", phl_seconds);
    } else {
      // The paper's finding for CTR/USA: PHL exceeds the memory budget.
      std::snprintf(phl_size, sizeof(phl_size), ">%.0f GB(fail)",
                    phl_mem_gb);
      std::snprintf(phl_time, sizeof(phl_time), "(aborted)");
    }
    std::printf("%-8s %12zu %14s %14s %16.1f %16s\n", name.c_str(),
                graph.NumVertices(), gtree_size, phl_size, gtree_seconds,
                phl_time);
    std::fflush(stdout);
  }
  std::printf("\n(The paper's E/CTR/USA datasets are beyond the single-core"
              " budget; PHL's\nbuild failure on the largest networks is"
              " reproduced via the memory budget.)\n");
  return 0;
}
