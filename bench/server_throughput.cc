// Server throughput benchmark: queries/sec and end-to-end latency of the
// FANN_R wire protocol (net/server.h) over loopback TCP, across client
// connection counts, with and without concurrent UPDATE_WEIGHTS waves.
//
// Four measurements:
//   * steady cells — C synchronous clients (C in {1, 2, 8}) each stream
//     queries; qps is ok-answers per wall second, latency is per-request
//     end-to-end (client send to response decode), reported as p50/p95/p99;
//   * wave cells — the same, with an updater connection applying
//     congestion waves concurrently. Queries whose admission epoch went
//     stale are rejected per the protocol contract and re-submitted once
//     (re-submits are counted, and count toward latency like any request);
//   * an overload cell — a deliberately tiny admission queue behind a
//     slowed executor, hammered by 8 connections, to demonstrate
//     explicit OVERLOADED shedding (the CI gate requires a nonzero count);
//   * a drain cell — a SHUTDOWN frame races queued work; the DrainStats
//     must come back within the drain deadline.
//
// Output: a table on stdout plus BENCH_server.json (FANNR_OUT_DIR or the
// working directory), gated in CI by scripts/check_server_json.py.
//
// Environment: FANNR_DATASET (preset name, default TEST),
// FANNR_SERVER_QUERIES (queries per connection per cell, default 40),
// FANNR_SERVER_THREADS (engine worker threads, default 2).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "dynamic/update.h"
#include "fann/fannr.h"
#include "net/client.h"
#include "net/server.h"

namespace fannr::bench {
namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr
             ? static_cast<size_t>(std::strtoull(value, nullptr, 10))
             : fallback;
}

struct Cell {
  size_t connections = 0;
  bool waves = false;
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  size_t ok = 0, rejected = 0, timed_out = 0, resubmitted = 0;
  size_t waves_applied = 0;
  uint64_t final_epoch = 0;
};

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(q * static_cast<double>(
                                                  sorted.size() - 1));
  return sorted[rank];
}

/// Per-connection query stream: every client draws its own workload from
/// a seed derived from its id, so connections do not send identical
/// byte streams.
struct ClientOutcome {
  std::vector<double> latencies_ms;
  size_t ok = 0, rejected = 0, timed_out = 0, resubmitted = 0;
  uint64_t last_epoch = 0;
  bool transport_error = false;
  size_t overloaded = 0;
};

ClientOutcome DriveClient(const Graph& graph, uint16_t port, size_t id,
                          size_t num_queries,
                          const std::vector<uint32_t>& p_ids,
                          bool retry_overloaded) {
  ClientOutcome outcome;
  net::FannClient client;
  if (!client.Connect("127.0.0.1", port)) {
    outcome.transport_error = true;
    return outcome;
  }
  Rng rng(0x5EED5000u + id);
  for (size_t i = 0; i < num_queries; ++i) {
    net::WireQuery query;
    query.algorithm = static_cast<uint8_t>(FannAlgorithm::kGd);
    query.aggregate = static_cast<uint8_t>(Aggregate::kSum);
    query.phi = 0.5;
    query.p = p_ids;
    const std::vector<VertexId> q_ids =
        GenerateUniformQueryPoints(graph, 0.10, 16, rng);
    query.q = std::vector<uint32_t>(q_ids.begin(), q_ids.end());

    Timer t;
    net::QueryResponse response;
    bool sent = client.Query(query, response);
    if (!sent && client.last_error_code() == net::ErrorCode::kOverloaded) {
      ++outcome.overloaded;
      if (!retry_overloaded) continue;
      // Brief backoff, then one retry so the cell still measures real
      // completions under pressure.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      sent = client.Query(query, response);
      if (!sent && client.last_error_code() == net::ErrorCode::kOverloaded) {
        ++outcome.overloaded;
        continue;
      }
    }
    if (!sent) {
      outcome.transport_error = true;
      return outcome;
    }
    if (response.result.status ==
        static_cast<uint8_t>(QueryStatus::kRejected)) {
      // Stale admission epoch (an update landed in between): re-submit
      // once, per the contract.
      ++outcome.rejected;
      ++outcome.resubmitted;
      if (!client.Query(query, response)) {
        outcome.transport_error = true;
        return outcome;
      }
    }
    outcome.latencies_ms.push_back(t.Millis());
    switch (static_cast<QueryStatus>(response.result.status)) {
      case QueryStatus::kOk:
        ++outcome.ok;
        break;
      case QueryStatus::kRejected:
        ++outcome.rejected;
        break;
      case QueryStatus::kTimedOut:
        ++outcome.timed_out;
        break;
    }
    outcome.last_epoch = response.graph_epoch;
  }
  return outcome;
}

/// Runs one steady/wave cell against a fresh server.
Cell RunCell(const std::string& dataset, size_t connections, bool waves,
             size_t queries_per_conn, size_t engine_threads) {
  // The server owns a mutable copy (UPDATE_WEIGHTS mutates it); clients
  // share a pristine copy for workload generation only.
  Graph server_graph = BuildPreset(dataset);
  const Graph client_graph = BuildPreset(dataset);

  GphiResources resources;
  resources.graph = &server_graph;
  net::ServerConfig config;
  config.engine_options.num_threads = engine_threads;
  net::FannServer server(&server_graph, resources, std::move(config));
  std::string error;
  FANNR_CHECK(server.Start(&error));
  const uint16_t port = server.port();

  Rng p_rng(0xBA5E0001u);
  const std::vector<VertexId> p_vertices =
      GenerateDataPoints(client_graph, 0.01, p_rng);
  const std::vector<uint32_t> p_ids(p_vertices.begin(), p_vertices.end());

  std::atomic<bool> stop_waves{false};
  std::atomic<size_t> waves_applied{0};
  std::thread wave_thread;
  if (waves) {
    wave_thread = std::thread([&] {
      net::FannClient updater;
      if (!updater.Connect("127.0.0.1", port)) return;
      Rng wave_rng(0xCA11AB1Eu);
      while (!stop_waves.load(std::memory_order_relaxed)) {
        const dynamic::UpdateBatch wave = dynamic::MakeCongestionWave(
            client_graph, 0.02, 0.5, 3.0, wave_rng);
        net::UpdateWeightsRequest request;
        for (const EdgeWeightUpdate& u : wave.updates()) {
          request.entries.push_back({u.u, u.v, u.new_weight});
        }
        net::UpdateWeightsResponse applied;
        if (!updater.UpdateWeights(request, applied)) return;
        if (applied.status == 0) {
          waves_applied.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
  }

  std::vector<ClientOutcome> outcomes(connections);
  Timer wall;
  {
    std::vector<std::thread> drivers;
    for (size_t c = 0; c < connections; ++c) {
      drivers.emplace_back([&, c] {
        outcomes[c] = DriveClient(client_graph, port, c, queries_per_conn,
                                  p_ids, /*retry_overloaded=*/true);
      });
    }
    for (std::thread& t : drivers) t.join();
  }
  const double wall_ms = wall.Millis();

  if (waves) {
    stop_waves.store(true, std::memory_order_relaxed);
    wave_thread.join();
  }
  net::FannClient admin;
  FANNR_CHECK(admin.Connect("127.0.0.1", port) && admin.Shutdown());
  server.Wait();

  Cell cell;
  cell.connections = connections;
  cell.waves = waves;
  cell.wall_ms = wall_ms;
  cell.waves_applied = waves_applied.load(std::memory_order_relaxed);
  std::vector<double> latencies;
  for (const ClientOutcome& o : outcomes) {
    FANNR_CHECK(!o.transport_error);
    cell.ok += o.ok;
    cell.rejected += o.rejected;
    cell.timed_out += o.timed_out;
    cell.resubmitted += o.resubmitted;
    cell.final_epoch = std::max(cell.final_epoch, o.last_epoch);
    latencies.insert(latencies.end(), o.latencies_ms.begin(),
                     o.latencies_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());
  cell.p50_ms = Percentile(latencies, 0.50);
  cell.p95_ms = Percentile(latencies, 0.95);
  cell.p99_ms = Percentile(latencies, 0.99);
  cell.qps = 1000.0 * static_cast<double>(cell.ok) / wall_ms;
  return cell;
}

struct OverloadResult {
  size_t overloaded = 0;
  size_t ok = 0;
};

/// Saturates a deliberately tiny admission queue behind a slowed
/// executor to force explicit shedding.
OverloadResult RunOverload(const std::string& dataset,
                           size_t queries_per_conn) {
  Graph server_graph = BuildPreset(dataset);
  const Graph client_graph = BuildPreset(dataset);
  GphiResources resources;
  resources.graph = &server_graph;
  net::ServerConfig config;
  config.engine_options.num_threads = 1;
  config.max_queue_depth = 2;
  config.test_execution_gate = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  };
  net::FannServer server(&server_graph, resources, std::move(config));
  std::string error;
  FANNR_CHECK(server.Start(&error));
  const uint16_t port = server.port();

  Rng p_rng(0xBA5E0001u);
  const std::vector<VertexId> p_vertices =
      GenerateDataPoints(client_graph, 0.01, p_rng);
  const std::vector<uint32_t> p_ids(p_vertices.begin(), p_vertices.end());

  const size_t connections = 8;
  std::vector<ClientOutcome> outcomes(connections);
  {
    std::vector<std::thread> drivers;
    for (size_t c = 0; c < connections; ++c) {
      drivers.emplace_back([&, c] {
        outcomes[c] = DriveClient(client_graph, port, c, queries_per_conn,
                                  p_ids, /*retry_overloaded=*/false);
      });
    }
    for (std::thread& t : drivers) t.join();
  }
  net::FannClient admin;
  FANNR_CHECK(admin.Connect("127.0.0.1", port) && admin.Shutdown());
  server.Wait();

  OverloadResult result;
  for (const ClientOutcome& o : outcomes) {
    FANNR_CHECK(!o.transport_error);
    result.overloaded += o.overloaded;
    result.ok += o.ok;
  }
  return result;
}

/// A SHUTDOWN frame racing in-flight work: the drain must finish the
/// queued items (or abort them past the deadline) and report on time.
net::DrainStats RunDrain(const std::string& dataset) {
  Graph server_graph = BuildPreset(dataset);
  const Graph client_graph = BuildPreset(dataset);
  GphiResources resources;
  resources.graph = &server_graph;
  net::ServerConfig config;
  config.engine_options.num_threads = 1;
  config.drain_deadline_ms = 10'000.0;
  net::FannServer server(&server_graph, resources, std::move(config));
  std::string error;
  FANNR_CHECK(server.Start(&error));
  const uint16_t port = server.port();

  Rng p_rng(0xBA5E0001u);
  const std::vector<VertexId> p_vertices =
      GenerateDataPoints(client_graph, 0.01, p_rng);
  const std::vector<uint32_t> p_ids(p_vertices.begin(), p_vertices.end());

  std::vector<std::thread> drivers;
  for (size_t c = 0; c < 4; ++c) {
    drivers.emplace_back([&, c] {
      DriveClient(client_graph, port, c, 10, p_ids,
                  /*retry_overloaded=*/false);
    });
  }
  // Fire the shutdown while the drivers are mid-stream.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  net::FannClient admin;
  FANNR_CHECK(admin.Connect("127.0.0.1", port) && admin.Shutdown());
  const net::DrainStats stats = server.Wait();
  for (std::thread& t : drivers) t.join();
  return stats;
}

int Main() {
  const char* dataset_env = std::getenv("FANNR_DATASET");
  const std::string dataset = dataset_env != nullptr ? dataset_env : "TEST";
  FANNR_CHECK(IsPresetName(dataset));
  const size_t queries_per_conn =
      std::max<size_t>(1, EnvSize("FANNR_SERVER_QUERIES", 40));
  const size_t engine_threads =
      std::max<size_t>(1, EnvSize("FANNR_SERVER_THREADS", 2));

  std::printf("Server throughput — dataset %s, %zu queries/conn, "
              "%zu engine threads\n",
              dataset.c_str(), queries_per_conn, engine_threads);
  std::printf("%5s %6s %10s %9s %9s %9s %6s %5s %6s %7s\n", "conns", "waves",
              "qps", "p50 ms", "p95 ms", "p99 ms", "ok", "rej", "t/out",
              "epochs");

  std::vector<Cell> cells;
  for (const bool waves : {false, true}) {
    for (const size_t connections : {size_t{1}, size_t{2}, size_t{8}}) {
      Cell cell = RunCell(dataset, connections, waves, queries_per_conn,
                          engine_threads);
      std::printf("%5zu %6s %10.1f %9.2f %9.2f %9.2f %6zu %5zu %6zu %7zu\n",
                  cell.connections, cell.waves ? "yes" : "no", cell.qps,
                  cell.p50_ms, cell.p95_ms, cell.p99_ms, cell.ok,
                  cell.rejected, cell.timed_out,
                  static_cast<size_t>(cell.final_epoch));
      cells.push_back(std::move(cell));
    }
  }

  const OverloadResult overload = RunOverload(dataset, 25);
  std::printf("\noverload (queue depth 2, slowed executor, 8 conns): "
              "%zu OVERLOADED, %zu ok\n",
              overload.overloaded, overload.ok);

  const net::DrainStats drain = RunDrain(dataset);
  std::printf("drain: %.1f ms, %zu executed, %zu aborted, %s deadline\n",
              drain.drain_ms, drain.drained_items, drain.aborted_items,
              drain.within_deadline ? "within" : "PAST");

  const std::string out_dir = [] {
    const char* dir = std::getenv("FANNR_OUT_DIR");
    return std::string(dir != nullptr ? dir : ".");
  }();
  const std::string out_path = out_dir + "/BENCH_server.json";
  std::ofstream out(out_path);
  out << "{\n"
      << "  \"dataset\": \"" << dataset << "\",\n"
      << "  \"queries_per_connection\": " << queries_per_conn << ",\n"
      << "  \"engine_threads\": " << engine_threads << ",\n"
      << "  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    out << "    {\"connections\": " << cell.connections
        << ", \"waves\": " << (cell.waves ? "true" : "false")
        << ", \"qps\": " << cell.qps << ", \"wall_ms\": " << cell.wall_ms
        << ", \"p50_ms\": " << cell.p50_ms << ", \"p95_ms\": " << cell.p95_ms
        << ", \"p99_ms\": " << cell.p99_ms << ", \"ok\": " << cell.ok
        << ", \"rejected\": " << cell.rejected
        << ", \"timed_out\": " << cell.timed_out
        << ", \"resubmitted\": " << cell.resubmitted
        << ", \"waves_applied\": " << cell.waves_applied
        << ", \"final_epoch\": " << cell.final_epoch << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"overload\": {\"connections\": 8, \"queue_depth\": 2, "
      << "\"overloaded\": " << overload.overloaded
      << ", \"ok\": " << overload.ok << "},\n"
      << "  \"drain\": {\"drain_ms\": " << drain.drain_ms
      << ", \"drained_items\": " << drain.drained_items
      << ", \"aborted_items\": " << drain.aborted_items
      << ", \"within_deadline\": "
      << (drain.within_deadline ? "true" : "false") << "}\n"
      << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace fannr::bench

int main() { return fannr::bench::Main(); }
