// Server throughput benchmark: queries/sec and end-to-end latency of the
// FANN_R wire protocol (net/server.h) over loopback TCP, across client
// connection counts, with and without concurrent UPDATE_WEIGHTS waves.
//
// Measurements:
//   * steady cells — C synchronous clients (C in {1, 2, 8}) each stream
//     queries; qps is ok-answers per wall second, latency is per-request
//     end-to-end (client send to response decode), reported as p50/p95/p99;
//   * wave cells — the same, with an updater connection applying
//     congestion waves concurrently. Queries whose admission epoch went
//     stale are rejected per the protocol contract and re-submitted once
//     (re-submits are counted, and count toward latency like any request);
//   * pipelined cells — C connections (C in {128, 1024}) driven by one
//     poll(2) event loop with several in-flight frames per connection
//     (the protocol's request_id correlation), the workload the epoll
//     server core exists for. The CI gate requires the 128-connection
//     pipelined cell to beat the 8-connection synchronous cell ≥ 2× on
//     qps;
//   * a pipelined differential — the pipelined path's answers compared
//     bitwise (status, vertex id, distance bits, work counters, error
//     text) against an in-process BatchQueryEngine run of the same
//     queries, before and after a weight wave (gated: zero mismatches);
//   * an overload cell — a deliberately tiny admission queue behind a
//     slowed executor, hammered by 8 connections, to demonstrate
//     explicit OVERLOADED shedding (the CI gate requires a nonzero count);
//   * a drain cell — a SHUTDOWN frame races queued work; the DrainStats
//     must come back within the drain deadline.
//
// Output: a table on stdout plus BENCH_server.json (FANNR_OUT_DIR or the
// working directory), gated in CI by scripts/check_server_json.py.
//
// Environment: FANNR_DATASET (preset name, default TEST),
// FANNR_SERVER_QUERIES (queries per connection per cell, default 40),
// FANNR_SERVER_THREADS (engine worker threads, default 2).

#include <poll.h>
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "dynamic/update.h"
#include "engine/batch_engine.h"
#include "fann/fannr.h"
#include "net/client.h"
#include "net/iobuf.h"
#include "net/server.h"

namespace fannr::bench {
namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr
             ? static_cast<size_t>(std::strtoull(value, nullptr, 10))
             : fallback;
}

struct Cell {
  size_t connections = 0;
  bool waves = false;
  bool pipelined = false;
  size_t depth = 1;  ///< In-flight frames per connection (1 = synchronous).
  double wall_ms = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  size_t ok = 0, rejected = 0, timed_out = 0, resubmitted = 0;
  size_t waves_applied = 0;
  uint64_t final_epoch = 0;
};

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(q * static_cast<double>(
                                                  sorted.size() - 1));
  return sorted[rank];
}

/// Per-connection query stream: every client draws its own workload from
/// a seed derived from its id, so connections do not send identical
/// byte streams.
struct ClientOutcome {
  std::vector<double> latencies_ms;
  size_t ok = 0, rejected = 0, timed_out = 0, resubmitted = 0;
  uint64_t last_epoch = 0;
  bool transport_error = false;
  size_t overloaded = 0;
};

/// One cell query: the kGd/kSum workload every driver (synchronous and
/// pipelined) draws, so cells differ only in how the wire is driven.
/// Small (4 query points): the cells measure the serving path — dispatch,
/// framing, scheduling — not solver asymptotics, which the solver benches
/// own. A small query is also the regime where pipelining matters: when
/// per-query engine compute dominates, no wire discipline can help.
net::WireQuery MakeQuery(const Graph& graph,
                         const std::vector<uint32_t>& p_ids, Rng& rng) {
  net::WireQuery query;
  query.algorithm = static_cast<uint8_t>(FannAlgorithm::kGd);
  query.aggregate = static_cast<uint8_t>(Aggregate::kSum);
  query.phi = 0.5;
  query.p = p_ids;
  const std::vector<VertexId> q_ids =
      GenerateUniformQueryPoints(graph, 0.10, 4, rng);
  query.q = std::vector<uint32_t>(q_ids.begin(), q_ids.end());
  return query;
}

/// Pre-draws every connection's query stream (seeded per connection, so
/// connections do not send identical byte streams). Generation runs
/// before each cell's wall timer: the cells measure the serving path,
/// not client-side workload synthesis, which costs more per query than
/// the server does and would otherwise mask any serving-side change.
std::vector<std::vector<net::WireQuery>> MakeWorkload(
    const Graph& graph, const std::vector<uint32_t>& p_ids,
    size_t connections, size_t queries_per_conn) {
  std::vector<std::vector<net::WireQuery>> workload(connections);
  for (size_t c = 0; c < connections; ++c) {
    Rng rng(0x5EED5000u + c);
    workload[c].reserve(queries_per_conn);
    for (size_t i = 0; i < queries_per_conn; ++i) {
      workload[c].push_back(MakeQuery(graph, p_ids, rng));
    }
  }
  return workload;
}

/// Applies congestion waves through a dedicated updater connection until
/// told to stop (shared by the synchronous and pipelined wave cells).
std::thread StartWaveThread(const Graph& client_graph, uint16_t port,
                            std::atomic<bool>& stop,
                            std::atomic<size_t>& applied) {
  return std::thread([&client_graph, port, &stop, &applied] {
    net::FannClient updater;
    if (!updater.Connect("127.0.0.1", port)) return;
    Rng wave_rng(0xCA11AB1Eu);
    while (!stop.load(std::memory_order_relaxed)) {
      const dynamic::UpdateBatch wave = dynamic::MakeCongestionWave(
          client_graph, 0.02, 0.5, 3.0, wave_rng);
      net::UpdateWeightsRequest request;
      for (const EdgeWeightUpdate& u : wave.updates()) {
        request.entries.push_back({u.u, u.v, u.new_weight});
      }
      net::UpdateWeightsResponse response;
      if (!updater.UpdateWeights(request, response)) return;
      if (response.status == 0) {
        applied.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });
}

ClientOutcome DriveClient(uint16_t port,
                          const std::vector<net::WireQuery>& queries,
                          bool retry_overloaded) {
  ClientOutcome outcome;
  net::FannClient client;
  if (!client.Connect("127.0.0.1", port)) {
    outcome.transport_error = true;
    return outcome;
  }
  for (const net::WireQuery& query : queries) {
    Timer t;
    net::QueryResponse response;
    bool sent = client.Query(query, response);
    if (!sent && client.last_error_code() == net::ErrorCode::kOverloaded) {
      ++outcome.overloaded;
      if (!retry_overloaded) continue;
      // Brief backoff, then one retry so the cell still measures real
      // completions under pressure.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      sent = client.Query(query, response);
      if (!sent && client.last_error_code() == net::ErrorCode::kOverloaded) {
        ++outcome.overloaded;
        continue;
      }
    }
    if (!sent) {
      outcome.transport_error = true;
      return outcome;
    }
    if (response.result.status ==
        static_cast<uint8_t>(QueryStatus::kRejected)) {
      // Stale admission epoch (an update landed in between): re-submit
      // once, per the contract.
      ++outcome.rejected;
      ++outcome.resubmitted;
      if (!client.Query(query, response)) {
        outcome.transport_error = true;
        return outcome;
      }
    }
    outcome.latencies_ms.push_back(t.Millis());
    switch (static_cast<QueryStatus>(response.result.status)) {
      case QueryStatus::kOk:
        ++outcome.ok;
        break;
      case QueryStatus::kRejected:
        ++outcome.rejected;
        break;
      case QueryStatus::kTimedOut:
        ++outcome.timed_out;
        break;
    }
    outcome.last_epoch = response.graph_epoch;
  }
  return outcome;
}

/// Runs one steady/wave cell against a fresh server.
Cell RunCell(const std::string& dataset, size_t connections, bool waves,
             size_t queries_per_conn, size_t engine_threads) {
  // The server owns a mutable copy (UPDATE_WEIGHTS mutates it); clients
  // share a pristine copy for workload generation only.
  Graph server_graph = BuildPreset(dataset);
  const Graph client_graph = BuildPreset(dataset);

  GphiResources resources;
  resources.graph = &server_graph;
  net::ServerConfig config;
  config.engine_options.num_threads = engine_threads;
  net::FannServer server(&server_graph, resources, std::move(config));
  std::string error;
  FANNR_CHECK(server.Start(&error));
  const uint16_t port = server.port();

  Rng p_rng(0xBA5E0001u);
  const std::vector<VertexId> p_vertices =
      GenerateDataPoints(client_graph, 0.01, p_rng);
  const std::vector<uint32_t> p_ids(p_vertices.begin(), p_vertices.end());
  const std::vector<std::vector<net::WireQuery>> workload =
      MakeWorkload(client_graph, p_ids, connections, queries_per_conn);

  std::atomic<bool> stop_waves{false};
  std::atomic<size_t> waves_applied{0};
  std::thread wave_thread;
  if (waves) {
    wave_thread = StartWaveThread(client_graph, port, stop_waves,
                                  waves_applied);
  }

  std::vector<ClientOutcome> outcomes(connections);
  Timer wall;
  {
    std::vector<std::thread> drivers;
    for (size_t c = 0; c < connections; ++c) {
      drivers.emplace_back([&, c] {
        outcomes[c] = DriveClient(port, workload[c],
                                  /*retry_overloaded=*/true);
      });
    }
    for (std::thread& t : drivers) t.join();
  }
  const double wall_ms = wall.Millis();

  if (waves) {
    stop_waves.store(true, std::memory_order_relaxed);
    wave_thread.join();
  }
  net::FannClient admin;
  FANNR_CHECK(admin.Connect("127.0.0.1", port) && admin.Shutdown());
  server.Wait();

  Cell cell;
  cell.connections = connections;
  cell.waves = waves;
  cell.wall_ms = wall_ms;
  cell.waves_applied = waves_applied.load(std::memory_order_relaxed);
  std::vector<double> latencies;
  for (const ClientOutcome& o : outcomes) {
    FANNR_CHECK(!o.transport_error);
    cell.ok += o.ok;
    cell.rejected += o.rejected;
    cell.timed_out += o.timed_out;
    cell.resubmitted += o.resubmitted;
    cell.final_epoch = std::max(cell.final_epoch, o.last_epoch);
    latencies.insert(latencies.end(), o.latencies_ms.begin(),
                     o.latencies_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());
  cell.p50_ms = Percentile(latencies, 0.50);
  cell.p95_ms = Percentile(latencies, 0.95);
  cell.p99_ms = Percentile(latencies, 0.99);
  cell.qps = 1000.0 * static_cast<double>(cell.ok) / wall_ms;
  return cell;
}

/// One nonblocking connection in the pipelined driver: an outbound byte
/// queue, an inbound byte queue cut into frames incrementally, and the
/// window of requests awaiting a response, keyed by request_id.
struct PipeConn {
  net::Socket sock;
  net::ByteQueue in;
  net::ByteQueue out;
  struct InFlight {
    Timer timer;             ///< Started at first submission (resubmits
                             ///< inherit it, like the synchronous driver).
    net::WireQuery query;    ///< Kept for the one allowed resubmission.
    bool resubmitted = false;
  };
  std::map<uint64_t, InFlight> inflight;
  const std::vector<net::WireQuery>* queries = nullptr;  ///< Pre-drawn.
  uint64_t next_id = 1;
  size_t issued = 0;     ///< Queries submitted so far.
  size_t completed = 0;  ///< Final responses recorded.
  bool failed = false;
  bool finished = false;

  bool Done(size_t target) const {
    return failed || (issued >= target && inflight.empty());
  }
};

/// Drains as much of the outbound queue as the socket accepts right now.
void PumpOut(PipeConn& conn) {
  while (!conn.out.empty()) {
    const ssize_t sent = conn.sock.SendSome(conn.out.data(), conn.out.size());
    if (sent > 0) {
      conn.out.Consume(static_cast<size_t>(sent));
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    conn.failed = true;
    return;
  }
}

/// Encodes and queues one QUERY frame, tracking it in the in-flight map.
void SubmitQuery(PipeConn& conn, const net::WireQuery& query, Timer timer,
                 bool resubmitted) {
  const uint64_t id = conn.next_id++;
  net::QueryRequest request;
  request.query = query;
  const std::vector<uint8_t> frame =
      net::EncodeFrame(static_cast<uint16_t>(net::Opcode::kQuery), id,
                       net::EncodeQueryRequest(request));
  conn.out.Append(frame.data(), frame.size());
  conn.inflight.emplace(id, PipeConn::InFlight{timer, query, resubmitted});
}

/// Consumes one cut response frame; updates the in-flight window and the
/// per-connection outcome.
void HandleResponseFrame(PipeConn& conn, const net::FrameHeader& header,
                         const std::vector<uint8_t>& payload,
                         ClientOutcome& outcome) {
  auto it = conn.inflight.find(header.request_id);
  if (it == conn.inflight.end()) {
    conn.failed = true;  // a response for nothing we sent: desync
    return;
  }
  if (header.opcode == static_cast<uint16_t>(net::Opcode::kError)) {
    net::ErrorResponse error;
    if (!net::DecodeErrorResponse(payload, error) ||
        error.code != net::ErrorCode::kOverloaded) {
      conn.failed = true;
      return;
    }
    ++outcome.overloaded;
    if (!it->second.resubmitted) {
      // One retry, like the synchronous driver (minus its backoff — a
      // sleep here would stall every other connection on this loop).
      SubmitQuery(conn, it->second.query, it->second.timer, true);
    } else {
      ++conn.completed;  // shed twice: dropped, counted only as overload
    }
    conn.inflight.erase(it);
    return;
  }
  if (header.opcode != static_cast<uint16_t>(net::Opcode::kQueryResult)) {
    conn.failed = true;
    return;
  }
  net::QueryResponse response;
  if (!net::DecodeQueryResponse(payload, response)) {
    conn.failed = true;
    return;
  }
  const auto status = static_cast<QueryStatus>(response.result.status);
  if (status == QueryStatus::kRejected && !it->second.resubmitted) {
    // Stale admission epoch: re-submit once under the new epoch, keeping
    // the original timer so the retry costs latency like any request.
    ++outcome.rejected;
    ++outcome.resubmitted;
    SubmitQuery(conn, it->second.query, it->second.timer, true);
    conn.inflight.erase(it);
    return;
  }
  outcome.latencies_ms.push_back(it->second.timer.Millis());
  switch (status) {
    case QueryStatus::kOk:
      ++outcome.ok;
      break;
    case QueryStatus::kRejected:
      ++outcome.rejected;
      break;
    case QueryStatus::kTimedOut:
      ++outcome.timed_out;
      break;
  }
  outcome.last_epoch = response.graph_epoch;
  ++conn.completed;
  conn.inflight.erase(it);
}

/// Raises the soft RLIMIT_NOFILE toward what `connections` needs (both
/// socket ends live in this process) and returns the connection count
/// that actually fits. CI raises the limit before running (see the
/// server job); this is the belt-and-suspenders for other environments.
size_t ClampConnectionsToFdLimit(size_t connections) {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return connections;
  const rlim_t needed = 2 * static_cast<rlim_t>(connections) + 128;
  if (limit.rlim_cur < needed &&
      (limit.rlim_max == RLIM_INFINITY || limit.rlim_max >= needed)) {
    rlimit raised = limit;
    raised.rlim_cur = needed;
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) return connections;
  }
  if (limit.rlim_cur >= needed) return connections;
  const size_t fit = limit.rlim_cur > 192
                         ? (static_cast<size_t>(limit.rlim_cur) - 128) / 2
                         : 32;
  std::fprintf(stderr,
               "warning: RLIMIT_NOFILE %llu too low for %zu connections; "
               "clamping to %zu\n",
               static_cast<unsigned long long>(limit.rlim_cur), connections,
               fit);
  return std::min(connections, fit);
}

/// Runs one pipelined cell: `connections` nonblocking sockets driven by
/// a single poll(2) loop, each keeping up to `depth` frames in flight.
Cell RunPipelinedCell(const std::string& dataset, size_t connections,
                      bool waves, size_t queries_per_conn, size_t depth,
                      size_t engine_threads) {
  connections = ClampConnectionsToFdLimit(connections);
  Graph server_graph = BuildPreset(dataset);
  const Graph client_graph = BuildPreset(dataset);

  GphiResources resources;
  resources.graph = &server_graph;
  net::ServerConfig config;
  config.engine_options.num_threads = engine_threads;
  // The point of the cell is pipelining pressure, not admission-queue
  // shedding (the overload cell covers that): size connection and queue
  // limits to the offered load.
  config.max_connections = connections + 8;
  config.max_queue_depth = connections * depth + 64;
  net::FannServer server(&server_graph, resources, std::move(config));
  std::string error;
  FANNR_CHECK(server.Start(&error));
  const uint16_t port = server.port();

  Rng p_rng(0xBA5E0001u);
  const std::vector<VertexId> p_vertices =
      GenerateDataPoints(client_graph, 0.01, p_rng);
  const std::vector<uint32_t> p_ids(p_vertices.begin(), p_vertices.end());
  const std::vector<std::vector<net::WireQuery>> workload =
      MakeWorkload(client_graph, p_ids, connections, queries_per_conn);

  std::atomic<bool> stop_waves{false};
  std::atomic<size_t> waves_applied{0};
  std::thread wave_thread;
  if (waves) {
    wave_thread = StartWaveThread(client_graph, port, stop_waves,
                                  waves_applied);
  }

  std::vector<std::unique_ptr<PipeConn>> conns;
  conns.reserve(connections);
  for (size_t c = 0; c < connections; ++c) {
    auto conn = std::make_unique<PipeConn>();
    std::string connect_error;
    conn->sock = net::TcpConnect("127.0.0.1", port, &connect_error);
    FANNR_CHECK(conn->sock.valid());
    FANNR_CHECK(conn->sock.SetNonBlocking());
    conn->queries = &workload[c];
    conns.push_back(std::move(conn));
  }

  std::vector<ClientOutcome> outcomes(connections);
  std::vector<pollfd> fds;
  std::vector<size_t> fd_conn;
  size_t active = connections;
  uint8_t scratch[64 * 1024];

  Timer wall;
  while (active > 0) {
    // Top up every window and push whatever the sockets will take.
    for (size_t c = 0; c < connections; ++c) {
      PipeConn& conn = *conns[c];
      if (conn.finished) continue;
      while (!conn.failed && conn.issued < queries_per_conn &&
             conn.inflight.size() < depth) {
        SubmitQuery(conn, (*conn.queries)[conn.issued], Timer(), false);
        ++conn.issued;
      }
      if (!conn.failed) PumpOut(conn);
      if (conn.Done(queries_per_conn)) {
        conn.finished = true;
        --active;
      }
    }
    if (active == 0) break;

    fds.clear();
    fd_conn.clear();
    for (size_t c = 0; c < connections; ++c) {
      const PipeConn& conn = *conns[c];
      if (conn.finished) continue;
      short events = POLLIN;
      if (!conn.out.empty()) events |= POLLOUT;
      fds.push_back({conn.sock.fd(), events, 0});
      fd_conn.push_back(c);
    }
    const int rc = ::poll(fds.data(), fds.size(), 5000);
    if (rc < 0) {
      FANNR_CHECK(errno == EINTR);
      continue;
    }

    for (size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      PipeConn& conn = *conns[fd_conn[i]];
      ClientOutcome& outcome = outcomes[fd_conn[i]];
      if ((fds[i].revents & POLLOUT) != 0) PumpOut(conn);
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        while (!conn.failed) {
          const ssize_t got = conn.sock.RecvSome(scratch, sizeof(scratch));
          if (got > 0) {
            conn.in.Append(scratch, static_cast<size_t>(got));
            if (static_cast<size_t>(got) < sizeof(scratch)) break;
            continue;
          }
          if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          conn.failed = true;  // EOF or error with responses outstanding
        }
        while (!conn.failed) {
          net::FrameCut cut = net::CutFrame(conn.in);
          if (cut.kind == net::FrameCut::Kind::kNeedMore) break;
          if (cut.kind == net::FrameCut::Kind::kPoisoned) {
            conn.failed = true;
            break;
          }
          HandleResponseFrame(conn, cut.header, cut.payload, outcome);
        }
        // A resubmission queued by a response must leave this iteration
        // on the wire, not wait for the next poll round.
        if (!conn.failed) PumpOut(conn);
      }
      if (!conn.finished && conn.Done(queries_per_conn)) {
        conn.finished = true;
        --active;
      }
    }
  }
  const double wall_ms = wall.Millis();

  if (waves) {
    stop_waves.store(true, std::memory_order_relaxed);
    wave_thread.join();
  }
  for (std::unique_ptr<PipeConn>& conn : conns) {
    FANNR_CHECK(!conn->failed);
    conn->sock.Close();
  }
  net::FannClient admin;
  FANNR_CHECK(admin.Connect("127.0.0.1", port) && admin.Shutdown());
  server.Wait();

  Cell cell;
  cell.connections = connections;
  cell.waves = waves;
  cell.pipelined = true;
  cell.depth = depth;
  cell.wall_ms = wall_ms;
  cell.waves_applied = waves_applied.load(std::memory_order_relaxed);
  std::vector<double> latencies;
  for (const ClientOutcome& o : outcomes) {
    cell.ok += o.ok;
    cell.rejected += o.rejected;
    cell.timed_out += o.timed_out;
    cell.resubmitted += o.resubmitted;
    cell.final_epoch = std::max(cell.final_epoch, o.last_epoch);
    latencies.insert(latencies.end(), o.latencies_ms.begin(),
                     o.latencies_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());
  cell.p50_ms = Percentile(latencies, 0.50);
  cell.p95_ms = Percentile(latencies, 0.95);
  cell.p99_ms = Percentile(latencies, 0.99);
  cell.qps = 1000.0 * static_cast<double>(cell.ok) / wall_ms;
  return cell;
}

struct DifferentialOutcome {
  size_t queries = 0;
  size_t mismatches = 0;
};

/// Compares pipelined wire answers bitwise against an in-process
/// BatchQueryEngine run of the same queries — the bench-level echo of
/// tests/net_loopback_differential_test.cc, gated in CI via the JSON.
/// Phase 1 runs at epoch 0; a congestion wave is then applied to both
/// sides and phase 2 repeats the comparison at epoch 1.
DifferentialOutcome RunPipelinedDifferential(const std::string& dataset,
                                             size_t engine_threads) {
  Graph server_graph = BuildPreset(dataset);
  Graph ref_graph = BuildPreset(dataset);
  const Graph client_graph = BuildPreset(dataset);

  GphiResources resources;
  resources.graph = &server_graph;
  net::ServerConfig config;
  config.engine_options.num_threads = engine_threads;
  net::FannServer server(&server_graph, resources, std::move(config));
  std::string error;
  FANNR_CHECK(server.Start(&error));
  const uint16_t port = server.port();

  GphiResources ref_resources;
  ref_resources.graph = &ref_graph;
  BatchOptions ref_options;
  ref_options.num_threads = engine_threads;
  BatchQueryEngine reference(ref_resources, ref_options);

  Rng p_rng(0xBA5E0001u);
  const std::vector<VertexId> p_vertices =
      GenerateDataPoints(client_graph, 0.01, p_rng);
  const std::vector<uint32_t> p_ids(p_vertices.begin(), p_vertices.end());
  Rng q_rng(0xD1FF0001u);
  std::vector<net::WireQuery> jobs;
  for (size_t i = 0; i < 24; ++i) {
    jobs.push_back(MakeQuery(client_graph, p_ids, q_rng));
  }

  DifferentialOutcome outcome;
  const auto run_phase = [&](uint64_t expected_epoch) {
    // In-process reference: one Run over all jobs. The server is free to
    // merge the pipelined frames into whatever bursts it likes — per-job
    // answers must not depend on batch composition.
    std::vector<std::unique_ptr<IndexedVertexSet>> sets;
    std::vector<FannrQuery> batch;
    for (const net::WireQuery& wire : jobs) {
      auto p = std::make_unique<IndexedVertexSet>(
          ref_graph.NumVertices(),
          std::vector<VertexId>(wire.p.begin(), wire.p.end()));
      auto q = std::make_unique<IndexedVertexSet>(
          ref_graph.NumVertices(),
          std::vector<VertexId>(wire.q.begin(), wire.q.end()));
      FannrQuery job;
      job.query.graph = &ref_graph;
      job.query.data_points = p.get();
      job.query.query_points = q.get();
      job.query.phi = wire.phi;
      job.query.aggregate = static_cast<Aggregate>(wire.aggregate);
      job.algorithm = static_cast<FannAlgorithm>(wire.algorithm);
      sets.push_back(std::move(p));
      sets.push_back(std::move(q));
      batch.push_back(job);
    }
    const std::vector<FannResult> results = reference.Run(batch);
    std::vector<net::WireResult> expected;
    expected.reserve(results.size());
    for (const FannResult& r : results) expected.push_back(net::ToWire(r));

    // Pipelined: all frames on the wire before any response is read.
    std::string connect_error;
    net::Socket sock = net::TcpConnect("127.0.0.1", port, &connect_error);
    FANNR_CHECK(sock.valid());
    for (size_t i = 0; i < jobs.size(); ++i) {
      net::QueryRequest request;
      request.query = jobs[i];
      const std::vector<uint8_t> frame = net::EncodeFrame(
          static_cast<uint16_t>(net::Opcode::kQuery), expected_epoch * 1000 + i,
          net::EncodeQueryRequest(request));
      FANNR_CHECK(sock.WriteFull(frame.data(), frame.size()));
    }
    std::map<uint64_t, net::WireResult> by_id;
    for (size_t i = 0; i < jobs.size(); ++i) {
      uint8_t header_bytes[net::kFrameHeaderBytes];
      FANNR_CHECK(sock.ReadFull(header_bytes, sizeof(header_bytes)));
      net::FrameHeader header;
      net::DecodeFrameHeader(header_bytes, header);
      FANNR_CHECK(header.opcode ==
                  static_cast<uint16_t>(net::Opcode::kQueryResult));
      std::vector<uint8_t> payload(header.payload_length);
      if (!payload.empty()) {
        FANNR_CHECK(sock.ReadFull(payload.data(), payload.size()));
      }
      net::QueryResponse response;
      FANNR_CHECK(net::DecodeQueryResponse(payload, response));
      FANNR_CHECK(response.graph_epoch == expected_epoch);
      by_id.emplace(header.request_id, response.result);
    }
    for (size_t i = 0; i < jobs.size(); ++i) {
      ++outcome.queries;
      const auto it = by_id.find(expected_epoch * 1000 + i);
      if (it == by_id.end()) {
        ++outcome.mismatches;
        continue;
      }
      const net::WireResult& got = it->second;
      const net::WireResult& want = expected[i];
      const bool equal =
          got.status == want.status && got.best == want.best &&
          std::memcmp(&got.distance, &want.distance,
                      sizeof(got.distance)) == 0 &&
          got.gphi_evaluations == want.gphi_evaluations &&
          got.subset == want.subset && got.error == want.error;
      if (!equal) ++outcome.mismatches;
    }
  };

  run_phase(0);

  // The same wave on both sides: over the wire to the server, in-process
  // to the reference graph.
  Rng wave_rng(0xCA11AB1Eu);
  const dynamic::UpdateBatch wave =
      dynamic::MakeCongestionWave(client_graph, 0.02, 0.5, 3.0, wave_rng);
  {
    net::FannClient updater;
    FANNR_CHECK(updater.Connect("127.0.0.1", port));
    net::UpdateWeightsRequest request;
    for (const EdgeWeightUpdate& u : wave.updates()) {
      request.entries.push_back({u.u, u.v, u.new_weight});
    }
    net::UpdateWeightsResponse applied;
    FANNR_CHECK(updater.UpdateWeights(request, applied));
    FANNR_CHECK(applied.status == 0);
  }
  const dynamic::ApplyResult applied = wave.Apply(ref_graph);
  FANNR_CHECK(applied.new_epoch == 1);

  run_phase(1);

  net::FannClient admin;
  FANNR_CHECK(admin.Connect("127.0.0.1", port) && admin.Shutdown());
  server.Wait();
  return outcome;
}

struct OverloadResult {
  size_t overloaded = 0;
  size_t ok = 0;
};

/// Saturates a deliberately tiny admission queue behind a slowed
/// executor to force explicit shedding.
OverloadResult RunOverload(const std::string& dataset,
                           size_t queries_per_conn) {
  Graph server_graph = BuildPreset(dataset);
  const Graph client_graph = BuildPreset(dataset);
  GphiResources resources;
  resources.graph = &server_graph;
  net::ServerConfig config;
  config.engine_options.num_threads = 1;
  config.max_queue_depth = 2;
  config.test_execution_gate = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  };
  net::FannServer server(&server_graph, resources, std::move(config));
  std::string error;
  FANNR_CHECK(server.Start(&error));
  const uint16_t port = server.port();

  Rng p_rng(0xBA5E0001u);
  const std::vector<VertexId> p_vertices =
      GenerateDataPoints(client_graph, 0.01, p_rng);
  const std::vector<uint32_t> p_ids(p_vertices.begin(), p_vertices.end());

  const size_t connections = 8;
  const std::vector<std::vector<net::WireQuery>> workload =
      MakeWorkload(client_graph, p_ids, connections, queries_per_conn);
  std::vector<ClientOutcome> outcomes(connections);
  {
    std::vector<std::thread> drivers;
    for (size_t c = 0; c < connections; ++c) {
      drivers.emplace_back([&, c] {
        outcomes[c] = DriveClient(port, workload[c],
                                  /*retry_overloaded=*/false);
      });
    }
    for (std::thread& t : drivers) t.join();
  }
  net::FannClient admin;
  FANNR_CHECK(admin.Connect("127.0.0.1", port) && admin.Shutdown());
  server.Wait();

  OverloadResult result;
  for (const ClientOutcome& o : outcomes) {
    FANNR_CHECK(!o.transport_error);
    result.overloaded += o.overloaded;
    result.ok += o.ok;
  }
  return result;
}

/// A SHUTDOWN frame racing in-flight work: the drain must finish the
/// queued items (or abort them past the deadline) and report on time.
net::DrainStats RunDrain(const std::string& dataset) {
  Graph server_graph = BuildPreset(dataset);
  const Graph client_graph = BuildPreset(dataset);
  GphiResources resources;
  resources.graph = &server_graph;
  net::ServerConfig config;
  config.engine_options.num_threads = 1;
  config.drain_deadline_ms = 10'000.0;
  net::FannServer server(&server_graph, resources, std::move(config));
  std::string error;
  FANNR_CHECK(server.Start(&error));
  const uint16_t port = server.port();

  Rng p_rng(0xBA5E0001u);
  const std::vector<VertexId> p_vertices =
      GenerateDataPoints(client_graph, 0.01, p_rng);
  const std::vector<uint32_t> p_ids(p_vertices.begin(), p_vertices.end());
  const std::vector<std::vector<net::WireQuery>> workload =
      MakeWorkload(client_graph, p_ids, 4, 10);

  std::vector<std::thread> drivers;
  for (size_t c = 0; c < 4; ++c) {
    drivers.emplace_back([&, c] {
      DriveClient(port, workload[c], /*retry_overloaded=*/false);
    });
  }
  // Fire the shutdown while the drivers are mid-stream.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  net::FannClient admin;
  FANNR_CHECK(admin.Connect("127.0.0.1", port) && admin.Shutdown());
  const net::DrainStats stats = server.Wait();
  for (std::thread& t : drivers) t.join();
  return stats;
}

int Main() {
  const char* dataset_env = std::getenv("FANNR_DATASET");
  const std::string dataset = dataset_env != nullptr ? dataset_env : "TEST";
  FANNR_CHECK(IsPresetName(dataset));
  const size_t queries_per_conn =
      std::max<size_t>(1, EnvSize("FANNR_SERVER_QUERIES", 40));
  const size_t engine_threads =
      std::max<size_t>(1, EnvSize("FANNR_SERVER_THREADS", 2));

  std::printf("Server throughput — dataset %s, %zu queries/conn, "
              "%zu engine threads\n",
              dataset.c_str(), queries_per_conn, engine_threads);
  std::printf("%5s %6s %5s %10s %9s %9s %9s %6s %5s %6s %7s\n", "conns",
              "waves", "depth", "qps", "p50 ms", "p95 ms", "p99 ms", "ok",
              "rej", "t/out", "epochs");
  const auto print_cell = [](const Cell& cell) {
    std::printf(
        "%5zu %6s %5zu %10.1f %9.2f %9.2f %9.2f %6zu %5zu %6zu %7zu\n",
        cell.connections, cell.waves ? "yes" : "no", cell.depth, cell.qps,
        cell.p50_ms, cell.p95_ms, cell.p99_ms, cell.ok, cell.rejected,
        cell.timed_out, static_cast<size_t>(cell.final_epoch));
  };

  std::vector<Cell> cells;
  for (const bool waves : {false, true}) {
    for (const size_t connections : {size_t{1}, size_t{2}, size_t{8}}) {
      Cell cell = RunCell(dataset, connections, waves, queries_per_conn,
                          engine_threads);
      print_cell(cell);
      cells.push_back(std::move(cell));
    }
  }

  // Pipelined cells: the event-loop workload. The 1024-connection cell
  // keeps total queries comparable by shrinking the per-connection
  // stream; its depth is lower so the offered load stays bounded.
  struct PipelinedSpec {
    size_t connections;
    bool waves;
    size_t queries;
    size_t depth;
  };
  const PipelinedSpec pipelined_specs[] = {
      {128, false, queries_per_conn, 8},
      {128, true, queries_per_conn, 8},
      {1024, false, std::max<size_t>(1, queries_per_conn / 10), 4},
  };
  for (const PipelinedSpec& spec : pipelined_specs) {
    Cell cell = RunPipelinedCell(dataset, spec.connections, spec.waves,
                                 spec.queries, spec.depth, engine_threads);
    print_cell(cell);
    cells.push_back(std::move(cell));
  }

  const DifferentialOutcome differential =
      RunPipelinedDifferential(dataset, engine_threads);
  std::printf("\npipelined differential vs in-process engine: "
              "%zu queries, %zu mismatches\n",
              differential.queries, differential.mismatches);

  const OverloadResult overload = RunOverload(dataset, 25);
  std::printf("\noverload (queue depth 2, slowed executor, 8 conns): "
              "%zu OVERLOADED, %zu ok\n",
              overload.overloaded, overload.ok);

  const net::DrainStats drain = RunDrain(dataset);
  std::printf("drain: %.1f ms, %zu executed, %zu aborted, %s deadline\n",
              drain.drain_ms, drain.drained_items, drain.aborted_items,
              drain.within_deadline ? "within" : "PAST");

  const std::string out_dir = [] {
    const char* dir = std::getenv("FANNR_OUT_DIR");
    return std::string(dir != nullptr ? dir : ".");
  }();
  const std::string out_path = out_dir + "/BENCH_server.json";
  std::ofstream out(out_path);
  out << "{\n"
      << "  \"dataset\": \"" << dataset << "\",\n"
      << "  \"queries_per_connection\": " << queries_per_conn << ",\n"
      << "  \"engine_threads\": " << engine_threads << ",\n"
      << "  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    out << "    {\"connections\": " << cell.connections
        << ", \"waves\": " << (cell.waves ? "true" : "false")
        << ", \"pipelined\": " << (cell.pipelined ? "true" : "false")
        << ", \"depth\": " << cell.depth
        << ", \"qps\": " << cell.qps << ", \"wall_ms\": " << cell.wall_ms
        << ", \"p50_ms\": " << cell.p50_ms << ", \"p95_ms\": " << cell.p95_ms
        << ", \"p99_ms\": " << cell.p99_ms << ", \"ok\": " << cell.ok
        << ", \"rejected\": " << cell.rejected
        << ", \"timed_out\": " << cell.timed_out
        << ", \"resubmitted\": " << cell.resubmitted
        << ", \"waves_applied\": " << cell.waves_applied
        << ", \"final_epoch\": " << cell.final_epoch << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"pipelined_differential\": {\"queries\": "
      << differential.queries
      << ", \"mismatches\": " << differential.mismatches << "},\n"
      << "  \"overload\": {\"connections\": 8, \"queue_depth\": 2, "
      << "\"overloaded\": " << overload.overloaded
      << ", \"ok\": " << overload.ok << "},\n"
      << "  \"drain\": {\"drain_ms\": " << drain.drain_ms
      << ", \"drained_items\": " << drain.drained_items
      << ", \"aborted_items\": " << drain.aborted_items
      << ", \"within_deadline\": "
      << (drain.within_deadline ? "true" : "false") << "}\n"
      << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace fannr::bench

int main() { return fannr::bench::Main(); }
