// Continent-scale suite: how build, index, load, and query costs scale
// with |V|, and whether the mmap (v3 arena) load path actually delivers
// its reason for existing — opening a prebuilt index in time proportional
// to a structural scan instead of a full deserialize.
//
// For every |V| on the ladder the bench measures
//   * synthetic network generation time (the stand-in for "build"),
//   * DIMACS parse time, sequential vs chunk-parallel, with a
//     fingerprint check proving the two parses agree,
//   * graph cache write/load: v2 stream Save/Load vs v3 SaveV3/LoadMmap,
//     including file sizes and the v2/v3 load-time ratio (mmap_speedup),
//   * G-tree build (leaf capacity scaled with |V|, as in the paper) +
//     v2-vs-v3 index load on the sizes below the index gate (the 10^6
//     index build is the nightly/local job, not a CI smoke; the CI
//     default covers 10^4 and 10^5), and
//   * GD query latency through the batch engine at 1 and 8 threads, run
//     twice — on the in-memory substrate and on the mmap-loaded one —
//     with a bitwise comparison of every answer. The differential runs
//     once on the raw graph and, where the index was built, again with
//     the G-tree as the distance substrate, so the mmap-loaded *index*
//     is what gets diffed. A mismatch is a hard failure (exit 1), not a
//     JSON field somebody has to notice.
//
// Output: a table on stdout plus BENCH_scale.json (FANNR_OUT_DIR or cwd)
// for scripts/check_scale_json.py.
//
// Environment:
//   FANNR_SCALE_SIZES        comma-separated |V| targets
//                            (default "10000,100000"; the committed
//                            artifact adds 1000000)
//   FANNR_SCALE_INDEX_MAX_V  build the G-tree only for sizes <= this
//                            (default 150000; the committed artifact run
//                            raises it to 1000000)
//   FANNR_SCALE_QUERIES      GD queries per latency cell (default 4)
//   FANNR_OUT_DIR            where BENCH_scale.json goes

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/bench_common.h"
#include "common/timer.h"
#include "engine/batch_engine.h"
#include "graph/generator.h"
#include "graph/io.h"
#include "sp/gtree/gtree.h"

namespace fannr::bench {
namespace {

struct GtreeCell {
  bool built = false;
  size_t leaf_capacity = 0;
  double build_ms = 0.0;
  uint64_t v2_bytes = 0;
  uint64_t v3_bytes = 0;
  double v2_load_ms = 0.0;
  double v3_mmap_load_ms = 0.0;
  double mmap_speedup = 0.0;
  // GD-over-G-tree latency and the mmap-index differential at T=1/T=8.
  double query_mean_ms_t1 = 0.0;
  double query_mean_ms_t8 = 0.0;
  bool query_identical = false;
};

struct ScaleCell {
  size_t target_vertices = 0;
  size_t num_vertices = 0;
  size_t num_edges = 0;
  double gen_ms = 0.0;
  // DIMACS parse, sequential vs chunk-parallel.
  double parse_seq_ms = 0.0;
  double parse_par_ms = 0.0;
  double parse_speedup = 0.0;
  bool parallel_load_identical = false;
  // Graph cache files.
  uint64_t v2_bytes = 0;
  uint64_t v3_bytes = 0;
  double v2_save_ms = 0.0;
  double v3_save_ms = 0.0;
  double v2_load_ms = 0.0;
  double v3_mmap_load_ms = 0.0;
  double mmap_speedup = 0.0;
  GtreeCell gtree;
  // GD query latency (batch engine, shared cache) on the mmap graph.
  double query_mean_ms_t1 = 0.0;
  double query_mean_ms_t8 = 0.0;
  // Bitwise equality of every answer, mmap vs in-memory, at T=1 and T=8.
  bool query_identical = false;
};

size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr
             ? static_cast<size_t>(std::strtoull(value, nullptr, 10))
             : fallback;
}

std::vector<size_t> LadderSizes() {
  const char* value = std::getenv("FANNR_SCALE_SIZES");
  const std::string spec = value != nullptr ? value : "10000,100000";
  std::vector<size_t> sizes;
  std::stringstream ss(spec);
  std::string token;
  while (std::getline(ss, token, ',')) {
    const size_t n = static_cast<size_t>(std::strtoull(token.c_str(),
                                                       nullptr, 10));
    if (n >= 4) sizes.push_back(n);
  }
  return sizes;
}

// The paper's tau: 64 for town-sized graphs up to 512 at continent
// scale. Bigger leaves keep the tree shallow (and the 1-core build
// tractable) without inflating the per-leaf distance matrices past the
// border counts a grid network produces.
size_t LeafCapacityForSize(size_t num_vertices) {
  if (num_vertices < 50'000) return 64;
  if (num_vertices < 500'000) return 128;
  return 512;
}

uint64_t FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in ? static_cast<uint64_t>(in.tellg()) : 0;
}

// GD batch on `graph` with the given substrate; returns (mean solve ms,
// results) so the caller can compare answers bitwise across substrates.
struct QueryRun {
  double mean_ms = 0.0;
  std::vector<FannResult> results;
};

QueryRun RunQueries(const Graph& graph, const IndexedVertexSet& p,
                    const IndexedVertexSet& q, size_t num_queries,
                    size_t threads, const GTree* tree = nullptr) {
  std::vector<FannrQuery> jobs;
  for (size_t i = 0; i < num_queries; ++i) {
    FannrQuery job;
    job.query = FannQuery{&graph, &p, &q, 0.5, Aggregate::kSum};
    job.algorithm = FannAlgorithm::kGd;
    jobs.push_back(job);
  }
  GphiResources resources;
  resources.graph = &graph;
  BatchOptions options;
  options.num_threads = threads;
  if (tree != nullptr) {
    resources.gtree = tree;
    options.gphi_kind = GphiKind::kGTree;
  }
  BatchQueryEngine engine(resources, options);
  Timer t;
  QueryRun run;
  run.results = engine.Run(jobs);
  run.mean_ms = t.Millis() / static_cast<double>(num_queries);
  return run;
}

bool SameAnswers(const std::vector<FannResult>& a,
                 const std::vector<FannResult>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].best != b[i].best || a[i].subset != b[i].subset ||
        std::bit_cast<uint64_t>(a[i].distance) !=
            std::bit_cast<uint64_t>(b[i].distance)) {
      return false;
    }
  }
  return true;
}

ScaleCell RunCell(size_t target, size_t index_max_v, size_t num_queries,
                  ThreadPool& pool, const std::string& tmp_dir) {
  ScaleCell cell;
  cell.target_vertices = target;

  // 1. Generate (the "build" leg of the curve).
  GridNetworkOptions gen;
  gen.rows = gen.cols =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(target))));
  Rng rng(0x5CA1Eu + target);
  Timer gen_timer;
  Graph graph = GenerateGridNetwork(gen, rng);
  cell.gen_ms = gen_timer.Millis();
  cell.num_vertices = graph.NumVertices();
  cell.num_edges = graph.NumEdges();

  // 2. DIMACS parse, sequential vs parallel, on the same bytes.
  const std::string gr = tmp_dir + "/scale_" + std::to_string(target) + ".gr";
  const std::string co = tmp_dir + "/scale_" + std::to_string(target) + ".co";
  FANNR_CHECK(SaveDimacs(graph, gr, co, /*coord_scale=*/1000.0));
  Timer seq_timer;
  LoadResult seq = LoadDimacs(gr, co);
  cell.parse_seq_ms = seq_timer.Millis();
  FANNR_CHECK(seq.ok());
  Timer par_timer;
  LoadResult par = LoadDimacs(gr, co, &pool);
  cell.parse_par_ms = par_timer.Millis();
  FANNR_CHECK(par.ok());
  cell.parse_speedup = cell.parse_seq_ms / cell.parse_par_ms;
  cell.parallel_load_identical =
      par.graph->Fingerprint() == seq.graph->Fingerprint();
  std::remove(gr.c_str());
  std::remove(co.c_str());

  // 3. Graph cache: v2 stream vs v3 arena. The loads are cold-ish (fresh
  // process state dominates CI anyway); what matters is the ratio.
  const std::string v2_path =
      tmp_dir + "/scale_" + std::to_string(target) + ".v2";
  const std::string v3_path =
      tmp_dir + "/scale_" + std::to_string(target) + ".v3";
  {
    Timer t;
    std::ofstream out(v2_path, std::ios::binary);
    FANNR_CHECK(graph.Save(out));
    out.close();
    cell.v2_save_ms = t.Millis();
  }
  {
    Timer t;
    FANNR_CHECK(graph.SaveV3(v3_path));
    cell.v3_save_ms = t.Millis();
  }
  cell.v2_bytes = FileBytes(v2_path);
  cell.v3_bytes = FileBytes(v3_path);
  {
    Timer t;
    std::ifstream in(v2_path, std::ios::binary);
    auto loaded = Graph::Load(in);
    cell.v2_load_ms = t.Millis();
    FANNR_CHECK(loaded.has_value());
    FANNR_CHECK(loaded->Fingerprint() == graph.Fingerprint());
  }
  std::optional<Graph> mapped;
  {
    Timer t;
    mapped = Graph::LoadMmap(v3_path);
    cell.v3_mmap_load_ms = t.Millis();
    FANNR_CHECK(mapped.has_value());
    FANNR_CHECK(mapped->Fingerprint() == graph.Fingerprint());
  }
  cell.mmap_speedup = cell.v2_load_ms / cell.v3_mmap_load_ms;
  std::remove(v2_path.c_str());

  // 4. Query workload, shared by the graph and index differentials.
  Rng qrng(0xD15Cu + target);
  const IndexedVertexSet p(graph.NumVertices(),
                           GenerateDataPoints(graph, 16.0 / static_cast<double>(
                                                         graph.NumVertices()),
                                              qrng));
  const IndexedVertexSet q(
      graph.NumVertices(),
      GenerateUniformQueryPoints(graph, /*coverage=*/0.10, /*m=*/8, qrng));

  // 5. Graph-substrate latency + the mmap differential at T=1 and T=8.
  const QueryRun mem1 = RunQueries(graph, p, q, num_queries, 1);
  const QueryRun mem8 = RunQueries(graph, p, q, num_queries, 8);
  const QueryRun map1 = RunQueries(*mapped, p, q, num_queries, 1);
  const QueryRun map8 = RunQueries(*mapped, p, q, num_queries, 8);
  cell.query_mean_ms_t1 = map1.mean_ms;
  cell.query_mean_ms_t8 = map8.mean_ms;
  cell.query_identical = SameAnswers(mem1.results, map1.results) &&
                         SameAnswers(mem8.results, map8.results) &&
                         SameAnswers(mem1.results, mem8.results);
  std::remove(v3_path.c_str());

  // 6. G-tree index: build, v2-vs-v3 load, and the differential the
  // acceptance bar is actually about — answers through the mmap-loaded
  // *index* against the built-in-memory one. Sizes above the gate leave
  // this to the nightly run (FANNR_SCALE_INDEX_MAX_V=1000000 there).
  if (graph.NumVertices() <= index_max_v) {
    cell.gtree.built = true;
    GTree::Options options;
    options.leaf_capacity = LeafCapacityForSize(graph.NumVertices());
    cell.gtree.leaf_capacity = options.leaf_capacity;
    Timer build_timer;
    GTree tree = GTree::Build(graph, options, &pool);
    cell.gtree.build_ms = build_timer.Millis();

    const std::string g2 = tmp_dir + "/scale_gtree.v2";
    const std::string g3 = tmp_dir + "/scale_gtree.v3";
    {
      std::ofstream out(g2, std::ios::binary);
      FANNR_CHECK(tree.Save(out));
    }
    FANNR_CHECK(tree.SaveV3(g3));
    cell.gtree.v2_bytes = FileBytes(g2);
    cell.gtree.v3_bytes = FileBytes(g3);
    {
      Timer t;
      std::ifstream in(g2, std::ios::binary);
      FANNR_CHECK(GTree::Load(graph, in).has_value());
      cell.gtree.v2_load_ms = t.Millis();
    }
    std::optional<GTree> mapped_tree;
    {
      Timer t;
      mapped_tree = GTree::LoadMmap(graph, g3);
      cell.gtree.v3_mmap_load_ms = t.Millis();
      FANNR_CHECK(mapped_tree.has_value());
    }
    cell.gtree.mmap_speedup =
        cell.gtree.v2_load_ms / cell.gtree.v3_mmap_load_ms;

    const QueryRun tmem1 = RunQueries(graph, p, q, num_queries, 1, &tree);
    const QueryRun tmem8 = RunQueries(graph, p, q, num_queries, 8, &tree);
    const QueryRun tmap1 =
        RunQueries(graph, p, q, num_queries, 1, &*mapped_tree);
    const QueryRun tmap8 =
        RunQueries(graph, p, q, num_queries, 8, &*mapped_tree);
    cell.gtree.query_mean_ms_t1 = tmap1.mean_ms;
    cell.gtree.query_mean_ms_t8 = tmap8.mean_ms;
    cell.gtree.query_identical = SameAnswers(tmem1.results, tmap1.results) &&
                                 SameAnswers(tmem8.results, tmap8.results) &&
                                 SameAnswers(tmem1.results, tmem8.results);
    mapped_tree.reset();
    std::remove(g2.c_str());
    std::remove(g3.c_str());
  }
  return cell;
}

std::string JsonGtree(const GtreeCell& g) {
  std::ostringstream out;
  out << "{\"built\": " << (g.built ? "true" : "false");
  if (g.built) {
    out << ", \"leaf_capacity\": " << g.leaf_capacity
        << ", \"build_ms\": " << g.build_ms << ", \"v2_bytes\": " << g.v2_bytes
        << ", \"v3_bytes\": " << g.v3_bytes
        << ", \"v2_load_ms\": " << g.v2_load_ms
        << ", \"v3_mmap_load_ms\": " << g.v3_mmap_load_ms
        << ", \"mmap_speedup\": " << g.mmap_speedup
        << ", \"query_mean_ms_t1\": " << g.query_mean_ms_t1
        << ", \"query_mean_ms_t8\": " << g.query_mean_ms_t8
        << ", \"query_identical\": " << (g.query_identical ? "true" : "false");
  }
  out << "}";
  return out.str();
}

int Main() {
  const std::vector<size_t> sizes = LadderSizes();
  if (sizes.empty()) {
    std::fprintf(stderr, "FANNR_SCALE_SIZES parsed to an empty ladder\n");
    return 1;
  }
  const size_t index_max_v = EnvSize("FANNR_SCALE_INDEX_MAX_V", 150000);
  const size_t num_queries = std::max<size_t>(1,
                                              EnvSize("FANNR_SCALE_QUERIES",
                                                      4));
  const std::string out_dir = [] {
    const char* dir = std::getenv("FANNR_OUT_DIR");
    return std::string(dir != nullptr ? dir : ".");
  }();
  ThreadPool pool(0);  // hardware concurrency

  std::printf("Scale ladder — sizes:");
  for (size_t n : sizes) std::printf(" %zu", n);
  std::printf(", %zu pool workers, %zu queries/cell\n", pool.num_workers(),
              num_queries);
  std::printf("%10s %10s %10s %10s %9s %10s %10s %9s %11s %8s\n", "|V|",
              "gen ms", "parse seq", "parse par", "par=seq", "v2 load",
              "mmap load", "speedup", "idx speedup", "queries");

  std::vector<ScaleCell> cells;
  bool all_identical = true;
  for (size_t target : sizes) {
    ScaleCell cell = RunCell(target, index_max_v, num_queries, pool, out_dir);
    char idx[24] = "-";
    if (cell.gtree.built) {
      std::snprintf(idx, sizeof(idx), "%.1fx", cell.gtree.mmap_speedup);
    }
    std::printf("%10zu %10.1f %10.1f %10.1f %9s %10.2f %10.2f %8.1fx %11s %7s\n",
                cell.num_vertices, cell.gen_ms, cell.parse_seq_ms,
                cell.parse_par_ms, cell.parallel_load_identical ? "yes" : "NO",
                cell.v2_load_ms, cell.v3_mmap_load_ms, cell.mmap_speedup, idx,
                cell.query_identical ? "same" : "DIFFER");
    all_identical &= cell.parallel_load_identical && cell.query_identical &&
                     (!cell.gtree.built || cell.gtree.query_identical);
    cells.push_back(std::move(cell));
  }

  const std::string out_path = out_dir + "/BENCH_scale.json";
  std::ofstream out(out_path);
  out << "{\n  \"index_max_v\": " << index_max_v
      << ",\n  \"queries_per_cell\": " << num_queries << ",\n  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const ScaleCell& c = cells[i];
    out << "    {\"target_vertices\": " << c.target_vertices
        << ", \"num_vertices\": " << c.num_vertices
        << ", \"num_edges\": " << c.num_edges << ", \"gen_ms\": " << c.gen_ms
        << ",\n     \"parse_seq_ms\": " << c.parse_seq_ms
        << ", \"parse_par_ms\": " << c.parse_par_ms
        << ", \"parse_speedup\": " << c.parse_speedup
        << ", \"parallel_load_identical\": "
        << (c.parallel_load_identical ? "true" : "false")
        << ",\n     \"graph\": {\"v2_bytes\": " << c.v2_bytes
        << ", \"v3_bytes\": " << c.v3_bytes
        << ", \"v2_save_ms\": " << c.v2_save_ms
        << ", \"v3_save_ms\": " << c.v3_save_ms
        << ", \"v2_load_ms\": " << c.v2_load_ms
        << ", \"v3_mmap_load_ms\": " << c.v3_mmap_load_ms
        << ", \"mmap_speedup\": " << c.mmap_speedup << "}"
        << ",\n     \"gtree\": " << JsonGtree(c.gtree)
        << ",\n     \"query_mean_ms_t1\": " << c.query_mean_ms_t1
        << ", \"query_mean_ms_t8\": " << c.query_mean_ms_t8
        << ", \"query_identical\": "
        << (c.query_identical ? "true" : "false") << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", out_path.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: parallel parse or mmap query differential diverged "
                 "(see table above)\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace fannr::bench

int main() { return fannr::bench::Main(); }
