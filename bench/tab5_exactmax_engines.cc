// Table V: efficiency of Exact-max under each g_phi implementation,
// varying d.
//
// Paper's qualitative finding: although the g_phi engines differ sharply
// in isolation (Fig. 3), Exact-max is nearly insensitive to the choice —
// g_phi runs exactly once (Algorithm 2 line 8) and the multi-source
// expansion dominates. The rightmost column is our arrival-recording
// variant that needs no g_phi call at all.

#include <cstdio>

#include "common/bench_common.h"

int main() {
  using namespace fannr;
  using namespace fannr::bench;

  Env env = Env::Load({.labels = true, .gtree = true, .ch = false});
  const Graph& graph = env.graph();
  const double densities[] = {0.0001, 0.001, 0.01, 0.1, 1.0};

  std::vector<std::unique_ptr<GphiEngine>> engines;
  std::vector<std::string> names;
  for (GphiKind kind : TableOneKinds()) {
    engines.push_back(env.Engine(kind));
    names.emplace_back(GphiKindName(kind));
  }
  names.emplace_back("(arrivals)");

  PrintHeader("Table V: Exact-max with different g_phi, varying d", env,
              "d", names);
  for (double d : densities) {
    Params params;
    params.d = d;
    auto instances = MakeInstances(graph, params, env.num_queries(),
                                   /*build_p_tree=*/false, 151);
    auto query_of = [&](size_t i) {
      return FannQuery{&graph, &instances[i].p, &instances[i].q, params.phi,
                       Aggregate::kMax};
    };
    std::vector<double> row;
    for (auto& engine : engines) {
      row.push_back(TimeCell(
          [&](size_t i) { SolveExactMax(query_of(i), *engine); },
          instances.size(), env.cell_budget_ms()));
    }
    row.push_back(TimeCell([&](size_t i) { SolveExactMax(query_of(i)); },
                           instances.size(), env.cell_budget_ms()));
    char label[32];
    std::snprintf(label, sizeof(label), "%g", d);
    PrintRow(label, row);
  }
  return 0;
}
