// Appendix B analog: APX-sum approximation ratio varying the remaining
// workload parameters A, M and C.
//
// Paper's qualitative finding: the ratio stays below 1.2 (and stable)
// under every parameter.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/bench_common.h"

namespace {

using namespace fannr;
using namespace fannr::bench;

void Measure(const Env& env, GphiEngine& engine,
             const std::vector<Instance>& instances, double phi,
             const char* label) {
  const Graph& graph = env.graph();
  double mean = 0.0, worst = 0.0;
  size_t counted = 0;
  for (const Instance& inst : instances) {
    FannQuery query{&graph, &inst.p, &inst.q, phi, Aggregate::kSum};
    const FannResult exact = SolveGd(query, engine);
    const FannResult approx = SolveApxSum(query, engine);
    if (exact.distance <= 0.0 || exact.distance == kInfWeight) continue;
    mean += approx.distance / exact.distance;
    worst = std::max(worst, approx.distance / exact.distance);
    ++counted;
  }
  if (counted == 0) {
    std::printf("%-10s (no valid instances)\n", label);
    return;
  }
  std::printf("%-10s %10.4f %10.4f\n", label,
              mean / static_cast<double>(counted), worst);
  std::fflush(stdout);
}

}  // namespace

int main() {
  Env env = Env::Load({.labels = true, .gtree = false, .ch = false});
  const Graph& graph = env.graph();
  auto phl = env.Engine(GphiKind::kPhl);

  std::printf("\n=== Appendix B: APX-sum ratio under A, M, C ===\n");

  std::printf("\nvarying A:\n%-10s %10s %10s\n", "A", "mean", "worst");
  for (double a : {0.01, 0.05, 0.10, 0.15, 0.20}) {
    Params params;
    params.a = a;
    auto instances = MakeInstances(graph, params,
                                   std::max<size_t>(env.num_queries(), 20),
                                   /*build_p_tree=*/false, 171);
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f%%", a * 100);
    Measure(env, *phl, instances, params.phi, label);
  }

  std::printf("\nvarying M:\n%-10s %10s %10s\n", "M", "mean", "worst");
  for (size_t m : {64u, 128u, 256u, 512u, 1024u}) {
    if (m > graph.NumVertices()) continue;
    Params params;
    params.m = m;
    auto instances = MakeInstances(graph, params,
                                   std::max<size_t>(env.num_queries(), 20),
                                   /*build_p_tree=*/false, 172);
    char label[32];
    std::snprintf(label, sizeof(label), "%zu", static_cast<size_t>(m));
    Measure(env, *phl, instances, params.phi, label);
  }

  std::printf("\nvarying C:\n%-10s %10s %10s\n", "C", "mean", "worst");
  for (size_t c : {1u, 2u, 4u, 6u, 8u}) {
    Params params;
    params.c = c;
    auto instances = MakeInstances(graph, params,
                                   std::max<size_t>(env.num_queries(), 20),
                                   /*build_p_tree=*/false, 173);
    char label[32];
    std::snprintf(label, sizeof(label), "%zu", static_cast<size_t>(c));
    Measure(env, *phl, instances, params.phi, label);
  }

  std::printf("\n(paper: ratio < 1.2 under every parameter)\n");
  return 0;
}
