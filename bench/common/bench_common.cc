#include "common/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/timer.h"

namespace fannr::bench {

namespace {

std::string EnvOr(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? value : fallback;
}

double EnvOrDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtod(value, nullptr) : fallback;
}

std::string CachePath(const std::string& cache_dir,
                      const std::string& dataset, const std::string& kind) {
  return cache_dir + "/" + dataset + "." + kind + ".bin";
}

}  // namespace

size_t Env::LeafCapacityFor(const std::string& dataset) {
  if (dataset == "NW") return 256;
  if (dataset == "E") return 256;
  if (dataset == "ME" || dataset == "COL") return 128;
  return 64;  // TEST, DE
}

Env Env::Load(const EnvNeeds& needs) {
  Env env;
  env.dataset_ = EnvOr("FANNR_DATASET", "TEST");
  FANNR_CHECK(IsPresetName(env.dataset_));
  env.num_queries_ = static_cast<size_t>(
      EnvOrDouble("FANNR_QUERIES", 5));
  env.cell_budget_ms_ = EnvOrDouble("FANNR_CELL_BUDGET_MS", 15000.0);
  const std::string cache_dir = EnvOr("FANNR_CACHE", ".fannr_cache");
  std::filesystem::create_directories(cache_dir);

  Timer t;
  const std::string graph_cache =
      CachePath(cache_dir, env.dataset_, "graph");
  {
    std::ifstream in(graph_cache, std::ios::binary);
    if (in) {
      auto loaded = Graph::Load(in);
      if (loaded.has_value()) {
        env.graph_ = std::make_unique<Graph>(std::move(*loaded));
      }
    }
  }
  if (env.graph_ == nullptr) {
    env.graph_ = std::make_unique<Graph>(BuildPreset(env.dataset_));
    std::ofstream out(graph_cache, std::ios::binary);
    if (out) env.graph_->Save(out);
  }
  std::fprintf(stderr, "[env] dataset %s: %zu vertices, %zu edges (%.1fs)\n",
               env.dataset_.c_str(), env.graph_->NumVertices(),
               env.graph_->NumEdges(), t.Seconds());

  auto load_or_build = [&](const std::string& kind, auto load_fn,
                           auto build_fn, auto save_fn, auto& slot) {
    const std::string path = CachePath(cache_dir, env.dataset_, kind);
    {
      std::ifstream in(path, std::ios::binary);
      if (in) {
        slot = load_fn(in);
        if (slot.has_value()) {
          std::fprintf(stderr, "[env] %s loaded from cache\n", kind.c_str());
          return;
        }
      }
    }
    Timer build_timer;
    slot = build_fn();
    std::fprintf(stderr, "[env] %s built in %.1fs\n", kind.c_str(),
                 build_timer.Seconds());
    if (slot.has_value()) {
      std::ofstream out(path, std::ios::binary);
      if (out && save_fn(*slot, out)) {
        std::fprintf(stderr, "[env] %s cached to %s\n", kind.c_str(),
                     path.c_str());
      }
    }
  };

  if (needs.labels) {
    load_or_build(
        "phl",
        [&](std::istream& in) { return HubLabels::Load(*env.graph_, in); },
        [&] { return HubLabels::Build(*env.graph_); },
        [](const HubLabels& l, std::ostream& out) { return l.Save(out); },
        env.labels_);
    FANNR_CHECK(env.labels_.has_value());
  }
  if (needs.gtree) {
    GTree::Options options;
    options.leaf_capacity = LeafCapacityFor(env.dataset_);
    load_or_build(
        "gtree",
        [&](std::istream& in) { return GTree::Load(*env.graph_, in); },
        [&] {
          return std::optional<GTree>(GTree::Build(*env.graph_, options));
        },
        [](const GTree& g, std::ostream& out) { return g.Save(out); },
        env.gtree_);
    FANNR_CHECK(env.gtree_.has_value());
  }
  if (needs.ch) {
    load_or_build(
        "ch",
        [&](std::istream& in) {
          return ContractionHierarchy::Load(*env.graph_, in);
        },
        [&] {
          return std::optional<ContractionHierarchy>(
              ContractionHierarchy::Build(*env.graph_));
        },
        [](const ContractionHierarchy& c, std::ostream& out) {
          return c.Save(out);
        },
        env.ch_);
    FANNR_CHECK(env.ch_.has_value());
  }
  return env;
}

GphiResources Env::Resources() const {
  GphiResources r;
  r.graph = graph_.get();
  if (labels_.has_value()) r.labels = &*labels_;
  if (gtree_.has_value()) r.gtree = &*gtree_;
  if (ch_.has_value()) r.ch = &*ch_;
  return r;
}

std::unique_ptr<GphiEngine> Env::Engine(GphiKind kind) const {
  return MakeGphiEngine(kind, Resources());
}

std::vector<Instance> MakeInstances(const Graph& graph, const Params& params,
                                    size_t count, bool build_p_tree,
                                    uint64_t seed_base) {
  std::vector<Instance> instances;
  instances.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Rng rng(seed_base * 1'000'003ULL + i);
    std::vector<VertexId> p_vec = GenerateDataPoints(graph, params.d, rng);
    std::vector<VertexId> q_vec =
        params.c <= 1
            ? GenerateUniformQueryPoints(graph, params.a, params.m, rng)
            : GenerateClusteredQueryPoints(graph, params.a, params.m,
                                           params.c, rng);
    Instance inst{IndexedVertexSet(graph.NumVertices(), std::move(p_vec)),
                  IndexedVertexSet(graph.NumVertices(), std::move(q_vec)),
                  std::nullopt};
    if (build_p_tree) {
      inst.p_tree = BuildDataPointRTree(graph, inst.p);
    }
    instances.push_back(std::move(inst));
  }
  return instances;
}

double TimeCell(const std::function<void(size_t)>& solver,
                size_t num_instances, double budget_ms) {
  Timer total;
  size_t completed = 0;
  for (size_t i = 0; i < num_instances; ++i) {
    solver(i);
    ++completed;
    if (total.Millis() > budget_ms) break;
  }
  return total.Millis() / static_cast<double>(completed);
}

void PrintHeader(const std::string& title, const Env& env,
                 const std::string& x_name,
                 const std::vector<std::string>& series) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("dataset=%s  |V|=%zu  queries/cell<=%zu  budget=%.0fms\n",
              env.dataset().c_str(), env.graph().NumVertices(),
              env.num_queries(), env.cell_budget_ms());
  std::printf("%-10s", x_name.c_str());
  for (const std::string& s : series) std::printf(" %12s", s.c_str());
  std::printf("\n");
}

void PrintRow(const std::string& x_value, const std::vector<double>& ms) {
  std::printf("%-10s", x_value.c_str());
  for (double v : ms) std::printf(" %12s", FormatMs(v).c_str());
  std::printf("\n");
  std::fflush(stdout);
}

std::vector<std::string> AllAlgorithmNames() {
  return {"GD", "R-List", "IER-PHL", "Exact-max", "APX-sum"};
}

std::vector<double> TimeAllAlgorithms(const Env& env, GphiEngine& phl,
                                      const std::vector<Instance>& instances,
                                      const Params& params) {
  const Graph& graph = env.graph();
  auto max_query = [&](size_t i) {
    return FannQuery{&graph, &instances[i].p, &instances[i].q, params.phi,
                     Aggregate::kMax};
  };
  auto sum_query = [&](size_t i) {
    return FannQuery{&graph, &instances[i].p, &instances[i].q, params.phi,
                     Aggregate::kSum};
  };
  std::vector<double> row;
  row.push_back(TimeCell([&](size_t i) { SolveGd(max_query(i), phl); },
                         instances.size(), env.cell_budget_ms()));
  row.push_back(TimeCell([&](size_t i) { SolveRList(max_query(i), phl); },
                         instances.size(), env.cell_budget_ms()));
  row.push_back(TimeCell(
      [&](size_t i) { SolveIer(max_query(i), phl, *instances[i].p_tree); },
      instances.size(), env.cell_budget_ms()));
  row.push_back(TimeCell([&](size_t i) { SolveExactMax(max_query(i)); },
                         instances.size(), env.cell_budget_ms()));
  row.push_back(TimeCell([&](size_t i) { SolveApxSum(sum_query(i), phl); },
                         instances.size(), env.cell_budget_ms()));
  return row;
}

std::vector<GphiKind> TableOneKinds() {
  return {GphiKind::kAStar,  GphiKind::kIerAStar, GphiKind::kIne,
          GphiKind::kPhl,    GphiKind::kIerPhl,   GphiKind::kGTree,
          GphiKind::kIerGTree};
}

std::vector<double> TimeIerEngines(
    const Env& env, const std::vector<std::unique_ptr<GphiEngine>>& engines,
    const std::vector<Instance>& instances, const Params& params) {
  const Graph& graph = env.graph();
  std::vector<double> row;
  for (const auto& engine : engines) {
    row.push_back(TimeCell(
        [&](size_t i) {
          FannQuery query{&graph, &instances[i].p, &instances[i].q,
                          params.phi, Aggregate::kMax};
          SolveIer(query, *engine, *instances[i].p_tree);
        },
        instances.size(), env.cell_budget_ms()));
  }
  return row;
}

std::string FormatMs(double ms) {
  char buffer[32];
  if (ms < 0) {
    return "-";
  }
  if (ms >= 1000.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2fs", ms / 1000.0);
  } else if (ms >= 1.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1fms", ms);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.3fms", ms);
  }
  return buffer;
}

}  // namespace fannr::bench
