// Shared driver for the paper-reproduction benchmark harnesses.
//
// Each bench binary reproduces one table or figure of the paper (see
// DESIGN.md §3 and EXPERIMENTS.md). All binaries share:
//   * the environment (dataset, query count, per-cell time budget) read
//     from env vars,
//   * an on-disk index cache so hub labels / G-tree / CH are built once
//     per dataset,
//   * instance generation with fixed seeds so every algorithm sees the
//     same workloads,
//   * a cell timer with a budget so the slow configurations (the paper's
//     1000-second points) degrade to fewer repetitions instead of
//     stalling the harness.
//
// Environment variables:
//   FANNR_DATASET        TEST (default) | DE | ME | COL | NW
//   FANNR_QUERIES        repetitions per cell (default 5; paper uses 100)
//   FANNR_CELL_BUDGET_MS wall-clock budget per (x, algorithm) cell
//                        (default 15000)
//   FANNR_CACHE          index cache directory (default .fannr_cache)

#ifndef FANNR_BENCH_COMMON_BENCH_COMMON_H_
#define FANNR_BENCH_COMMON_BENCH_COMMON_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fann/fannr.h"
#include "sp/ch/contraction_hierarchy.h"
#include "sp/gtree/gtree.h"
#include "sp/label/hub_labels.h"

namespace fannr::bench {

/// Paper defaults (Section VI-A).
struct Params {
  double d = 0.001;   // density of P
  double a = 0.10;    // coverage ratio of Q
  size_t m = 128;     // |Q|
  size_t c = 1;       // clusters of Q (1 = uniform)
  double phi = 0.5;   // flexibility
};

/// Which indexes a binary needs (built or loaded from cache on demand).
struct EnvNeeds {
  bool labels = true;
  bool gtree = true;
  bool ch = false;
};

/// The benchmark environment: dataset + indexes + knobs.
class Env {
 public:
  static Env Load(const EnvNeeds& needs);

  const Graph& graph() const { return *graph_; }
  const std::string& dataset() const { return dataset_; }
  size_t num_queries() const { return num_queries_; }
  double cell_budget_ms() const { return cell_budget_ms_; }

  GphiResources Resources() const;

  /// Creates a g_phi engine backed by this environment's indexes.
  std::unique_ptr<GphiEngine> Engine(GphiKind kind) const;

  /// The G-tree leaf capacity the paper uses for this dataset scale
  /// (64 for DE, 128 ME/COL, 256 NW; 64 for TEST).
  static size_t LeafCapacityFor(const std::string& dataset);

 private:
  std::string dataset_;
  size_t num_queries_ = 5;
  double cell_budget_ms_ = 15000.0;
  std::unique_ptr<Graph> graph_;
  std::optional<HubLabels> labels_;
  std::optional<GTree> gtree_;
  mutable std::optional<ContractionHierarchy> ch_;
};

/// One benchmark instance: a generated (P, Q) pair on the environment's
/// graph.
struct Instance {
  IndexedVertexSet p;
  IndexedVertexSet q;
  std::optional<RTree> p_tree;  // present when requested
};

/// Generates `count` instances with deterministic seeds. Set
/// `build_p_tree` when any timed algorithm is IER-kNN (tree build is kept
/// out of the timed region, matching the paper's "excluding the
/// construction time of index").
std::vector<Instance> MakeInstances(const Graph& graph, const Params& params,
                                    size_t count, bool build_p_tree,
                                    uint64_t seed_base);

/// Runs `solver` once per instance (until the budget is exhausted) and
/// returns the mean wall-clock milliseconds. `solver` receives the
/// instance index.
double TimeCell(const std::function<void(size_t)>& solver,
                size_t num_instances, double budget_ms);

/// Printing helpers: a fixed-width table in the paper's
/// rows-are-x-values, columns-are-series layout.
void PrintHeader(const std::string& title, const Env& env,
                 const std::string& x_name,
                 const std::vector<std::string>& series);
void PrintRow(const std::string& x_value, const std::vector<double>& ms);

/// Formats milliseconds like the paper's plots (seconds with 3 sig figs).
std::string FormatMs(double ms);

/// Series names of the standard all-algorithms comparison used by
/// Figs. 4(a), 5(b), 6(b), 7(b) and 8(b).
std::vector<std::string> AllAlgorithmNames();

/// Times the standard suite — GD, R-List, IER-PHL (universal methods run
/// max, as in the paper), Exact-max, APX-sum (sum) — on prebuilt
/// instances. `phl` is the g_phi engine shared by the universal methods.
/// Instances must carry p_tree.
std::vector<double> TimeAllAlgorithms(const Env& env, GphiEngine& phl,
                                      const std::vector<Instance>& instances,
                                      const Params& params);

/// The seven Table I engine kinds, in the paper's legend order.
std::vector<GphiKind> TableOneKinds();

/// Times IER-kNN under each engine (max aggregate). Instances must carry
/// p_tree.
std::vector<double> TimeIerEngines(
    const Env& env, const std::vector<std::unique_ptr<GphiEngine>>& engines,
    const std::vector<Instance>& instances, const Params& params);

}  // namespace fannr::bench

#endif  // FANNR_BENCH_COMMON_BENCH_COMMON_H_
