// Fig. 4: (a) all FANN_R algorithms varying d; (b) Baseline vs R-List,
// both index-free (INE), varying d.
//
// Paper's qualitative findings:
//   * IER-PHL best at small d; APX-sum takes over for d > 0.01;
//   * APX-sum is flat in d (it depends on Q, not P);
//   * Exact-max dips then rises (expansion overhead vs earlier
//     termination);
//   * R-List beats GD when d is large;
//   * index-free: R-List >> Baseline, which becomes infeasible for large d.

#include <cstdio>

#include "common/bench_common.h"

int main() {
  using namespace fannr;
  using namespace fannr::bench;

  Env env = Env::Load({.labels = true, .gtree = false, .ch = false});
  const Graph& graph = env.graph();
  const double densities[] = {0.0001, 0.001, 0.01, 0.1, 1.0};

  auto phl = env.Engine(GphiKind::kPhl);
  auto ine = env.Engine(GphiKind::kIne);

  // --- (a) all algorithms (universal ones run max; APX-sum runs sum) -----
  PrintHeader("Fig 4(a): all algorithms, varying d", env, "d",
              {"GD", "R-List", "IER-PHL", "Exact-max", "APX-sum"});
  for (double d : densities) {
    Params params;
    params.d = d;
    auto instances = MakeInstances(graph, params, env.num_queries(),
                                   /*build_p_tree=*/true, 41);
    auto max_query = [&](size_t i) {
      return FannQuery{&graph, &instances[i].p, &instances[i].q, params.phi,
                       Aggregate::kMax};
    };
    auto sum_query = [&](size_t i) {
      return FannQuery{&graph, &instances[i].p, &instances[i].q, params.phi,
                       Aggregate::kSum};
    };
    std::vector<double> row;
    row.push_back(TimeCell(
        [&](size_t i) { SolveGd(max_query(i), *phl); }, instances.size(),
        env.cell_budget_ms()));
    row.push_back(TimeCell(
        [&](size_t i) { SolveRList(max_query(i), *phl); },
        instances.size(), env.cell_budget_ms()));
    row.push_back(TimeCell(
        [&](size_t i) {
          SolveIer(max_query(i), *phl, *instances[i].p_tree);
        },
        instances.size(), env.cell_budget_ms()));
    row.push_back(TimeCell(
        [&](size_t i) { SolveExactMax(max_query(i)); }, instances.size(),
        env.cell_budget_ms()));
    row.push_back(TimeCell(
        [&](size_t i) { SolveApxSum(sum_query(i), *phl); },
        instances.size(), env.cell_budget_ms()));
    char label[32];
    std::snprintf(label, sizeof(label), "%g", d);
    PrintRow(label, row);
  }

  // --- (b) index-free: Baseline (GD-INE) vs R-List (INE) -----------------
  PrintHeader("Fig 4(b): index-free Baseline vs R-List (INE), varying d",
              env, "d", {"Baseline", "R-List"});
  for (double d : densities) {
    Params params;
    params.d = d;
    auto instances = MakeInstances(graph, params, env.num_queries(),
                                   /*build_p_tree=*/false, 42);
    auto max_query = [&](size_t i) {
      return FannQuery{&graph, &instances[i].p, &instances[i].q, params.phi,
                       Aggregate::kMax};
    };
    std::vector<double> row;
    // Baseline becomes infeasible at high d on large datasets; cap it the
    // same way the paper's plot runs off the chart.
    const double volume = static_cast<double>(instances[0].p.size()) *
                          static_cast<double>(instances[0].q.size());
    if (volume > 2e6) {
      row.push_back(-1.0);
    } else {
      row.push_back(TimeCell(
          [&](size_t i) { SolveGd(max_query(i), *ine); }, instances.size(),
          env.cell_budget_ms()));
    }
    row.push_back(TimeCell(
        [&](size_t i) { SolveRList(max_query(i), *ine); }, instances.size(),
        env.cell_budget_ms()));
    char label[32];
    std::snprintf(label, sizeof(label), "%g", d);
    PrintRow(label, row);
  }
  return 0;
}
