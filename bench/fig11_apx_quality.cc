// Fig. 11: approximation quality of APX-sum (mean ratio +- stddev),
// varying d (a) and phi (b).
//
// Paper's qualitative findings: the observed ratio never exceeds 1.2 in
// any experiment (guaranteed bound: 3), and it is stable across d and
// phi.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/bench_common.h"

namespace {

using namespace fannr;
using namespace fannr::bench;

struct RatioStats {
  double mean = 0.0;
  double stddev = 0.0;
  double worst = 0.0;
};

RatioStats MeasureRatios(const Env& env, GphiEngine& engine,
                         const std::vector<Instance>& instances,
                         double phi) {
  const Graph& graph = env.graph();
  std::vector<double> ratios;
  for (const Instance& inst : instances) {
    FannQuery query{&graph, &inst.p, &inst.q, phi, Aggregate::kSum};
    const FannResult exact = SolveGd(query, engine);
    const FannResult approx = SolveApxSum(query, engine);
    if (exact.distance <= 0.0 || exact.distance == kInfWeight) continue;
    ratios.push_back(approx.distance / exact.distance);
  }
  RatioStats stats;
  if (ratios.empty()) return stats;
  for (double r : ratios) stats.mean += r;
  stats.mean /= static_cast<double>(ratios.size());
  for (double r : ratios) {
    stats.stddev += (r - stats.mean) * (r - stats.mean);
    stats.worst = std::max(stats.worst, r);
  }
  stats.stddev =
      std::sqrt(stats.stddev / static_cast<double>(ratios.size()));
  return stats;
}

void PrintStatsRow(const char* label, const RatioStats& stats) {
  std::printf("%-10s %10.4f %12.4f %10.4f\n", label, stats.mean,
              stats.stddev, stats.worst);
  std::fflush(stdout);
}

}  // namespace

int main() {
  Env env = Env::Load({.labels = true, .gtree = false, .ch = false});
  const Graph& graph = env.graph();
  auto phl = env.Engine(GphiKind::kPhl);

  std::printf("\n=== Fig 11(a): APX-sum approximation ratio, varying d ==="
              "\n%-10s %10s %12s %10s\n", "d", "mean", "stddev", "worst");
  for (double d : {0.0001, 0.001, 0.01, 0.1, 1.0}) {
    Params params;
    params.d = d;
    auto instances = MakeInstances(graph, params,
                                   std::max<size_t>(env.num_queries(), 20),
                                   /*build_p_tree=*/false, 111);
    char label[32];
    std::snprintf(label, sizeof(label), "%g", d);
    PrintStatsRow(label, MeasureRatios(env, *phl, instances, params.phi));
  }

  std::printf("\n=== Fig 11(b): APX-sum approximation ratio, varying phi "
              "===\n%-10s %10s %12s %10s\n", "phi", "mean", "stddev",
              "worst");
  for (double phi : {0.1, 0.3, 0.5, 0.7, 1.0}) {
    Params params;
    params.phi = phi;
    auto instances = MakeInstances(graph, params,
                                   std::max<size_t>(env.num_queries(), 20),
                                   /*build_p_tree=*/false, 112);
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f", phi);
    PrintStatsRow(label, MeasureRatios(env, *phl, instances, phi));
  }

  std::printf("\n(paper: ratio always < 1.2; guaranteed bound 3)\n");
  return 0;
}
