// Batch throughput benchmark: queries/sec of the BatchQueryEngine vs the
// sequential per-query execution model it replaces, across thread counts
// and cache configurations, on the Table III-scale synthetic presets.
//
// Three effects are measured separately so the scaling story is honest:
//   * "seq-uncached"  — one thread, no shared cache: the pre-engine
//     execution model (every candidate SSSP recomputed per query).
//   * "engine-nocache T=k" — k threads, cache disabled: pure thread
//     scaling (flat on single-core hosts; near-linear on real multicore).
//   * "engine-cached T=k" — k threads sharing the source-distance cache:
//     the production configuration. Cross-query candidate reuse makes
//     this dominate regardless of core count.
//
// Output: a table on stdout plus BENCH_throughput.json (written to
// FANNR_OUT_DIR or the working directory) with every cell, so CI and the
// paper-reproduction harness can track regressions.
//
// Environment: FANNR_DATASET (default TEST), FANNR_THROUGHPUT_BATCH
// (queries per batch, default 64), FANNR_THROUGHPUT_REPS (timed
// repetitions, default 3).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/bench_common.h"
#include "common/flat_heap.h"
#include "common/timer.h"
#include "engine/batch_engine.h"

namespace fannr::bench {
namespace {

struct Cell {
  std::string label;
  size_t threads = 1;
  bool cached = false;
  bool observed = false;
  double qps = 0.0;
  double mean_ms = 0.0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  // FlatHeap regrowths across ALL timed repetitions of the cell, split
  // by phase. Construction (engine + prewarm) is where all growth is
  // allowed to happen; the solve phase must never regrow a heap —
  // workers reserve their worst case up front
  // (BatchOptions::prewarm_scratch), so heap_grows_solve is exactly 0
  // for every (threads, schedule) configuration, which the CI gate
  // asserts. heap_grows keeps the legacy total for trend tracking.
  uint64_t heap_grows = 0;
  uint64_t heap_grows_construct = 0;
  uint64_t heap_grows_solve = 0;
  std::string report_json;  // last run's BatchReport (observed cells only)
};

size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? static_cast<size_t>(std::strtoull(value, nullptr, 10))
                          : fallback;
}

// A batch of GD-over-shared-P queries: the canonical heavy-traffic shape
// (one POI set, many user groups). Data-point density is raised above
// the paper default so every query does meaningful work on TEST.
struct BatchWorkload {
  std::unique_ptr<IndexedVertexSet> p;
  std::vector<std::unique_ptr<IndexedVertexSet>> qs;
  std::vector<FannrQuery> jobs;
};

BatchWorkload MakeBatch(const Graph& graph, size_t batch_size) {
  BatchWorkload w;
  Rng rng(0x7410u);
  // Density 0.01 (10x the paper default) so |P| is large enough that a
  // batch does meaningful candidate work even on the TEST preset.
  w.p = std::make_unique<IndexedVertexSet>(
      graph.NumVertices(), GenerateDataPoints(graph, /*density=*/0.01, rng));
  for (size_t i = 0; i < batch_size; ++i) {
    w.qs.push_back(std::make_unique<IndexedVertexSet>(
        graph.NumVertices(),
        GenerateUniformQueryPoints(graph, /*coverage=*/0.10, /*m=*/32, rng)));
    FannrQuery job;
    job.query =
        FannQuery{&graph, w.p.get(), w.qs.back().get(), 0.5, Aggregate::kSum};
    job.algorithm = FannAlgorithm::kGd;
    w.jobs.push_back(job);
  }
  return w;
}

// Observability overhead, measured pairwise: each repetition runs the
// plain engine and the observed engine back to back (fresh engines, cold
// caches, same jobs), then the medians of the two per-rep series are
// compared. Interleaving keeps both sides under the same ambient load,
// and medians shrug off scheduler outliers — comparing the means of two
// cells run minutes apart (the old method) had a noise floor bigger
// than the overhead itself on busy single-core hosts.
struct ObsOverhead {
  double plain_median_ms = 0.0;
  double obs_median_ms = 0.0;
  double percent = 0.0;
};

double Median(std::vector<double> values) {
  const size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  return values[mid];
}

ObsOverhead MeasureObsOverhead(const GphiResources& resources,
                               const std::vector<FannrQuery>& jobs,
                               size_t threads, size_t reps) {
  BatchOptions options;
  options.num_threads = threads;
  options.share_distance_cache = true;
  options.cache_capacity = 4096;
  std::vector<double> plain_ms, obs_ms;
  plain_ms.reserve(reps);
  obs_ms.reserve(reps);
  for (size_t rep = 0; rep < reps; ++rep) {
    for (const bool observed : {false, true}) {
      options.enable_metrics = observed;
      BatchQueryEngine engine(resources, options);
      Timer t;
      engine.Run(jobs);
      (observed ? obs_ms : plain_ms).push_back(t.Millis());
    }
  }
  ObsOverhead overhead;
  overhead.plain_median_ms = Median(std::move(plain_ms));
  overhead.obs_median_ms = Median(std::move(obs_ms));
  overhead.percent = 100.0 *
                     (overhead.obs_median_ms - overhead.plain_median_ms) /
                     overhead.plain_median_ms;
  return overhead;
}

Cell TimeConfig(const std::string& label, const GphiResources& resources,
                const std::vector<FannrQuery>& jobs, size_t threads,
                bool cached, size_t reps, bool observed = false,
                BatchSchedule schedule = BatchSchedule::kDynamic) {
  BatchOptions options;
  options.num_threads = threads;
  options.share_distance_cache = cached;
  options.cache_capacity = 4096;
  options.enable_metrics = observed;
  options.schedule = schedule;

  Cell cell;
  cell.label = label;
  cell.threads = threads;
  cell.cached = cached;
  cell.observed = observed;
  double total_ms = 0.0;
  size_t runs = 0;
  for (size_t rep = 0; rep < reps; ++rep) {
    // Fresh engine per repetition: each timed run starts with a cold
    // cache, so cached cells measure within-batch reuse, not leftover
    // state from a previous repetition.
    const uint64_t grows_start = FlatHeapAllocStats().grows;
    BatchQueryEngine engine(resources, options);
    const uint64_t grows_constructed = FlatHeapAllocStats().grows;
    Timer t;
    engine.Run(jobs);
    total_ms += t.Millis();
    ++runs;
    cell.heap_grows_construct += grows_constructed - grows_start;
    cell.heap_grows_solve += FlatHeapAllocStats().grows - grows_constructed;
    const auto stats = engine.cache_stats();
    cell.cache_hits = stats.hits;
    cell.cache_misses = stats.misses;
    if (observed) cell.report_json = engine.last_report().ToJson(2);
  }
  cell.heap_grows = cell.heap_grows_construct + cell.heap_grows_solve;
  cell.mean_ms = total_ms / static_cast<double>(runs);
  cell.qps = 1000.0 * static_cast<double>(jobs.size()) / cell.mean_ms;
  return cell;
}

int Main() {
  Env env = Env::Load({.labels = false, .gtree = false, .ch = false});
  // Clamp both knobs to >= 1: an empty batch would make every rate a 0/0
  // and emit "nan" into the JSON, and strtoull turns junk values into 0.
  const size_t batch_size =
      std::max<size_t>(1, EnvSize("FANNR_THROUGHPUT_BATCH", 64));
  const size_t reps = std::max<size_t>(1, EnvSize("FANNR_THROUGHPUT_REPS", 3));
  const BatchWorkload workload = MakeBatch(env.graph(), batch_size);

  GphiResources resources;
  resources.graph = &env.graph();

  std::printf("Batch throughput — dataset %s, batch %zu x GD(sum), |P|=%zu, "
              "|Q|=32, reps %zu\n",
              env.dataset().c_str(), batch_size, workload.p->size(), reps);
  std::printf("%-24s %8s %10s %12s %10s %11s %11s\n", "config", "threads",
              "mean ms", "queries/s", "hit rate", "grows:build",
              "grows:solve");

  std::vector<Cell> cells;
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};

  cells.push_back(TimeConfig("seq-uncached", resources, workload.jobs, 1,
                             /*cached=*/false, reps));
  // The full engine-nocache ladder (T=1 included) is the thread-scaling
  // gate: scripts/check_throughput_json.py requires each step's qps to
  // stay >= 0.9x the previous step's, so a scaling collapse (lock or
  // allocator contention, false sharing) fails CI instead of shipping.
  for (size_t threads : thread_counts) {
    cells.push_back(TimeConfig("engine-nocache", resources, workload.jobs,
                               threads, /*cached=*/false, reps));
  }
  for (size_t threads : thread_counts) {
    cells.push_back(TimeConfig("engine-cached", resources, workload.jobs,
                               threads, /*cached=*/true, reps));
  }
  // The locality schedule (jobs grouped by P-set signature, pinned per
  // worker) on the production configuration; answers are bitwise equal
  // to the dynamic cells, only the job-to-worker mapping differs.
  cells.push_back(TimeConfig("engine-cached+locality", resources,
                             workload.jobs, 8, /*cached=*/true, reps,
                             /*observed=*/false, BatchSchedule::kLocality));
  // The production configuration with full observation (metrics, traces,
  // slow-query log) enabled. The overhead number itself comes from the
  // paired-median measurement below (capped at 3% by CI); this cell is
  // kept for the table and for embedding a real BatchReport in the JSON.
  cells.push_back(TimeConfig("engine-cached+obs", resources, workload.jobs, 8,
                             /*cached=*/true, reps, /*observed=*/true));

  for (const Cell& cell : cells) {
    const size_t lookups = cell.cache_hits + cell.cache_misses;
    std::printf("%-24s %8zu %10.2f %12.1f %9.1f%% %11llu %11llu\n",
                cell.label.c_str(), cell.threads, cell.mean_ms, cell.qps,
                lookups == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(cell.cache_hits) /
                          static_cast<double>(lookups),
                static_cast<unsigned long long>(cell.heap_grows_construct),
                static_cast<unsigned long long>(cell.heap_grows_solve));
  }

  const Cell& baseline = cells.front();
  const Cell* engine8 = nullptr;
  const Cell* engine8_obs = nullptr;
  for (const Cell& cell : cells) {
    if (cell.cached && cell.threads == 8) {
      (cell.observed ? engine8_obs : engine8) = &cell;
    }
  }
  FANNR_CHECK(engine8 != nullptr && engine8_obs != nullptr);
  const double speedup = engine8->qps / baseline.qps;
  std::printf("\nengine (8 threads, shared cache) vs sequential uncached "
              "baseline: %.2fx\n",
              speedup);
  const ObsOverhead obs = MeasureObsOverhead(resources, workload.jobs,
                                             /*threads=*/8, reps);
  const double obs_overhead_percent = obs.percent;
  std::printf("observability overhead (paired medians, T=8): %.2f%% "
              "(%.2f ms -> %.2f ms)\n",
              obs_overhead_percent, obs.plain_median_ms, obs.obs_median_ms);

  const std::string out_dir = [] {
    const char* dir = std::getenv("FANNR_OUT_DIR");
    return std::string(dir != nullptr ? dir : ".");
  }();
  const std::string out_path = out_dir + "/BENCH_throughput.json";
  std::ofstream out(out_path);
  out << "{\n"
      << "  \"dataset\": \"" << env.dataset() << "\",\n"
      << "  \"batch_size\": " << batch_size << ",\n"
      << "  \"p_size\": " << workload.p->size() << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"speedup_engine8_cached_vs_seq_uncached\": " << speedup << ",\n"
      << "  \"obs_overhead_percent\": " << obs_overhead_percent << ",\n"
      << "  \"obs_overhead_plain_median_ms\": " << obs.plain_median_ms
      << ",\n"
      << "  \"obs_overhead_obs_median_ms\": " << obs.obs_median_ms << ",\n"
      << "  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    out << "    {\"config\": \"" << cell.label << "\", \"threads\": "
        << cell.threads << ", \"cached\": " << (cell.cached ? "true" : "false")
        << ", \"observed\": " << (cell.observed ? "true" : "false")
        << ", \"mean_ms\": " << cell.mean_ms << ", \"qps\": " << cell.qps
        << ", \"cache_hits\": " << cell.cache_hits
        << ", \"cache_misses\": " << cell.cache_misses
        << ", \"heap_grows\": " << cell.heap_grows
        << ", \"heap_grows_construct\": " << cell.heap_grows_construct
        << ", \"heap_grows_solve\": " << cell.heap_grows_solve << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  // Full BatchReport of the observed cell's last run: the solve-latency
  // histogram with exact-rank percentiles, cache totals (the CI checker
  // cross-verifies hits + misses == lookups), and the registry snapshot.
  out << "  ],\n"
      << "  \"report\": " << engine8_obs->report_json << "\n"
      << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace fannr::bench

int main() { return fannr::bench::Main(); }
