// Fig. 8: efficiency varying the flexibility parameter phi.
// (a) IER-kNN by g_phi engine; (b) all algorithms.
//
// Paper's qualitative findings: cost grows with phi (more destinations
// must be reached); the R-tree over Q helps A* most at small phi
// (IER-A* vs A*); R-List and Exact-max are the most phi-sensitive
// algorithms.

#include <cstdio>

#include "common/bench_common.h"

int main() {
  using namespace fannr;
  using namespace fannr::bench;

  Env env = Env::Load({.labels = true, .gtree = true, .ch = false});
  const Graph& graph = env.graph();
  const double phis[] = {0.1, 0.3, 0.5, 0.7, 1.0};

  std::vector<std::unique_ptr<GphiEngine>> engines;
  std::vector<std::string> engine_names;
  for (GphiKind kind : TableOneKinds()) {
    engines.push_back(env.Engine(kind));
    engine_names.emplace_back(GphiKindName(kind));
  }
  auto phl = env.Engine(GphiKind::kPhl);

  PrintHeader("Fig 8(a): IER-kNN by g_phi engine, varying phi", env, "phi",
              engine_names);
  for (double phi : phis) {
    Params params;
    params.phi = phi;
    auto instances = MakeInstances(graph, params, env.num_queries(),
                                   /*build_p_tree=*/true, 81);
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f", phi);
    PrintRow(label, TimeIerEngines(env, engines, instances, params));
  }

  PrintHeader("Fig 8(b): all algorithms, varying phi", env, "phi",
              AllAlgorithmNames());
  for (double phi : phis) {
    Params params;
    params.phi = phi;
    auto instances = MakeInstances(graph, params, env.num_queries(),
                                   /*build_p_tree=*/true, 82);
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f", phi);
    PrintRow(label, TimeAllAlgorithms(env, *phl, instances, params));
  }
  return 0;
}
