// Fig. 6: efficiency varying the query-set size M = |Q|.
// (a) IER-kNN by g_phi engine; (b) all algorithms.
//
// Paper's qualitative findings: larger M costs more overall, with a dip
// between M=64 and M=256 for most IER-kNN engines (the M-vs-sparsity
// trade-off); APX-sum grows with M (it depends on |Q|); differences among
// PHL/GTree/IER-PHL/IER-GTree are minor.

#include <cstdio>

#include "common/bench_common.h"

int main() {
  using namespace fannr;
  using namespace fannr::bench;

  Env env = Env::Load({.labels = true, .gtree = true, .ch = false});
  const Graph& graph = env.graph();
  const size_t sizes[] = {64, 128, 256, 512, 1024};

  std::vector<std::unique_ptr<GphiEngine>> engines;
  std::vector<std::string> engine_names;
  for (GphiKind kind : TableOneKinds()) {
    engines.push_back(env.Engine(kind));
    engine_names.emplace_back(GphiKindName(kind));
  }
  auto phl = env.Engine(GphiKind::kPhl);

  PrintHeader("Fig 6(a): IER-kNN by g_phi engine, varying M", env, "M",
              engine_names);
  for (size_t m : sizes) {
    if (m > graph.NumVertices()) {
      std::printf("%-10zu (skipped: M exceeds |V|)\n", m);
      continue;
    }
    Params params;
    params.m = m;
    auto instances = MakeInstances(graph, params, env.num_queries(),
                                   /*build_p_tree=*/true, 61);
    PrintRow(std::to_string(m),
             TimeIerEngines(env, engines, instances, params));
  }

  PrintHeader("Fig 6(b): all algorithms, varying M", env, "M",
              AllAlgorithmNames());
  for (size_t m : sizes) {
    if (m > graph.NumVertices()) {
      std::printf("%-10zu (skipped: M exceeds |V|)\n", m);
      continue;
    }
    Params params;
    params.m = m;
    auto instances = MakeInstances(graph, params, env.num_queries(),
                                   /*build_p_tree=*/true, 62);
    PrintRow(std::to_string(m),
             TimeAllAlgorithms(env, *phl, instances, params));
  }
  return 0;
}
