// Ablation benchmarks for the design choices called out in DESIGN.md:
//   1. R-List early-termination threshold on/off;
//   2. IER-kNN bound: flexible Euclidean aggregate vs the cheap
//      Q-MBR bound (Section III-C's alternative);
//   3. Exact-max final answer: arrival recording vs one explicit g_phi
//      call (Algorithm 2 line 8);
//   4. the CH extension engine vs the paper's engines inside GD.

#include <cstdio>

#include "common/bench_common.h"

int main() {
  using namespace fannr;
  using namespace fannr::bench;

  Env env = Env::Load({.labels = true, .gtree = false, .ch = true});
  const Graph& graph = env.graph();
  auto phl = env.Engine(GphiKind::kPhl);
  auto ine = env.Engine(GphiKind::kIne);
  auto ch = env.Engine(GphiKind::kCh);
  Params params;  // defaults

  auto instances = MakeInstances(graph, params, env.num_queries(),
                                 /*build_p_tree=*/true, 191);
  auto max_query = [&](size_t i) {
    return FannQuery{&graph, &instances[i].p, &instances[i].q, params.phi,
                     Aggregate::kMax};
  };

  std::printf("\n=== Ablations (defaults: d=%g A=%g M=%zu phi=%g, max) ===\n",
              params.d, params.a, params.m, params.phi);

  // 1. R-List threshold.
  {
    RListOptions off;
    off.use_threshold = false;
    const double with_ms = TimeCell(
        [&](size_t i) { SolveRList(max_query(i), *phl); },
        instances.size(), env.cell_budget_ms());
    const double without_ms = TimeCell(
        [&](size_t i) { SolveRList(max_query(i), *phl, off); },
        instances.size(), env.cell_budget_ms());
    FannResult with_r = SolveRList(max_query(0), *phl);
    FannResult without_r = SolveRList(max_query(0), *phl, off);
    std::printf("R-List threshold:    on %10s (%zu g_phi)   off %10s "
                "(%zu g_phi)\n",
                FormatMs(with_ms).c_str(), with_r.gphi_evaluations,
                FormatMs(without_ms).c_str(), without_r.gphi_evaluations);
  }

  // 2. IER bound choice.
  {
    IerOptions cheap;
    cheap.bound = IerBound::kQMbrCheap;
    const double flex_ms = TimeCell(
        [&](size_t i) {
          SolveIer(max_query(i), *phl, *instances[i].p_tree);
        },
        instances.size(), env.cell_budget_ms());
    const double cheap_ms = TimeCell(
        [&](size_t i) {
          SolveIer(max_query(i), *phl, *instances[i].p_tree, cheap);
        },
        instances.size(), env.cell_budget_ms());
    FannResult flex_r = SolveIer(max_query(0), *phl, *instances[0].p_tree);
    FannResult cheap_r =
        SolveIer(max_query(0), *phl, *instances[0].p_tree, cheap);
    std::printf("IER bound:     g^e_phi %10s (%zu g_phi)  Q-MBR %10s "
                "(%zu g_phi)\n",
                FormatMs(flex_ms).c_str(), flex_r.gphi_evaluations,
                FormatMs(cheap_ms).c_str(), cheap_r.gphi_evaluations);
  }

  // 3. Exact-max answer assembly.
  {
    const double arrivals_ms = TimeCell(
        [&](size_t i) { SolveExactMax(max_query(i)); }, instances.size(),
        env.cell_budget_ms());
    const double gphi_ms = TimeCell(
        [&](size_t i) { SolveExactMax(max_query(i), *ine); },
        instances.size(), env.cell_budget_ms());
    std::printf("Exact-max:    arrivals %10s          final g_phi %10s\n",
                FormatMs(arrivals_ms).c_str(), FormatMs(gphi_ms).c_str());
  }

  // 5. (run before 4 for output locality) APX-sum candidate generation:
  //    per-query incremental expansions vs a prebuilt network Voronoi
  //    diagram over P (amortized across queries sharing one P).
  {
    auto sum_query = [&](size_t i) {
      return FannQuery{&graph, &instances[i].p, &instances[i].q, params.phi,
                       Aggregate::kSum};
    };
    const double plain_ms = TimeCell(
        [&](size_t i) { SolveApxSum(sum_query(i), *ine); },
        instances.size(), env.cell_budget_ms());
    // Voronoi built once per instance P (not timed: amortized setup).
    std::vector<std::unique_ptr<NetworkVoronoi>> voronois;
    for (const auto& inst : instances) {
      voronois.push_back(
          std::make_unique<NetworkVoronoi>(graph, inst.p));
    }
    const double voronoi_ms = TimeCell(
        [&](size_t i) {
          SolveApxSumWithVoronoi(sum_query(i), *voronois[i], *ine);
        },
        instances.size(), env.cell_budget_ms());
    std::printf("APX-sum NN:  expansion %10s       NVD lookup %10s\n",
                FormatMs(plain_ms).c_str(), FormatMs(voronoi_ms).c_str());
  }

  // 4. CH extension engine inside GD.
  {
    const double phl_ms = TimeCell(
        [&](size_t i) { SolveGd(max_query(i), *phl); }, instances.size(),
        env.cell_budget_ms());
    const double ch_ms = TimeCell(
        [&](size_t i) { SolveGd(max_query(i), *ch); }, instances.size(),
        env.cell_budget_ms());
    const double ine_ms = TimeCell(
        [&](size_t i) { SolveGd(max_query(i), *ine); }, instances.size(),
        env.cell_budget_ms());
    std::printf("GD engine:         PHL %10s   CH(ext) %10s   INE %10s\n",
                FormatMs(phl_ms).c_str(), FormatMs(ch_ms).c_str(),
                FormatMs(ine_ms).c_str());
  }
  return 0;
}
