// Fig. 3: efficiency of GD (a) and IER-kNN (b) implemented by different
// g_phi engines, varying the density d of P.
//
// Paper's qualitative findings to check against EXPERIMENTS.md:
//   * PHL / IER-PHL fastest, A* / IER-A* slowest;
//   * GD grows ~linearly in d, IER-kNN sub-linearly;
//   * IER-kNN beats GD by 1-3 orders of magnitude at equal engine.
//
// Aggregate is max (the paper reports max for the universal methods).

#include <cstdio>
#include <cstdlib>

#include "common/bench_common.h"

int main() {
  using namespace fannr;
  using namespace fannr::bench;

  Env env = Env::Load({.labels = true, .gtree = true, .ch = false});
  const Graph& graph = env.graph();
  const double densities[] = {0.0001, 0.001, 0.01, 0.1, 1.0};
  const GphiKind kinds[] = {GphiKind::kAStar,   GphiKind::kIerAStar,
                            GphiKind::kIne,     GphiKind::kPhl,
                            GphiKind::kIerPhl,  GphiKind::kGTree,
                            GphiKind::kIerGTree};
  // Cells whose candidate-evaluation volume explodes are skipped, like
  // the paper's own off-the-chart GD points ("cannot finish the query
  // ... within a reasonable time").
  const char* skip_env = std::getenv("FANNR_SKIP_THRESHOLD");
  const double skip_threshold =
      skip_env != nullptr ? std::strtod(skip_env, nullptr) : 2e6;

  std::vector<std::string> series;
  for (GphiKind kind : kinds) series.emplace_back(GphiKindName(kind));

  std::vector<std::unique_ptr<GphiEngine>> engines;
  for (GphiKind kind : kinds) engines.push_back(env.Engine(kind));

  // --- (a) GD by engine ---------------------------------------------------
  PrintHeader("Fig 3(a): GD by g_phi engine, varying d", env, "d", series);
  for (double d : densities) {
    Params params;
    params.d = d;
    auto instances = MakeInstances(graph, params, env.num_queries(),
                                   /*build_p_tree=*/false, 31);
    std::vector<double> row;
    for (size_t e = 0; e < engines.size(); ++e) {
      const bool expansion_engine = kinds[e] == GphiKind::kAStar ||
                                    kinds[e] == GphiKind::kIerAStar ||
                                    kinds[e] == GphiKind::kIne;
      const double volume = static_cast<double>(instances[0].p.size()) *
                            static_cast<double>(instances[0].q.size());
      if (expansion_engine && volume > skip_threshold) {
        row.push_back(-1.0);  // skipped, matches the paper's missing points
        continue;
      }
      row.push_back(TimeCell(
          [&](size_t i) {
            FannQuery query{&graph, &instances[i].p, &instances[i].q,
                            params.phi, Aggregate::kMax};
            SolveGd(query, *engines[e]);
          },
          instances.size(), env.cell_budget_ms()));
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%g", d);
    PrintRow(label, row);
  }

  // --- (b) IER-kNN by engine ----------------------------------------------
  PrintHeader("Fig 3(b): IER-kNN by g_phi engine, varying d", env, "d",
              series);
  for (double d : densities) {
    Params params;
    params.d = d;
    auto instances = MakeInstances(graph, params, env.num_queries(),
                                   /*build_p_tree=*/true, 32);
    std::vector<double> row;
    for (auto& engine : engines) {
      row.push_back(TimeCell(
          [&](size_t i) {
            FannQuery query{&graph, &instances[i].p, &instances[i].q,
                            params.phi, Aggregate::kMax};
            SolveIer(query, *engine, *instances[i].p_tree);
          },
          instances.size(), env.cell_budget_ms()));
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%g", d);
    PrintRow(label, row);
  }
  return 0;
}
