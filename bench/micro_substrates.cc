// Google-benchmark microbenchmarks for the substrate operations: the
// point-to-point distance oracles, incremental NN expansion, R-tree
// queries, and g_phi engine evaluations. These are the per-operation
// costs underlying every figure.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>

#include "common/rng.h"
#include "fann/fannr.h"
#include "sp/astar.h"
#include "sp/bidirectional.h"
#include "sp/ch/contraction_hierarchy.h"
#include "sp/dijkstra.h"
#include "sp/gtree/gtree.h"
#include "sp/gtree/gtree_knn.h"
#include "sp/incremental_nn.h"
#include "sp/label/hub_labels.h"

namespace {

using namespace fannr;

// One shared world per binary run (TEST-scale). The graph gets a stable
// heap address *before* the graph-pointer-holding indexes (G-tree) are
// built against it.
class World {
 public:
  Graph graph;
  HubLabels labels;
  GTree gtree;
  ContractionHierarchy ch;
  std::vector<VertexId> pairs;  // random vertices for (s, t) pairs

  static const World& Get() {
    static const World* world = new World();
    return *world;
  }

 private:
  World()
      : graph(BuildPreset("TEST")),
        labels(*HubLabels::Build(graph)),
        gtree([this] {
          GTree::Options options;
          options.leaf_capacity = 64;
          return GTree::Build(graph, options);
        }()),
        ch(ContractionHierarchy::Build(graph)) {
    Rng rng(20260704);
    for (int i = 0; i < 2048; ++i) {
      pairs.push_back(
          static_cast<VertexId>(rng.NextIndex(graph.NumVertices())));
    }
  }
};

void BM_DijkstraP2P(benchmark::State& state) {
  const World& w = World::Get();
  DijkstraSearch search(w.graph);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        search.Distance(w.pairs[i % 2048], w.pairs[(i + 1) % 2048]));
    ++i;
  }
}
BENCHMARK(BM_DijkstraP2P);

void BM_AStarP2P(benchmark::State& state) {
  const World& w = World::Get();
  AStarSearch search(w.graph);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        search.Distance(w.pairs[i % 2048], w.pairs[(i + 1) % 2048]));
    ++i;
  }
}
BENCHMARK(BM_AStarP2P);

void BM_BidirectionalP2P(benchmark::State& state) {
  const World& w = World::Get();
  BidirectionalSearch search(w.graph);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        search.Distance(w.pairs[i % 2048], w.pairs[(i + 1) % 2048]));
    ++i;
  }
}
BENCHMARK(BM_BidirectionalP2P);

void BM_HubLabelP2P(benchmark::State& state) {
  const World& w = World::Get();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        w.labels.Distance(w.pairs[i % 2048], w.pairs[(i + 1) % 2048]));
    ++i;
  }
}
BENCHMARK(BM_HubLabelP2P);

void BM_GTreeP2P(benchmark::State& state) {
  const World& w = World::Get();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        w.gtree.Distance(w.pairs[i % 2048], w.pairs[(i + 1) % 2048]));
    ++i;
  }
}
BENCHMARK(BM_GTreeP2P);

void BM_ChP2P(benchmark::State& state) {
  const World& w = World::Get();
  // CH query mutates scratch arrays: copy once.
  static ContractionHierarchy* ch =
      new ContractionHierarchy(World::Get().ch);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ch->Distance(w.pairs[i % 2048], w.pairs[(i + 1) % 2048]));
    ++i;
  }
}
BENCHMARK(BM_ChP2P);

void BM_IncrementalNnK(benchmark::State& state) {
  const World& w = World::Get();
  const size_t k = static_cast<size_t>(state.range(0));
  Rng rng(7);
  std::vector<VertexId> targets;
  for (size_t i = 0; i < 128; ++i) {
    targets.push_back(static_cast<VertexId>(
        rng.NextIndex(w.graph.NumVertices())));
  }
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()),
                targets.end());
  IndexedVertexSet target_set(w.graph.NumVertices(), targets);
  size_t i = 0;
  for (auto _ : state) {
    IncrementalNnSearch search(w.graph, w.pairs[i % 2048], target_set);
    for (size_t hits = 0; hits < k; ++hits) {
      benchmark::DoNotOptimize(search.Next());
    }
    ++i;
  }
}
BENCHMARK(BM_IncrementalNnK)->Arg(1)->Arg(16)->Arg(64);

void BM_RTreeNearest(benchmark::State& state) {
  Rng rng(9);
  std::vector<RTree::Item> items;
  for (uint32_t i = 0; i < 4096; ++i) {
    items.push_back({Point{rng.NextDouble(0.0, 1e5),
                           rng.NextDouble(0.0, 1e5)},
                     i});
  }
  RTree tree = RTree::BulkLoad(std::move(items));
  size_t i = 0;
  for (auto _ : state) {
    auto it = tree.NearestNeighbors(
        Point{static_cast<double>((i * 131) % 100000),
              static_cast<double>((i * 197) % 100000)});
    benchmark::DoNotOptimize(it.Next());
    ++i;
  }
}
BENCHMARK(BM_RTreeNearest);

void BM_GphiEngine(benchmark::State& state) {
  const World& w = World::Get();
  const GphiKind kind = static_cast<GphiKind>(state.range(0));
  GphiResources resources;
  resources.graph = &w.graph;
  resources.labels = &w.labels;
  resources.gtree = &w.gtree;
  static ContractionHierarchy* ch =
      new ContractionHierarchy(World::Get().ch);
  resources.ch = ch;
  auto engine = MakeGphiEngine(kind, resources);
  Rng rng(11);
  std::vector<VertexId> q_vec;
  for (int i = 0; i < 128; ++i) {
    q_vec.push_back(static_cast<VertexId>(
        rng.NextIndex(w.graph.NumVertices())));
  }
  std::sort(q_vec.begin(), q_vec.end());
  q_vec.erase(std::unique(q_vec.begin(), q_vec.end()), q_vec.end());
  IndexedVertexSet q(w.graph.NumVertices(), q_vec);
  engine->Prepare(q);
  const size_t k = q_vec.size() / 2;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine->Evaluate(w.pairs[i % 2048], k, Aggregate::kMax));
    ++i;
  }
  state.SetLabel(std::string(GphiKindName(kind)));
}
BENCHMARK(BM_GphiEngine)
    ->DenseRange(0, 7)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
