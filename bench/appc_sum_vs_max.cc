// Appendix C analog: sum-FANN_R vs max-FANN_R running time for the
// universal methods at the default parameters.
//
// Paper's claim (Section VI-A): "the running time of sum-FANN_R is very
// close to that of max-FANN_R given the same input" — which justifies
// showing only max in the efficiency figures.

#include <cstdio>

#include "common/bench_common.h"

int main() {
  using namespace fannr;
  using namespace fannr::bench;

  Env env = Env::Load({.labels = true, .gtree = false, .ch = false});
  const Graph& graph = env.graph();
  auto phl = env.Engine(GphiKind::kPhl);
  Params params;  // defaults

  auto instances = MakeInstances(graph, params, env.num_queries(),
                                 /*build_p_tree=*/true, 181);

  PrintHeader("Appendix C: sum vs max runtime (universal methods)", env,
              "algorithm", {"max", "sum", "sum/max"});
  struct Algo {
    const char* name;
    std::function<void(const FannQuery&, size_t)> run;
  };
  std::vector<Algo> algos;
  algos.push_back({"GD", [&](const FannQuery& q, size_t) {
                     SolveGd(q, *phl);
                   }});
  algos.push_back({"R-List", [&](const FannQuery& q, size_t) {
                     SolveRList(q, *phl);
                   }});
  algos.push_back({"IER-PHL", [&](const FannQuery& q, size_t i) {
                     SolveIer(q, *phl, *instances[i].p_tree);
                   }});

  for (const Algo& algo : algos) {
    auto time_with = [&](Aggregate aggregate) {
      return TimeCell(
          [&](size_t i) {
            FannQuery query{&graph, &instances[i].p, &instances[i].q,
                            params.phi, aggregate};
            algo.run(query, i);
          },
          instances.size(), env.cell_budget_ms());
    };
    const double max_ms = time_with(Aggregate::kMax);
    const double sum_ms = time_with(Aggregate::kSum);
    std::printf("%-10s %12s %12s %11.2fx\n", algo.name,
                FormatMs(max_ms).c_str(), FormatMs(sum_ms).c_str(),
                sum_ms / max_ms);
  }
  std::printf("\n(paper: the two aggregates cost nearly the same)\n");
  return 0;
}
