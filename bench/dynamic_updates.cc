// Dynamic road networks: the motivating scenario for the paper's
// index-free specific algorithms (Section IV).
//
// "This property is appealing when road networks change frequently,
//  since we do not need to re-build the index any more, which is usually
//  time consuming as shown in Fig. 9(b)."
//
// We perturb a fraction of edge weights (an accident/closure wave),
// rebuild the graph (cheap), and compare the time-to-first-answer of the
// index-free algorithms (Exact-max, APX-sum with INE, R-List with INE)
// against the index-based path, which must first rebuild its PHL-style
// labeling before IER-PHL can answer.

#include <cstdio>

#include "common/bench_common.h"
#include "common/timer.h"
#include "graph/builder.h"

int main() {
  using namespace fannr;
  using namespace fannr::bench;

  Env env = Env::Load({.labels = false, .gtree = false, .ch = false});
  const Graph& original = env.graph();
  Params params;  // defaults

  std::printf("\n=== Dynamic updates: index-free vs rebuild-then-query ===\n");
  std::printf("dataset=%s  |V|=%zu\n", env.dataset().c_str(),
              original.NumVertices());

  // Perturb 1% of edges (weight increase = congestion; the builder keeps
  // minima, so apply the perturbation on a fresh edge list).
  Timer rebuild_timer;
  Rng rng(0xD12A);
  GraphBuilder builder;
  if (original.HasCoordinates()) {
    for (VertexId v = 0; v < original.NumVertices(); ++v) {
      builder.AddVertex(original.Coord(v));
    }
  }
  for (VertexId u = 0; u < original.NumVertices(); ++u) {
    for (const Arc& a : original.Neighbors(u)) {
      if (u >= a.to) continue;
      const double factor = rng.NextBool(0.01)
                                ? rng.NextDouble(1.5, 3.0)  // congestion
                                : 1.0;
      builder.AddEdge(u, a.to, a.weight * factor);
    }
  }
  Graph updated = builder.Build();
  const double graph_rebuild_ms = rebuild_timer.Millis();
  std::printf("graph rebuild after 1%% weight changes: %s\n\n",
              FormatMs(graph_rebuild_ms).c_str());

  // One default workload on the updated network.
  Rng wl_rng(0xD12B);
  IndexedVertexSet p(updated.NumVertices(),
                     GenerateDataPoints(updated, params.d, wl_rng));
  IndexedVertexSet q(updated.NumVertices(),
                     GenerateUniformQueryPoints(updated, params.a, params.m,
                                                wl_rng));
  FannQuery max_query{&updated, &p, &q, params.phi, Aggregate::kMax};
  FannQuery sum_query{&updated, &p, &q, params.phi, Aggregate::kSum};

  GphiResources resources;
  resources.graph = &updated;
  auto ine = MakeGphiEngine(GphiKind::kIne, resources);

  std::printf("%-34s %14s\n", "path to first answer", "time");
  {
    Timer t;
    SolveExactMax(max_query);
    std::printf("%-34s %14s\n", "index-free Exact-max (max)",
                FormatMs(t.Millis()).c_str());
  }
  {
    Timer t;
    SolveApxSum(sum_query, *ine);
    std::printf("%-34s %14s\n", "index-free APX-sum (sum)",
                FormatMs(t.Millis()).c_str());
  }
  {
    Timer t;
    SolveRList(max_query, *ine);
    std::printf("%-34s %14s\n", "index-free R-List (max)",
                FormatMs(t.Millis()).c_str());
  }
  {
    Timer t;
    auto labels = HubLabels::Build(updated);
    resources.labels = &*labels;
    auto phl = MakeGphiEngine(GphiKind::kIerPhl, resources);
    const RTree p_tree = BuildDataPointRTree(updated, p);
    SolveIer(max_query, *phl, p_tree);
    std::printf("%-34s %14s\n", "rebuild PHL + IER-PHL (max)",
                FormatMs(t.Millis()).c_str());
  }
  std::printf(
      "\n(the index-free algorithms answer immediately after a network\n"
      "change; the index-based path pays the full Fig. 9(b) rebuild "
      "first)\n");
  return 0;
}
