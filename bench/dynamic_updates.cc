// Dynamic road networks: the motivating scenario for the paper's
// index-free algorithms (Section IV).
//
// "This property is appealing when road networks change frequently,
//  since we do not need to re-build the index any more, which is usually
//  time consuming as shown in Fig. 9(b)."
//
// With the live-update subsystem (dynamic/update.h) a weight change is
// an in-place UpdateBatch apply, not a graph rebuild, so this benchmark
// measures the dynamic story end to end:
//
//   1. update-apply latency across wave sizes (fraction of edges
//      rescaled per congestion wave);
//   2. time-to-first-correct-answer after a wave: the index-free path
//      (GD over INE, ready immediately) vs the index path, which must
//      rebuild its PHL labeling before it can answer again — both
//      answers are verified against a brute-force oracle computed on
//      the post-update weights;
//   3. the stale-index diagnosis (fann/dispatch.h) firing on the
//      pre-update index;
//   4. the epoch-versioned shared distance cache: a warm
//      BatchQueryEngine survives an update, reclaims its stale entries
//      (counted), and keeps answering correctly.
//
// Output: a table on stdout plus BENCH_dynamic.json (written to
// FANNR_OUT_DIR or the working directory); CI gates the JSON with
// scripts/check_dynamic_json.py.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_common.h"
#include "common/timer.h"
#include "dynamic/update.h"
#include "engine/batch_engine.h"
#include "fann/dispatch.h"
#include "graph/builder.h"
#include "testing/oracle.h"

namespace fannr::bench {
namespace {

using dynamic::ApplyResult;
using dynamic::MakeCongestionWave;
using dynamic::UpdateBatch;

struct WaveCell {
  double fraction = 0.0;
  size_t updates = 0;
  size_t applied = 0;
  size_t missing = 0;
  double build_ms = 0.0;  // MakeCongestionWave (workload generation)
  double apply_ms = 0.0;  // UpdateBatch::Apply (the measured operation)
  uint64_t epoch = 0;
};

// Does `result` answer `query` optimally? Checked against the oracle
// ranking computed on the CURRENT weights: the distance must match the
// optimum and the vertex must be one of the fp-tied optimal candidates.
bool MatchesOracle(const FannResult& result,
                   const std::vector<testing::OracleEntry>& ranking) {
  if (ranking.empty()) return result.best == kInvalidVertex;
  if (result.best == kInvalidVertex) return false;
  const Weight best = ranking.front().distance;
  const double tol = 1e-9 * std::max(1.0, std::abs(best));
  if (std::abs(result.distance - best) > tol) return false;
  for (const auto& entry : ranking) {
    if (entry.distance > best + tol) break;
    if (entry.vertex == result.best) return true;
  }
  return false;
}

int Main() {
  Env env = Env::Load({.labels = false, .gtree = false, .ch = false});
  // A private mutable copy: Env owns its graph const (shared with the
  // index cache); updates must not leak into other benches' state.
  Graph graph = GraphBuilder::FromGraph(env.graph()).Build();
  Params params;  // paper defaults

  std::printf("\n=== Dynamic updates: in-place apply + "
              "index-free vs rebuild-then-query ===\n");
  std::printf("dataset=%s  |V|=%zu  |E|=%zu  epoch=%llu\n",
              env.dataset().c_str(), graph.NumVertices(), graph.NumEdges(),
              static_cast<unsigned long long>(graph.epoch()));

  // ---- 1. Update-apply latency across wave sizes -----------------------
  Rng wave_rng(0xD12A);
  const std::vector<double> fractions = {0.001, 0.01, 0.05, 0.20};
  std::vector<WaveCell> waves;
  std::printf("\n%-10s %10s %10s %12s %12s\n", "fraction", "updates",
              "applied", "build ms", "apply ms");
  for (double fraction : fractions) {
    WaveCell cell;
    cell.fraction = fraction;
    Timer build_timer;
    UpdateBatch wave = MakeCongestionWave(graph, fraction, /*min_factor=*/0.5,
                                          /*max_factor=*/3.0, wave_rng);
    cell.build_ms = build_timer.Millis();
    cell.updates = wave.size();
    Timer apply_timer;
    const ApplyResult applied = wave.Apply(graph);
    cell.apply_ms = apply_timer.Millis();
    cell.applied = applied.applied;
    cell.missing = applied.missing;
    cell.epoch = applied.new_epoch;
    std::printf("%-10.3f %10zu %10zu %12.3f %12.3f\n", fraction, cell.updates,
                cell.applied, cell.build_ms, cell.apply_ms);
    waves.push_back(cell);
  }

  // ---- 2. Time-to-first-correct-answer after a wave --------------------
  // Build the index on the current weights, then hit it with one more
  // wave: the index-free path answers immediately; the index path pays
  // the full Fig. 9(b) rebuild first. Both must agree with an oracle
  // computed on the post-update weights.
  Timer initial_build_timer;
  auto stale_labels = HubLabels::Build(graph);
  const double initial_index_build_ms = initial_build_timer.Millis();
  FANNR_CHECK(stale_labels.has_value());

  UpdateBatch ttfa_wave = MakeCongestionWave(graph, /*fraction=*/0.01,
                                             /*min_factor=*/0.5,
                                             /*max_factor=*/3.0, wave_rng);
  const ApplyResult ttfa_applied = ttfa_wave.Apply(graph);

  GphiResources stale_resources;
  stale_resources.graph = &graph;
  stale_resources.labels = &*stale_labels;
  const std::string stale_reason =
      StaleIndexReason(GphiKind::kPhl, stale_resources);
  const bool stale_index_detected = !stale_reason.empty();

  Rng wl_rng(0xD12B);
  const std::vector<VertexId> p_members =
      GenerateDataPoints(graph, params.d, wl_rng);
  const std::vector<VertexId> q_members =
      GenerateUniformQueryPoints(graph, params.a, params.m, wl_rng);
  IndexedVertexSet p(graph.NumVertices(), p_members);
  IndexedVertexSet q(graph.NumVertices(), q_members);
  FannQuery query{&graph, &p, &q, params.phi, Aggregate::kMax};
  const auto oracle = testing::OracleRanking(graph, p_members, q_members,
                                             params.phi, Aggregate::kMax);

  double index_free_ms = 0.0;
  bool index_free_correct = false;
  {
    GphiResources resources;
    resources.graph = &graph;
    Timer t;
    auto ine = MakeGphiEngine(GphiKind::kIne, resources);
    const FannResult result = SolveGd(query, *ine);
    index_free_ms = t.Millis();
    index_free_correct = MatchesOracle(result, oracle);
  }

  double rebuild_ms = 0.0;
  double rebuild_index_build_ms = 0.0;
  bool rebuild_correct = false;
  {
    Timer t;
    Timer build_t;
    auto labels = HubLabels::Build(graph);
    rebuild_index_build_ms = build_t.Millis();
    FANNR_CHECK(labels.has_value());
    GphiResources resources;
    resources.graph = &graph;
    resources.labels = &*labels;
    auto phl = MakeGphiEngine(GphiKind::kPhl, resources);
    const FannResult result = SolveGd(query, *phl);
    rebuild_ms = t.Millis();
    rebuild_correct = MatchesOracle(result, oracle);
  }

  std::printf("\n%-44s %14s\n", "path to first correct answer (GD, max)",
              "time");
  std::printf("%-44s %14s\n", "index-free (INE, answers immediately)",
              FormatMs(index_free_ms).c_str());
  std::printf("%-44s %14s\n", "rebuild PHL + query",
              FormatMs(rebuild_ms).c_str());
  std::printf("stale PHL diagnosed: %s\n",
              stale_index_detected ? "yes" : "NO (BUG)");
  std::printf("oracle agreement: index-free %s, rebuilt %s\n",
              index_free_correct ? "ok" : "WRONG",
              rebuild_correct ? "ok" : "WRONG");

  // ---- 3. Epoch-versioned cache across an update -----------------------
  // A warm batch engine (shared distance cache) straddles a wave: the
  // stale entries must be reclaimed (epoch_evictions > 0), and the
  // post-update answers must match an oracle on the new weights.
  std::vector<std::vector<VertexId>> batch_q_members;
  std::vector<std::unique_ptr<IndexedVertexSet>> batch_qs;
  std::vector<FannrQuery> jobs;
  Rng batch_rng(0xD12C);
  for (size_t i = 0; i < 8; ++i) {
    batch_q_members.push_back(
        GenerateUniformQueryPoints(graph, params.a, /*m=*/32, batch_rng));
    batch_qs.push_back(std::make_unique<IndexedVertexSet>(
        graph.NumVertices(), batch_q_members.back()));
    FannrQuery job;
    job.query = FannQuery{&graph, &p, batch_qs.back().get(), params.phi,
                          Aggregate::kSum};
    job.algorithm = FannAlgorithm::kGd;
    jobs.push_back(job);
  }
  GphiResources batch_resources;
  batch_resources.graph = &graph;
  BatchOptions batch_options;
  batch_options.num_threads = 2;
  batch_options.share_distance_cache = true;
  batch_options.enable_metrics = true;
  BatchQueryEngine engine(batch_resources, batch_options);

  engine.Run(jobs);  // warm the cache at the current epoch
  const auto warm_stats = engine.cache_stats();

  UpdateBatch cache_wave = MakeCongestionWave(graph, /*fraction=*/0.05,
                                              /*min_factor=*/0.5,
                                              /*max_factor=*/3.0, wave_rng);
  cache_wave.Apply(graph);

  const std::vector<FannResult> post = engine.Run(jobs);
  const auto post_stats = engine.cache_stats();
  const size_t epoch_evictions =
      post_stats.epoch_evictions - warm_stats.epoch_evictions;
  bool cache_post_update_correct = true;
  for (size_t i = 0; i < jobs.size(); ++i) {
    const auto job_oracle = testing::OracleRanking(
        graph, p_members, batch_q_members[i], params.phi, Aggregate::kSum);
    if (!MatchesOracle(post[i], job_oracle)) cache_post_update_correct = false;
  }
  std::printf("\nwarm cache across an update: %zu epoch-stale entries "
              "reclaimed, post-update answers %s\n",
              epoch_evictions, cache_post_update_correct ? "ok" : "WRONG");

  // ---- JSON artifact ---------------------------------------------------
  const std::string out_dir = [] {
    const char* dir = std::getenv("FANNR_OUT_DIR");
    return std::string(dir != nullptr ? dir : ".");
  }();
  const std::string out_path = out_dir + "/BENCH_dynamic.json";
  std::ofstream out(out_path);
  out << "{\n"
      << "  \"dataset\": \"" << env.dataset() << "\",\n"
      << "  \"num_vertices\": " << graph.NumVertices() << ",\n"
      << "  \"num_edges\": " << graph.NumEdges() << ",\n"
      << "  \"waves\": [\n";
  for (size_t i = 0; i < waves.size(); ++i) {
    const WaveCell& w = waves[i];
    out << "    {\"fraction\": " << w.fraction << ", \"updates\": "
        << w.updates << ", \"applied\": " << w.applied << ", \"missing\": "
        << w.missing << ", \"build_ms\": " << w.build_ms << ", \"apply_ms\": "
        << w.apply_ms << ", \"epoch\": " << w.epoch << "}"
        << (i + 1 < waves.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"ttfa\": {\n"
      << "    \"initial_index_build_ms\": " << initial_index_build_ms << ",\n"
      << "    \"update_applied\": " << ttfa_applied.applied << ",\n"
      << "    \"index_free_ms\": " << index_free_ms << ",\n"
      << "    \"rebuild_ms\": " << rebuild_ms << ",\n"
      << "    \"rebuild_index_build_ms\": " << rebuild_index_build_ms << ",\n"
      << "    \"index_free_correct\": "
      << (index_free_correct ? "true" : "false") << ",\n"
      << "    \"rebuild_correct\": " << (rebuild_correct ? "true" : "false")
      << ",\n"
      << "    \"stale_index_detected\": "
      << (stale_index_detected ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"cache\": {\n"
      << "    \"epoch_evictions\": " << epoch_evictions << ",\n"
      << "    \"hits\": " << post_stats.hits << ",\n"
      << "    \"misses\": " << post_stats.misses << ",\n"
      << "    \"lookups\": " << post_stats.hits + post_stats.misses << ",\n"
      << "    \"post_update_correct\": "
      << (cache_post_update_correct ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"final_epoch\": " << graph.epoch() << "\n"
      << "}\n";
  std::printf("wrote %s\n", out_path.c_str());

  // The benchmark doubles as a smoke test: any wrong answer or missed
  // staleness diagnosis fails the binary (and the CI step running it).
  const bool ok = index_free_correct && rebuild_correct &&
                  stale_index_detected && cache_post_update_correct &&
                  epoch_evictions > 0;
  if (!ok) std::fprintf(stderr, "dynamic_updates: FAILED correctness gate\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace fannr::bench

int main() { return fannr::bench::Main(); }
