// Fig. 12: real-world POIs — (a) efficiency of all algorithms, (b)
// APX-sum approximation quality — with P in {FF, PO} and Q in {HOS, UNI}
// (Table IV categories; synthetic POI substitution per DESIGN.md §2.1).
//
// Paper's qualitative findings: same relative algorithm ranking as the
// synthetic workloads; APX-sum ratio < 1.1 on POI data.

#include <cmath>
#include <cstdio>
#include <string>

#include "common/bench_common.h"

int main() {
  using namespace fannr;
  using namespace fannr::bench;

  Env env = Env::Load({.labels = true, .gtree = false, .ch = false});
  const Graph& graph = env.graph();
  auto phl = env.Engine(GphiKind::kPhl);
  const double phi = 0.5;

  const std::string p_names[] = {"FF", "PO"};
  const std::string q_names[] = {"HOS", "UNI"};

  PrintHeader("Fig 12(a): efficiency on POI sets (P x Q)", env, "P/Q",
              AllAlgorithmNames());
  std::printf("%-10s %12s %12s %12s %12s %12s  (ratio)\n", "", "", "", "",
              "", "");
  for (const std::string& p_name : p_names) {
    for (const std::string& q_name : q_names) {
      // Build num_queries POI instances (fresh clustered placements).
      std::vector<Instance> instances;
      std::vector<double> ratios;
      for (size_t i = 0; i < env.num_queries(); ++i) {
        Rng rng(120'000 + i * 17);
        auto p_vec = GeneratePoiSet(graph, PoiCategoryByName(p_name), rng);
        auto q_vec = GeneratePoiSet(graph, PoiCategoryByName(q_name), rng);
        Instance inst{IndexedVertexSet(graph.NumVertices(), std::move(p_vec)),
                      IndexedVertexSet(graph.NumVertices(), std::move(q_vec)),
                      std::nullopt};
        inst.p_tree = BuildDataPointRTree(graph, inst.p);
        instances.push_back(std::move(inst));
      }

      Params params;
      params.phi = phi;
      std::vector<double> row =
          TimeAllAlgorithms(env, *phl, instances, params);
      PrintRow(p_name + "/" + q_name, row);

      // (b) approximation quality on the same instances.
      double mean = 0.0, worst = 0.0;
      size_t counted = 0;
      for (const Instance& inst : instances) {
        FannQuery query{&graph, &inst.p, &inst.q, phi, Aggregate::kSum};
        const FannResult exact = SolveGd(query, *phl);
        const FannResult approx = SolveApxSum(query, *phl);
        if (exact.distance <= 0.0 || exact.distance == kInfWeight) continue;
        const double ratio = approx.distance / exact.distance;
        mean += ratio;
        worst = std::max(worst, ratio);
        ++counted;
      }
      if (counted > 0) {
        std::printf("%-10s APX-sum ratio: mean %.4f  worst %.4f\n", "",
                    mean / static_cast<double>(counted), worst);
      }
    }
  }
  std::printf("\n(paper: same ranking as synthetic data; POI ratio < 1.1)\n");
  return 0;
}
