// Motivation experiment: how good is the *Euclidean* FANN answer when
// costs are road-network distances?
//
// The paper's introduction argues that Euclidean-space FANN techniques
// (Li et al.) do not transfer to road networks because geometric
// properties fail there. This harness quantifies that: solve each
// workload twice — exactly in the network (ground truth) and exactly in
// the Euclidean plane over the same coordinates — then score the
// Euclidean winner by its *network* flexible aggregate distance.
//
// Columns: how often the Euclidean answer picks a different data point,
// and the mean/worst inflation of its network cost over the true optimum.

#include <algorithm>
#include <cstdio>

#include "common/bench_common.h"
#include "euclid/euclid_fann.h"

int main() {
  using namespace fannr;
  using namespace fannr::bench;

  Env env = Env::Load({.labels = true, .gtree = false, .ch = false});
  const Graph& graph = env.graph();
  auto phl = env.Engine(GphiKind::kPhl);

  std::printf("\n=== Euclidean FANN vs network FANN (motivation) ===\n");
  std::printf("dataset=%s  per-cell instances=%zu\n", env.dataset().c_str(),
              std::max<size_t>(env.num_queries(), 20));
  std::printf("%-8s %10s %12s %12s %12s\n", "d", "agg", "diff-rate",
              "mean-infl", "worst-infl");

  for (double d : {0.001, 0.01, 0.1}) {
    for (Aggregate aggregate : {Aggregate::kMax, Aggregate::kSum}) {
      Params params;
      params.d = d;
      auto instances =
          MakeInstances(graph, params, std::max<size_t>(env.num_queries(),
                                                        20),
                        /*build_p_tree=*/false, 201);
      size_t different = 0, counted = 0;
      double mean_inflation = 0.0, worst_inflation = 1.0;
      for (const Instance& inst : instances) {
        FannQuery query{&graph, &inst.p, &inst.q, params.phi, aggregate};
        const size_t k = query.FlexSubsetSize();

        const FannResult network = SolveGd(query, *phl);
        if (network.best == kInvalidVertex) continue;

        std::vector<Point> data, qpts;
        for (VertexId v : inst.p.members()) data.push_back(graph.Coord(v));
        for (VertexId v : inst.q.members()) qpts.push_back(graph.Coord(v));
        const EuclidFannResult euclid =
            SolveEuclidFann(data, qpts, params.phi, aggregate);

        const VertexId euclid_vertex = inst.p[euclid.best];
        // Score the Euclidean winner by its NETWORK flexible aggregate.
        phl->Prepare(inst.q);
        const GphiResult scored =
            phl->Evaluate(euclid_vertex, k, aggregate);
        if (scored.distance == kInfWeight || network.distance <= 0.0) {
          continue;
        }
        const double inflation = scored.distance / network.distance;
        mean_inflation += inflation;
        worst_inflation = std::max(worst_inflation, inflation);
        if (euclid_vertex != network.best &&
            scored.distance > network.distance * (1.0 + 1e-9)) {
          ++different;
        }
        ++counted;
      }
      if (counted == 0) continue;
      std::printf("%-8g %10s %11.0f%% %12.4f %12.4f\n", d,
                  AggregateName(aggregate).data(),
                  100.0 * static_cast<double>(different) /
                      static_cast<double>(counted),
                  mean_inflation / static_cast<double>(counted),
                  worst_inflation);
      std::fflush(stdout);
    }
  }
  std::printf(
      "\n(a strictly-worse Euclidean pick on even a few percent of queries"
      "\nmotivates network-native FANN algorithms, per the paper's "
      "introduction)\n");
  return 0;
}
